//! # security-policy-oracle
//!
//! A reproduction of *"A Security Policy Oracle: Detecting Security Holes
//! Using Multiple API Implementations"* (Srivastava, Bond, McKinley,
//! Shmatikov; PLDI 2011) as a Rust library suite.
//!
//! The oracle's idea: many APIs have multiple, independent implementations
//! that must enforce the same security policy. Extract each
//! implementation's policy — which `SecurityManager` checks *may* and
//! *must* precede each security-sensitive event — with a flow- and
//! context-sensitive interprocedural analysis, then **difference** the
//! policies. Any difference is at least an interoperability bug, and
//! possibly an exploitable vulnerability.
//!
//! This facade re-exports the constituent crates and offers the one-call
//! [`compare_implementations`] pipeline.
//!
//! * [`jir`] — the Jimple-like IR, builder, and `.jir` textual frontend;
//! * [`resolve`] — class hierarchy, devirtualization, call graphs;
//! * [`dataflow`] — the worklist engine, lattices, constant propagation;
//! * [`core`] — SPDA/ISPA policy extraction and policy differencing;
//! * [`engine`] — the parallel per-entry-point analysis driver;
//! * [`obs`] — std-only observability: spans, counters, histograms, and
//!   the versioned `spo-stats/1` JSON snapshot behind the CLI's
//!   `--stats`/`--stats-json`;
//! * [`corpus`] — the paper-figure scenarios and the synthetic
//!   three-implementation corpus.
//!
//! All analyses run through the [`engine`]'s work-stealing worker pool;
//! its merge is deterministic, so results are byte-identical to a serial
//! run regardless of worker count.
//!
//! # Examples
//!
//! Run the oracle on the paper's Figure 1 (Harmony's `DatagramSocket.
//! connect` missing `checkAccept`):
//!
//! ```
//! use security_policy_oracle::{compare_implementations, corpus, core};
//!
//! let fig = corpus::figures::FIGURE1;
//! let jdk = fig.program(corpus::Lib::Jdk);
//! let harmony = fig.program(corpus::Lib::Harmony);
//! let report = compare_implementations(
//!     &jdk,
//!     "jdk",
//!     &harmony,
//!     "harmony",
//!     core::AnalysisOptions::default(),
//! );
//! assert_eq!(report.groups.len(), 1);
//! assert!(report.groups[0]
//!     .representative
//!     .delta
//!     .contains(core::Check::Accept));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use spo_core as core;
pub use spo_corpus as corpus;
pub use spo_dataflow as dataflow;
pub use spo_engine as engine;
pub use spo_guard as guard;
pub use spo_jir as jir;
pub use spo_obs as obs;
pub use spo_resolve as resolve;
pub use spo_serve as serve;

use spo_core::{AnalysisOptions, DiffResult, LibraryPolicies, ReportGroup};
use spo_engine::AnalysisEngine;
use spo_jir::Program;

/// The complete output of one pairwise comparison.
#[derive(Debug)]
pub struct PairingReport {
    /// Policies of the first implementation.
    pub left: LibraryPolicies,
    /// Policies of the second implementation.
    pub right: LibraryPolicies,
    /// Raw differencing output.
    pub diff: DiffResult,
    /// Differences grouped by root cause and classified
    /// (intraprocedural / interprocedural / MUST-MAY).
    pub groups: Vec<ReportGroup>,
}

impl PairingReport {
    /// Renders the report as the human-readable listing.
    pub fn render(&self) -> String {
        spo_core::render_reports(&self.diff, &self.groups)
    }
}

/// One pairing of a multi-implementation comparison.
#[derive(Debug)]
pub struct PairingEntry {
    /// Names of the two implementations compared.
    pub pair: (String, String),
    /// The pairing's report.
    pub report: PairingReport,
}

/// Compares every pair of implementations, as the paper does for its three
/// Java Class Library subjects ("We compare each implementation to the
/// other two"), returning one report per unordered pairing.
///
/// # Examples
///
/// ```
/// use security_policy_oracle::{compare_all, corpus, core::AnalysisOptions};
///
/// let fig = corpus::figures::FIGURE1;
/// let programs = [
///     ("jdk", fig.program(corpus::Lib::Jdk)),
///     ("harmony", fig.program(corpus::Lib::Harmony)),
///     ("classpath", fig.program(corpus::Lib::Classpath)),
/// ];
/// let refs: Vec<(&str, &spo_jir::Program)> =
///     programs.iter().map(|(n, p)| (*n, p)).collect();
/// let pairings = compare_all(&refs, AnalysisOptions::default());
/// assert_eq!(pairings.len(), 3);
/// // Harmony's missing checkAccept shows up against both correct sides.
/// let buggy = pairings
///     .iter()
///     .filter(|p| !p.report.groups.is_empty())
///     .count();
/// assert_eq!(buggy, 2);
/// ```
pub fn compare_all(
    implementations: &[(&str, &Program)],
    options: AnalysisOptions,
) -> Vec<PairingEntry> {
    compare_all_with(implementations, options, &AnalysisEngine::default())
}

/// [`compare_all`] against a caller-configured [`AnalysisEngine`]. Each
/// implementation is analyzed once (full and intraprocedural-ablation) and
/// reused across its pairings.
pub fn compare_all_with(
    implementations: &[(&str, &Program)],
    options: AnalysisOptions,
    engine: &AnalysisEngine,
) -> Vec<PairingEntry> {
    let set = engine.compare_all(implementations, options);
    set.comparisons
        .into_iter()
        .map(|c| {
            let (i, j) = c.pair;
            PairingEntry {
                pair: (
                    implementations[i].0.to_owned(),
                    implementations[j].0.to_owned(),
                ),
                report: PairingReport {
                    left: set.libraries[i].clone(),
                    right: set.libraries[j].clone(),
                    diff: c.diff,
                    groups: c.groups,
                },
            }
        })
        .collect()
}

/// Runs the full oracle pipeline over two implementations of the same API:
/// policy extraction on each, policy differencing, an
/// intraprocedural-only ablation for root-cause classification, and
/// root-cause grouping.
///
/// # Examples
///
/// See the crate-level example.
pub fn compare_implementations(
    left: &Program,
    left_name: &str,
    right: &Program,
    right_name: &str,
    options: AnalysisOptions,
) -> PairingReport {
    compare_implementations_with(
        left,
        left_name,
        right,
        right_name,
        options,
        &AnalysisEngine::default(),
    )
}

/// [`compare_implementations`] against a caller-configured
/// [`AnalysisEngine`] (e.g. the CLI's `--jobs N`).
pub fn compare_implementations_with(
    left: &Program,
    left_name: &str,
    right: &Program,
    right_name: &str,
    options: AnalysisOptions,
    engine: &AnalysisEngine,
) -> PairingReport {
    let set = engine.compare_all(&[(left_name, left), (right_name, right)], options);
    let mut libraries = set.libraries.into_iter();
    let comparison = set
        .comparisons
        .into_iter()
        .next()
        .expect("two implementations always yield one pairing");
    PairingReport {
        left: libraries.next().expect("left analysis"),
        right: libraries.next().expect("right analysis"),
        diff: comparison.diff,
        groups: comparison.groups,
    }
}
