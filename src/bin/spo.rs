//! `spo` — the security policy oracle command-line interface.
//!
//! ```text
//! spo check <file.jir>...                        parse & validate, print stats
//! spo analyze <file.jir>... [--broad]            print per-entry security policies
//! spo export <file.jir>... [--name N]            emit the policy exchange format
//! spo diff <left.jir>... --vs <right.jir>...     run the oracle over two implementations
//!          [--no-icp] [--broad] [--intra-only]
//! spo diff-policies <left.txt> <right.txt>       diff two exported policy files
//! spo serve --socket PATH [--load NAME=FILE]...  resident oracle daemon (spo-rpc/1)
//! spo rpc --socket PATH '<request-json>'...      send requests to a running daemon
//! ```
//!
//! Multiple `.jir` files per side are layered into one program (e.g. a
//! shared runtime prelude plus the implementation).

use security_policy_oracle::compare_implementations_with;
use security_policy_oracle::guard::{CancelToken, Cause, Diagnostic, GuardConfig, Phase, Severity};
use security_policy_oracle::obs::trace::{TraceLane, Tracer};
use security_policy_oracle::obs::{self, Recorder};
use spo_cache::PolicyCache;
use spo_core::{
    diff_libraries, export_policies, group_differences, import_policies, render_reports,
    AnalysisOptions, EventDef,
};
use spo_engine::AnalysisEngine;
use spo_jir::Program;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Exit codes: 0 = clean, 1 = semantic findings (policy differences, lint
/// or throws findings), 2 = completed but degraded (parse recovery,
/// panic-quarantined or budget/cancel-tripped roots), 3 = fatal error.
/// Degradation takes precedence over findings: a degraded run's findings
/// are a lower bound, not the full answer.
const EXIT_FINDINGS: u8 = 1;
const EXIT_DEGRADED: u8 = 2;
const EXIT_FATAL: u8 = 3;

fn main() -> ExitCode {
    // Arm deterministic fault injection from `SPO_CHAOS` before any layer
    // captures the global plan (cache open, engine construction, daemon
    // start all read it exactly once).
    if let Err(e) = spo_chaos::init_from_env() {
        eprintln!("error: {}: {e}", spo_chaos::ENV_VAR);
        return ExitCode::from(EXIT_FATAL);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("diff-policies") => cmd_diff_policies(&args[1..]),
        Some("throws") => cmd_throws(&args[1..]),
        Some("stats-validate") => cmd_stats_validate(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("rpc") => cmd_rpc(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    let code = match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(EXIT_FATAL)
        }
    };
    // One machine-parseable summary line per chaos-armed process: `spo
    // chaos soak` reads these from child stderr to attribute fault counts.
    let chaos = spo_chaos::current();
    if chaos.is_enabled() {
        eprintln!(
            "# chaos: injected={} recovered={} seed={}",
            chaos.injected(),
            chaos.recovered(),
            chaos.seed().unwrap_or(0),
        );
    }
    code
}

const USAGE: &str = "\
spo — security policy oracle (PLDI 2011 reproduction)

USAGE:
  spo check <file.jir>... [--lint] [--jobs N] [--trace-out PATH] [--stats] [--stats-json PATH]
  spo analyze <file.jir>... [--broad] [--jobs N] [--budget-steps N] [--budget-frames N] [--deadline SECS] [--cache-dir PATH] [--no-cache] [--trace-out PATH] [--stats] [--stats-json PATH]
  spo export <file.jir>... [--name NAME] [--jobs N] [--cache-dir PATH] [--no-cache] [--trace-out PATH] [--stats] [--stats-json PATH]
  spo diff <left.jir>... --vs <right.jir>... [--no-icp] [--broad] [--intra-only] [--html] [--jobs N] [--cache-dir PATH] [--no-cache] [--trace-out PATH] [--stats] [--stats-json PATH]
  spo diff-policies <left-policies.txt> <right-policies.txt>
  spo throws <left.jir>... --vs <right.jir>...
  spo stats-validate [--schema spo-stats/1|spo-trace/1] <snapshot.json>
  spo cache (stats|clear) --cache-dir PATH
  spo cache export-index <file.jir>... --out PATH.spi [--name NAME] [--no-icp] [--broad] [--jobs N]
  spo index query [ENTRY-SIG] --index PATH.spi
  spo index diff <left.spi> <right.spi>
  spo serve --socket PATH [--tcp ADDR] [--workers N] [--jobs N] [--load NAME=FILE[,FILE...]]... [--index NAME=PATH.spi]... [--cache-dir PATH] [--no-cache] [--default-timeout-ms N] [--write-timeout-ms N] [--max-line-bytes N] [--drain-grace SECS] [--stats] [--stats-json PATH]
  spo rpc --socket PATH | --tcp ADDR [--stats-json PATH] [--retries N] [--retry-base-ms N] <request-json>...
  spo trace --socket PATH | --tcp ADDR [--trace-id ID] [--out PATH]
  spo chaos soak [--seed N] [--schedules N] [--rate P] [--keep-going]

`--jobs N` sets the analysis worker count (default: all CPUs; results are
identical for any N). `--stats` prints a metrics summary to stderr;
`--stats-json PATH` writes the versioned machine-readable snapshot
(`-` for stdout). `stats-validate` checks a snapshot against the
spo-stats/1 schema.

`analyze`, `export`, and `diff` accept degraded-mode limits:
`--budget-steps N` caps worklist steps per fixpoint solve,
`--budget-frames N` caps method frames per root, `--deadline SECS` (alias
`--timeout-ms N`) sets a wall-clock limit. A root exceeding a limit (or a
SIGINT/SIGTERM) is dropped from the report and surfaced as a stderr
diagnostic.

`spo serve` starts a resident daemon speaking the line-delimited JSON
protocol spo-rpc/1 over a Unix socket (and optionally TCP): programs stay
loaded, analyses stay warm in memory, and repeat queries skip the engine
entirely. Responses embed byte-identical `analyze`/`diff` output. Each
request may carry `timeout_ms` for per-request admission control; an
over-budget request returns a typed degraded response without disturbing
other sessions. `spo rpc` sends request lines to a running daemon and
prints the responses (exit: 0 ok, 2 any degraded, 3 any error).

`--trace-out PATH` writes a flight-recorder timeline of the run as
Chrome-trace JSON (`spo-trace/1`): one lane per engine worker, per-root
spans, dataflow fixpoint spans, shard lock-wait events, and cache
hit/miss instants. Load the file in Perfetto (ui.perfetto.dev) or
chrome://tracing. Tracing is wall-clock telemetry only — report bytes
and `--stats-json` output are byte-identical with or without it. Against
a daemon, put a `trace_id` field in any `spo rpc` request to capture
that request's timeline, then fetch it with `spo trace`.

Every command honours the `SPO_CHAOS` environment variable
(`seed=N[,rate=P][,sites=SITE[:RATE|:once][+SITE...]]`, `sites=all` arms
everything): a deterministic fault-injection plan that fires at named
sites in the cache, the engine, and the daemon. The same seed replays
the same fault schedule; a chaos-armed process prints a one-line
`# chaos:` summary to stderr at exit. `spo chaos soak` drives randomized
schedules against all three layers and checks the standing invariants
(no panics, stable exit codes, byte-identical surviving output,
self-healing cache), printing the minimized failing seed on violation.
`spo rpc` retries idempotent requests over a dropped connection with
exponential backoff (`--retries`, `--retry-base-ms`); `spo serve
--write-timeout-ms N` bounds each response write, shedding clients that
stall past it.

`spo cache export-index` compiles a library's full analysis (plus its
intraprocedural ablation) into a single-file index (`spo-index/1`,
conventionally `policies.spi`): an interned, checksummed, offset-table
pack answering `query`/`diff` in sub-millisecond time without rerunning
the engine. `spo index query` binary-searches one entry point (or lists
the whole library); `spo index diff` runs the oracle over two indexes.
Both print bytes identical to the `analyze`/`diff` path. A corrupt,
truncated, or version-skewed index is a fatal typed error (exit 3) —
re-export it or fall back to full analysis; it never yields a wrong
answer. `spo serve --index NAME=PATH.spi` preloads an index so the
daemon answers `query`/`diff` for NAME from the warm index (falling
back to full analysis, with a stderr diagnostic, if it fails to load).

`--cache-dir PATH` warm-starts the analysis from a persistent summary
cache at PATH (created on first use): roots whose call-graph cone is
unchanged since the cached run skip analysis, and results are always
byte-identical to a cold run. A corrupt or stale entry only means that
root runs cold plus a stderr warning — never a changed report or exit
code. `--no-cache` ignores the cache for one run. `spo cache stats`
prints the store's entry count and size; `spo cache clear` empties it.

EXIT CODES:
  0  clean
  1  findings (policy differences, lint or throws findings)
  2  completed degraded (parse recovery, panicked/over-budget/cancelled
     roots); stdout for surviving roots matches a clean run
  3  fatal error (bad usage, unreadable input)
";

/// Extracts `--jobs N` / `--jobs=N` from an argument list, returning the
/// worker count (0 = one per CPU, the flag-absent default) and the
/// remaining arguments.
fn extract_jobs(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut jobs = 0usize;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        let value = if a == "--jobs" {
            Some(iter.next().ok_or("--jobs needs a value")?.as_str())
        } else {
            a.strip_prefix("--jobs=")
        };
        match value {
            Some(v) => {
                jobs = v.parse().map_err(|_| {
                    format!("--jobs: invalid worker count `{v}` (expected a positive integer)")
                })?;
                if jobs == 0 {
                    return Err(
                        "--jobs: worker count must be at least 1 (omit the flag to use all CPUs)"
                            .to_owned(),
                    );
                }
            }
            None => rest.push(a.clone()),
        }
    }
    Ok((jobs, rest))
}

/// Pulls `name VALUE` / `name=VALUE` off the argument stream.
fn flag_value(
    a: &str,
    name: &str,
    iter: &mut std::slice::Iter<'_, String>,
) -> Result<Option<String>, String> {
    if a == name {
        Ok(Some(
            iter.next().ok_or(format!("{name} needs a value"))?.clone(),
        ))
    } else if let Some(v) = a.strip_prefix(name).and_then(|v| v.strip_prefix('=')) {
        Ok(Some(v.to_owned()))
    } else {
        Ok(None)
    }
}

/// Extracts the degraded-mode flags — `--budget-steps N`,
/// `--budget-frames N`, `--deadline SECS`, plus the undocumented
/// fault-injection test hooks `--inject-panic SUBSTR` (repeatable) and
/// `--inject-sleep-ms N` — returning the [`GuardConfig`] (wired to the
/// process-wide Ctrl-C token) and the remaining arguments.
fn extract_guard(args: &[String]) -> Result<(GuardConfig, Vec<String>), String> {
    let mut guard = GuardConfig::default();
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--budget-steps", &mut iter)? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--budget-steps: invalid step count `{v}`"))?;
            // 0 is the Budget-internal "unlimited" sentinel; accepting it
            // here would silently disable the limit the user asked for.
            if n == 0 {
                return Err(
                    "--budget-steps: step budget must be at least 1 (omit the flag for unlimited)"
                        .to_owned(),
                );
            }
            guard.budget = guard.budget.steps(n);
        } else if let Some(v) = flag_value(a, "--budget-frames", &mut iter)? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--budget-frames: invalid frame count `{v}`"))?;
            if n == 0 {
                return Err(
                    "--budget-frames: frame budget must be at least 1 (omit the flag for unlimited)"
                        .to_owned(),
                );
            }
            guard.budget = guard.budget.frames(n);
        } else if let Some(v) = flag_value(a, "--deadline", &mut iter)? {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("--deadline: invalid seconds `{v}`"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!("--deadline: invalid seconds `{v}`"));
            }
            guard.budget = guard.budget.deadline_in(Duration::from_secs_f64(secs));
        } else if let Some(v) = flag_value(a, "--timeout-ms", &mut iter)? {
            // Alias for `--deadline` in milliseconds, matching the serve
            // protocol's per-request `timeout_ms` field.
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--timeout-ms: invalid milliseconds `{v}`"))?;
            if n == 0 {
                return Err(
                    "--timeout-ms: timeout must be at least 1 (omit the flag for unlimited)"
                        .to_owned(),
                );
            }
            guard.budget = guard.budget.deadline_in(Duration::from_millis(n));
        } else if let Some(v) = flag_value(a, "--inject-panic", &mut iter)? {
            guard.inject_panics.push(v);
        } else if let Some(v) = flag_value(a, "--inject-sleep-ms", &mut iter)? {
            guard.inject_sleep_ms = v
                .parse()
                .map_err(|_| format!("--inject-sleep-ms: invalid milliseconds `{v}`"))?;
        } else {
            rest.push(a.clone());
        }
    }
    guard.cancel = cancel_token();
    Ok((guard, rest))
}

/// The process-wide cancellation token. On unix the first call installs
/// SIGINT and SIGTERM handlers that flip it, so both Ctrl-C and a service
/// manager's `kill` drain the analysis workers while the command still
/// emits its partial report, diagnostics, and stats snapshot (exit code 2)
/// instead of dying mid-write. `spo serve` drains off the same token.
fn cancel_token() -> CancelToken {
    static TOKEN: std::sync::OnceLock<CancelToken> = std::sync::OnceLock::new();
    TOKEN
        .get_or_init(|| {
            let token = CancelToken::new();
            #[cfg(unix)]
            signals::install(token.clone());
            token
        })
        .clone()
}

#[cfg(unix)]
mod signals {
    use super::CancelToken;
    use std::sync::OnceLock;

    static SIGNAL_TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe: cancelling is one relaxed atomic store.
    extern "C" fn on_signal(_signum: i32) {
        if let Some(token) = SIGNAL_TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        if SIGNAL_TOKEN.set(token).is_ok() {
            let handler: extern "C" fn(i32) = on_signal;
            // SAFETY: installing a handler that only touches a lock-free
            // atomic, the async-signal-safe subset of the C API.
            unsafe {
                signal(SIGINT, handler as usize);
                signal(SIGTERM, handler as usize);
            }
        }
    }
}

/// Observability flags shared by the analysis commands.
#[derive(Debug)]
struct StatsOpts {
    /// `--stats`: render the human-readable summary to stderr.
    human: bool,
    /// `--stats-json PATH`: write the `spo-stats/1` snapshot (`-` = stdout).
    json_path: Option<String>,
}

impl StatsOpts {
    fn enabled(&self) -> bool {
        self.human || self.json_path.is_some()
    }

    /// An enabled recorder when any stats output was requested, else the
    /// zero-overhead disabled recorder.
    fn recorder(&self) -> Recorder {
        if self.enabled() {
            Recorder::new()
        } else {
            Recorder::disabled()
        }
    }

    /// Emits the requested outputs from the recorder's final snapshot.
    fn emit(&self, rec: &Recorder) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        let snap = rec.snapshot();
        if self.human {
            eprint!("{}", snap.render());
        }
        if let Some(path) = &self.json_path {
            let mut json = snap.to_json();
            json.push('\n');
            if path == "-" {
                print_report(&json)?;
            } else {
                std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        Ok(())
    }
}

/// Extracts `--stats` and `--stats-json PATH` / `--stats-json=PATH`,
/// returning the options and the remaining arguments.
fn extract_stats(args: &[String]) -> Result<(StatsOpts, Vec<String>), String> {
    let mut opts = StatsOpts {
        human: false,
        json_path: None,
    };
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--stats" {
            opts.human = true;
            continue;
        }
        let value = if a == "--stats-json" {
            Some(iter.next().ok_or("--stats-json needs a file path")?.clone())
        } else {
            a.strip_prefix("--stats-json=").map(str::to_owned)
        };
        match value {
            Some(p) => opts.json_path = Some(p),
            None => rest.push(a.clone()),
        }
    }
    Ok((opts, rest))
}

/// `--trace-out PATH`: the flight-recorder capture for one run.
#[derive(Debug)]
struct TraceOpts {
    out: Option<String>,
}

impl TraceOpts {
    /// An enabled tracer when a capture was requested, else the
    /// never-reads-the-clock disabled tracer.
    fn tracer(&self) -> Tracer {
        if self.out.is_some() {
            Tracer::new()
        } else {
            Tracer::disabled()
        }
    }

    /// Writes the finished capture. Called strictly after the report has
    /// been printed, so even a write failure cannot perturb stdout.
    fn write(&self, tracer: &Tracer) -> Result<(), String> {
        let Some(path) = &self.out else {
            return Ok(());
        };
        std::fs::write(path, tracer.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "# trace: {} event(s) ({} dropped) -> {path}",
            tracer.event_count(),
            tracer.dropped()
        );
        Ok(())
    }
}

/// Extracts `--trace-out PATH` / `--trace-out=PATH`, returning the trace
/// options and the remaining arguments.
fn extract_trace(args: &[String]) -> Result<(TraceOpts, Vec<String>), String> {
    let mut opts = TraceOpts { out: None };
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match flag_value(a, "--trace-out", &mut iter)? {
            Some(p) => opts.out = Some(p),
            None => rest.push(a.clone()),
        }
    }
    Ok((opts, rest))
}

/// Extracts `--cache-dir PATH` / `--cache-dir=PATH` and `--no-cache`,
/// returning the cache directory (`None` when absent or disabled by
/// `--no-cache`) and the remaining arguments.
fn extract_cache(args: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut dir: Option<String> = None;
    let mut no_cache = false;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--no-cache" {
            no_cache = true;
        } else if let Some(v) = flag_value(a, "--cache-dir", &mut iter)? {
            dir = Some(v);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((if no_cache { None } else { dir }, rest))
}

/// Opens the persistent summary cache at `dir` (when set) and attaches it
/// to the engine. Only failing to create/open the directory itself is
/// fatal; unusable *entries* degrade to cold roots at lookup time.
fn attach_cache(
    engine: AnalysisEngine,
    dir: &Option<String>,
) -> Result<(AnalysisEngine, Option<Arc<PolicyCache>>), String> {
    match dir {
        None => Ok((engine, None)),
        Some(d) => {
            let cache = Arc::new(
                PolicyCache::open(d.as_str()).map_err(|e| format!("--cache-dir {d}: {e}"))?,
            );
            Ok((engine.with_cache(Arc::clone(&cache)), Some(cache)))
        }
    }
}

/// Prints the cache's accumulated warnings to stderr. Deliberately kept
/// out of [`finish`]'s exit-code fold: an unusable cache entry only means
/// the root ran cold — the report is complete and exact, so the run must
/// not claim the degraded exit state.
fn report_cache_diags(cache: &Option<Arc<PolicyCache>>) {
    if let Some(cache) = cache {
        let mut diags = cache.take_diagnostics();
        diags.sort();
        for d in &diags {
            eprintln!("{d}");
        }
    }
}

/// The degraded-mode flags understood by `analyze`/`export`/`diff`, used
/// to give commands that run no analysis a pointed rejection.
const GUARD_FLAG_NAMES: [&str; 6] = [
    "--budget-steps",
    "--budget-frames",
    "--deadline",
    "--timeout-ms",
    "--inject-panic",
    "--inject-sleep-ms",
];

/// Rejects every flag not in `allowed`, naming the offender. Guard flags
/// get an explicit "wrong command" message instead of `unknown flag` so
/// the user learns the flag exists but does not apply here.
fn reject_unknown_flags(command: &str, flags: &[&str], allowed: &[&str]) -> Result<(), String> {
    for f in flags {
        let name = f.split('=').next().unwrap_or(f);
        if allowed.contains(&name) {
            continue;
        }
        if GUARD_FLAG_NAMES.contains(&name) {
            return Err(format!(
                "{name}: `{command}` runs no policy analysis, so degraded-mode limits do not \
                 apply (use analyze, export, or diff)"
            ));
        }
        return Err(format!("unknown flag `{name}` for `{command}`"));
    }
    Ok(())
}

/// Parses a flag set out of an argument list, returning remaining
/// positional arguments.
fn split_flags<'a>(args: &'a [String], flags: &mut Vec<&'a str>) -> Vec<&'a String> {
    let mut positional = Vec::new();
    for a in args {
        if a.starts_with("--") {
            flags.push(a.as_str());
        } else {
            positional.push(a);
        }
    }
    positional
}

/// Loads and layers the given `.jir` files with parse recovery: a
/// malformed member or class is dropped and reported as a diagnostic
/// instead of failing the load. Only I/O errors are fatal.
fn load_program(
    paths: &[&String],
    rec: &Recorder,
    diags: &mut Vec<Diagnostic>,
) -> Result<Program, String> {
    if paths.is_empty() {
        return Err("no input files".to_owned());
    }
    let mut program = Program::new();
    for path in paths {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let recovery = spo_jir::parse_into_recovering_traced(&src, &mut program, rec);
        for d in recovery.diagnostics {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                phase: Phase::Parse,
                root: format!("{path}:{}:{}", d.line, d.col),
                cause: Cause::Parse,
                message: format!("{} (dropped {})", d.message, d.dropped),
            });
        }
    }
    Ok(program)
}

/// Prints every diagnostic to stderr — stdout carries only the report, so
/// a degraded run's surviving output stays byte-identical to a clean run
/// restricted to the same roots — and folds them into the exit code:
/// degraded (2) beats findings (1) beats clean (0).
fn finish(diags: &[Diagnostic], findings: bool) -> ExitCode {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort();
    for d in sorted {
        eprintln!("{d}");
    }
    if !diags.is_empty() {
        eprintln!(
            "# {} degradation(s); results are a lower bound",
            diags.len()
        );
        ExitCode::from(EXIT_DEGRADED)
    } else if findings {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes a rendered report to stdout, treating a broken pipe as a quiet
/// success: `spo analyze ... | head` must exit with the analysis verdict,
/// not a panic, when the reader hangs up early. Any other write error is
/// still fatal — a truncated report on a healthy pipe would be silent
/// data loss.
fn print_report(s: &str) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match out.write_all(s.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

fn options_from(flags: &[&str]) -> Result<AnalysisOptions, String> {
    let mut options = AnalysisOptions::default();
    for f in flags {
        match *f {
            "--no-icp" => options.icp = false,
            "--broad" => options.events = EventDef::Broad,
            "--intra-only" => options.interprocedural = false,
            other if other.starts_with("--name") => {}
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    // `check` runs no policy analysis; `--jobs` is accepted for interface
    // uniformity with `analyze`/`diff`.
    let (_jobs, args) = extract_jobs(args)?;
    let (stats_opts, args) = extract_stats(&args)?;
    let (trace_opts, args) = extract_trace(&args)?;
    let rec = stats_opts.recorder();
    let tracer = trace_opts.tracer();
    let mut flags = Vec::new();
    let paths = split_flags(&args, &mut flags);
    reject_unknown_flags("check", &flags, &["--lint"])?;
    let lint = flags.contains(&"--lint");
    let mut diags = Vec::new();
    // `check` runs no engine, so the timeline is a single CLI lane with
    // load and call-graph phases.
    let lane = if tracer.is_enabled() {
        tracer.lane("cli")
    } else {
        TraceLane::disabled()
    };
    let program = {
        let _span = lane.span("load", "cli");
        load_program(&paths, &rec, &mut diags)?
    };
    let cg_span = lane.span("call-graph", "cli");
    let entries = spo_resolve::entry_points(&program);
    let hierarchy = spo_resolve::Hierarchy::new(&program);
    let cg = spo_resolve::CallGraph::from_entry_points_traced(&hierarchy, &rec);
    drop(cg_span);
    let stats = cg.stats();
    println!(
        "{} classes, {} statements, {} entry points, {} reachable methods",
        program.class_count(),
        program.stmt_count(),
        entries.len(),
        cg.reachable_count(),
    );
    println!(
        "call sites: {} unique, {} ambiguous, {} unknown ({:.1}% resolved)",
        stats.unique,
        stats.ambiguous,
        stats.unknown,
        stats.resolved_fraction() * 100.0,
    );
    let mut findings = false;
    if lint {
        let lints = spo_resolve::lint_program(&program);
        for l in &lints {
            println!("lint: {} (stmt {}): {}", l.location, l.stmt, l.kind);
        }
        println!("{} lint finding(s)", lints.len());
        findings = !lints.is_empty();
    }
    trace_opts.write(&tracer)?;
    stats_opts.emit(&rec)?;
    Ok(finish(&diags, findings))
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let (jobs, args) = extract_jobs(args)?;
    let (stats_opts, args) = extract_stats(&args)?;
    let (guard, args) = extract_guard(&args)?;
    let (cache_dir, args) = extract_cache(&args)?;
    let (trace_opts, args) = extract_trace(&args)?;
    let rec = stats_opts.recorder();
    let tracer = trace_opts.tracer();
    let mut flags = Vec::new();
    let paths = split_flags(&args, &mut flags);
    let options = options_from(&flags)?;
    let mut diags = Vec::new();
    let program = load_program(&paths, &rec, &mut diags)?;
    let engine = AnalysisEngine::new(jobs)
        .with_recorder(rec.clone())
        .with_guard(guard)
        .with_tracer(tracer.clone());
    let (engine, cache) = attach_cache(engine, &cache_dir)?;
    let (lib, _stats) = engine.analyze_library(&program, "input", options);
    report_cache_diags(&cache);
    // The daemon's `analyze`/`query` responses embed this same string, so
    // resident and one-shot reports stay byte-identical by construction.
    print_report(&spo_core::render_analysis(&lib))?;
    diags.extend(lib.degraded.values().cloned());
    trace_opts.write(&tracer)?;
    stats_opts.emit(&rec)?;
    Ok(finish(&diags, false))
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let (jobs, args) = extract_jobs(args)?;
    let (stats_opts, args) = extract_stats(&args)?;
    let (guard, args) = extract_guard(&args)?;
    let (cache_dir, args) = extract_cache(&args)?;
    let (trace_opts, args) = extract_trace(&args)?;
    let rec = stats_opts.recorder();
    let tracer = trace_opts.tracer();
    let mut flags = Vec::new();
    let mut name = "library".to_owned();
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a == "--name" {
            name = iter.next().ok_or("--name needs a value")?.clone();
        } else if a.starts_with("--") {
            flags.push(a.as_str());
        } else {
            positional.push(a);
        }
    }
    let options = options_from(&flags)?;
    let mut diags = Vec::new();
    let program = load_program(&positional, &rec, &mut diags)?;
    let engine = AnalysisEngine::new(jobs)
        .with_recorder(rec.clone())
        .with_guard(guard)
        .with_tracer(tracer.clone());
    let (engine, cache) = attach_cache(engine, &cache_dir)?;
    let (lib, _stats) = engine.analyze_library(&program, &name, options);
    report_cache_diags(&cache);
    print_report(&export_policies(&lib))?;
    diags.extend(lib.degraded.values().cloned());
    trace_opts.write(&tracer)?;
    stats_opts.emit(&rec)?;
    Ok(finish(&diags, false))
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (jobs, args) = extract_jobs(args)?;
    let (stats_opts, args) = extract_stats(&args)?;
    let (guard, args) = extract_guard(&args)?;
    let (cache_dir, args) = extract_cache(&args)?;
    let (trace_opts, args) = extract_trace(&args)?;
    let rec = stats_opts.recorder();
    let tracer = trace_opts.tracer();
    let vs = args
        .iter()
        .position(|a| a == "--vs")
        .ok_or("diff needs `--vs` separating the two implementations")?;
    let mut flags = Vec::new();
    let left_paths = split_flags(&args[..vs], &mut flags);
    let right_paths = split_flags(&args[vs + 1..], &mut flags);
    let html = flags.contains(&"--html");
    let flags: Vec<&str> = flags.into_iter().filter(|f| *f != "--html").collect();
    let options = options_from(&flags)?;
    let mut diags = Vec::new();
    let left = load_program(&left_paths, &rec, &mut diags)?;
    let right = load_program(&right_paths, &rec, &mut diags)?;
    let engine = AnalysisEngine::new(jobs)
        .with_recorder(rec.clone())
        .with_guard(guard)
        .with_tracer(tracer.clone());
    let (engine, cache) = attach_cache(engine, &cache_dir)?;
    let report = compare_implementations_with(&left, "left", &right, "right", options, &engine);
    report_cache_diags(&cache);
    if html {
        print_report(&spo_core::render_html(&report.diff, &report.groups))?;
    } else {
        print_report(&report.render())?;
    }
    // A degraded root on either side is excluded from that side's entries,
    // so the diff silently skips it; surface the exclusion instead.
    diags.extend(report.left.degraded.values().cloned());
    diags.extend(report.right.degraded.values().cloned());
    trace_opts.write(&tracer)?;
    stats_opts.emit(&rec)?;
    Ok(finish(&diags, !report.groups.is_empty()))
}

fn cmd_throws(args: &[String]) -> Result<ExitCode, String> {
    let vs = args
        .iter()
        .position(|a| a == "--vs")
        .ok_or("throws needs `--vs` separating the two implementations")?;
    let mut flags = Vec::new();
    let left_paths = split_flags(&args[..vs], &mut flags);
    let right_paths = split_flags(&args[vs + 1..], &mut flags);
    reject_unknown_flags("throws", &flags, &[])?;
    let off = Recorder::disabled();
    let mut diags = Vec::new();
    let left = load_program(&left_paths, &off, &mut diags)?;
    let right = load_program(&right_paths, &off, &mut diags)?;
    let lt = spo_core::ThrowsAnalyzer::new(&left).analyze_library("left");
    let rt = spo_core::ThrowsAnalyzer::new(&right).analyze_library("right");
    let diffs = spo_core::diff_throws(&lt, &rt);
    for d in &diffs {
        println!("entry {}", d.signature);
        if !d.only_left.is_empty() {
            println!("  only left throws:  {:?}", d.only_left);
        }
        if !d.only_right.is_empty() {
            println!("  only right throws: {:?}", d.only_right);
        }
    }
    println!("# {} exception-behaviour difference(s)", diffs.len());
    Ok(finish(&diags, !diffs.is_empty()))
}

fn cmd_stats_validate(args: &[String]) -> Result<ExitCode, String> {
    let mut schema = obs::SCHEMA.to_owned();
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--schema", &mut iter)? {
            schema = v;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}` for `stats-validate`"));
        } else {
            paths.push(a);
        }
    }
    let [path] = paths[..] else {
        return Err("stats-validate needs exactly one snapshot JSON file".to_owned());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let validate = match schema.as_str() {
        obs::SCHEMA => obs::json::validate_stats,
        obs::trace::TRACE_SCHEMA => obs::json::validate_trace,
        other => {
            return Err(format!(
                "--schema: unknown schema `{other}` (expected {} or {})",
                obs::SCHEMA,
                obs::trace::TRACE_SCHEMA
            ))
        }
    };
    validate(&src).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: valid {schema} snapshot");
    Ok(ExitCode::SUCCESS)
}

/// `spo cache (stats|clear) --cache-dir PATH`: inspect or empty the
/// persistent summary cache without running an analysis.
/// `spo cache export-index` compiles an analysis into a `.spi` index.
fn cmd_cache(args: &[String]) -> Result<ExitCode, String> {
    let action = args
        .first()
        .map(String::as_str)
        .ok_or("cache needs an action: `stats`, `clear`, or `export-index`")?;
    if action == "export-index" {
        return cmd_cache_export_index(&args[1..]);
    }
    let (cache_dir, rest) = extract_cache(&args[1..])?;
    if let Some(extra) = rest.first() {
        return Err(format!("cache: unexpected argument `{extra}`"));
    }
    let dir = cache_dir.ok_or("cache: `--cache-dir PATH` is required")?;
    let cache = PolicyCache::open(dir.as_str()).map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    match action {
        "stats" => {
            let (files, bytes) = cache
                .disk_usage()
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            println!("{}: {files} entries, {bytes} bytes", cache.dir().display());
        }
        "clear" => {
            let removed = cache
                .clear()
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            println!("{}: removed {removed} entries", cache.dir().display());
        }
        other => {
            return Err(format!(
                "cache: unknown action `{other}` (use stats, clear, or export-index)"
            ))
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `spo cache export-index <file.jir>... --out PATH.spi`: run the full
/// analysis plus its intraprocedural ablation and compile both into one
/// `spo-index/1` file. Compiling a degraded analysis is refused — an
/// index is durable, so baking in a lower-bound answer would let it
/// masquerade as the complete one forever after.
fn cmd_cache_export_index(args: &[String]) -> Result<ExitCode, String> {
    let (jobs, args) = extract_jobs(args)?;
    let (guard, args) = extract_guard(&args)?;
    let mut flags = Vec::new();
    let mut name = "library".to_owned();
    let mut out: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--name", &mut iter)? {
            name = v;
        } else if let Some(v) = flag_value(a, "--out", &mut iter)? {
            out = Some(v);
        } else if a.starts_with("--") {
            flags.push(a.as_str());
        } else {
            positional.push(a);
        }
    }
    let out = out.ok_or("cache export-index: `--out PATH` is required")?;
    let options = options_from(&flags)?;
    if !options.interprocedural {
        return Err(
            "cache export-index: drop `--intra-only` — the index always stores both the \
             full and the intraprocedural analysis"
                .to_owned(),
        );
    }
    let rec = Recorder::disabled();
    let mut diags = Vec::new();
    let program = load_program(&positional, &rec, &mut diags)?;
    if !diags.is_empty() {
        for d in &diags {
            eprintln!("{d}");
        }
        return Err(
            "cache export-index: refusing to compile an index from a degraded parse".to_owned(),
        );
    }
    let engine = AnalysisEngine::new(jobs).with_guard(guard);
    let (full, stats) = engine.analyze_library(&program, &name, options);
    let intra_options = AnalysisOptions {
        interprocedural: false,
        ..options
    };
    let (intra, _) = engine.analyze_library(&program, &name, intra_options);
    // Cone fingerprints let a later run detect staleness without
    // reanalysis; they use the same keyer as the summary cache.
    let roots = spo_resolve::entry_points(&program);
    let keyer = spo_cache::CacheKeyer::new(&program, &roots, &options);
    let mut fingerprints = std::collections::BTreeMap::new();
    for &root in &roots {
        if let Some(key) = keyer.key(root) {
            fingerprints.insert(program.method_signature(root), key);
        }
    }
    let bytes = spo_index::IndexBuilder::new(&name, &options, &full, &intra)
        .fingerprints(&fingerprints)
        .build()
        .map_err(|e| format!("cache export-index: {e}"))?;
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "spo cache export-index: wrote {out}: {} entry points, {} bytes",
        stats.entry_points,
        bytes.len(),
    );
    Ok(ExitCode::SUCCESS)
}

/// `spo index (query|diff)`: answer from a compiled `.spi` index without
/// running the engine. Any parse/decode failure is fatal (exit 3) with a
/// diagnostic naming the file — degraded, never wrong.
fn cmd_index(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("query") => cmd_index_query(&args[1..]),
        Some("diff") => cmd_index_diff(&args[1..]),
        Some(other) => Err(format!(
            "index: unknown action `{other}` (use query or diff)"
        )),
        None => Err("index needs an action: `query` or `diff`".to_owned()),
    }
}

/// Reads and parses one index file, mapping every failure to a fatal
/// diagnostic that names the file and suggests the fallback.
fn load_index_bytes(path: &str) -> Result<Vec<u8>, String> {
    spo_index::read_index_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn index_parse_err(path: &str, e: &str) -> String {
    format!("{path}: {e}; the index is unusable — re-export it or fall back to `spo analyze`/`spo diff`")
}

fn cmd_index_query(args: &[String]) -> Result<ExitCode, String> {
    let mut index_path: Option<String> = None;
    let mut roots: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--index", &mut iter)? {
            index_path = Some(v);
        } else if a.starts_with("--") {
            return Err(format!("unknown argument `{a}` for `index query`"));
        } else {
            roots.push(a);
        }
    }
    let path = index_path.ok_or("index query: `--index PATH` is required")?;
    if roots.len() > 1 {
        return Err(format!(
            "index query takes at most one entry-point signature (got {})",
            roots.len()
        ));
    }
    let bytes = load_index_bytes(&path)?;
    let index = spo_index::PolicyIndex::parse(&bytes).map_err(|e| index_parse_err(&path, &e))?;
    match roots.first() {
        None => {
            let report = index
                .render_full()
                .map_err(|e| index_parse_err(&path, &e))?;
            print_report(&report)?;
        }
        Some(sig) => {
            let report = index
                .query(sig)
                .map_err(|e| index_parse_err(&path, &e))?
                .ok_or_else(|| format!("no entry point \"{sig}\" in \"{}\"", index.library()))?;
            print_report(&report)?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_index_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&String> = Vec::new();
    for a in args {
        if a.starts_with("--") {
            return Err(format!("unknown argument `{a}` for `index diff`"));
        }
        paths.push(a);
    }
    let [left_path, right_path] = paths[..] else {
        return Err(format!(
            "index diff needs exactly two .spi files (got {})",
            paths.len()
        ));
    };
    let left_bytes = load_index_bytes(left_path)?;
    let right_bytes = load_index_bytes(right_path)?;
    let left =
        spo_index::PolicyIndex::parse(&left_bytes).map_err(|e| index_parse_err(left_path, &e))?;
    let right =
        spo_index::PolicyIndex::parse(&right_bytes).map_err(|e| index_parse_err(right_path, &e))?;
    // Mixed analysis options would make every difference suspect, so the
    // tokens must match exactly — same rule as the summary cache.
    if left.options_token() != right.options_token() {
        return Err(format!(
            "index diff: analysis options mismatch: {left_path} was compiled under `{}`, \
             {right_path} under `{}`",
            left.options_token(),
            right.options_token(),
        ));
    }
    let (left_full, left_intra) = left
        .to_libraries()
        .map_err(|e| index_parse_err(left_path, &e))?;
    let (right_full, right_intra) = right
        .to_libraries()
        .map_err(|e| index_parse_err(right_path, &e))?;
    let (report, findings) =
        spo_index::diff_rendered(&left_full, &left_intra, &right_full, &right_intra);
    print_report(&report)?;
    Ok(if findings {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    })
}

/// `spo serve`: run the resident oracle daemon until a `shutdown` request
/// or SIGINT/SIGTERM, then drain gracefully.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let (jobs, rest) = extract_jobs(args)?;
    let (stats, rest) = extract_stats(&rest)?;
    let (guard, rest) = extract_guard(&rest)?;
    if guard.budget.deadline.is_some() {
        return Err(
            "--deadline/--timeout-ms: the daemon serves indefinitely; per-request deadlines \
             come from each request's `timeout_ms` field or `--default-timeout-ms N`"
                .to_owned(),
        );
    }
    let mut config = spo_serve::ServeConfig {
        jobs,
        guard,
        recorder: Recorder::new(),
        ..spo_serve::ServeConfig::default()
    };
    let mut iter = rest.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--socket", &mut iter)? {
            config.socket = Some(v.into());
        } else if let Some(v) = flag_value(a, "--tcp", &mut iter)? {
            config.tcp = Some(v);
        } else if let Some(v) = flag_value(a, "--workers", &mut iter)? {
            config.workers = v
                .parse()
                .map_err(|_| format!("--workers: invalid worker count `{v}`"))?;
            if config.workers == 0 {
                return Err(
                    "--workers: worker count must be at least 1 (omit the flag for the default)"
                        .to_owned(),
                );
            }
        } else if let Some(v) = flag_value(a, "--cache-dir", &mut iter)? {
            config.cache_dir = Some(v.into());
        } else if a == "--no-cache" {
            config.no_cache = true;
        } else if let Some(v) = flag_value(a, "--max-line-bytes", &mut iter)? {
            config.max_line_bytes = v
                .parse()
                .map_err(|_| format!("--max-line-bytes: invalid byte count `{v}`"))?;
            if config.max_line_bytes == 0 {
                return Err(
                    "--max-line-bytes: cap must be at least 1 (omit the flag for the default)"
                        .to_owned(),
                );
            }
        } else if let Some(v) = flag_value(a, "--drain-grace", &mut iter)? {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("--drain-grace: invalid seconds `{v}`"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!("--drain-grace: invalid seconds `{v}`"));
            }
            config.drain_grace = Duration::from_secs_f64(secs);
        } else if let Some(v) = flag_value(a, "--default-timeout-ms", &mut iter)? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--default-timeout-ms: invalid milliseconds `{v}`"))?;
            if n == 0 {
                return Err(
                    "--default-timeout-ms: timeout must be at least 1 (omit the flag for unlimited)"
                        .to_owned(),
                );
            }
            config.default_timeout = Some(Duration::from_millis(n));
        } else if let Some(v) = flag_value(a, "--write-timeout-ms", &mut iter)? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--write-timeout-ms: invalid milliseconds `{v}`"))?;
            // 0 disables the per-session write deadline (a stalled client
            // can then hold a response writer forever — test use only).
            config.write_timeout = (n > 0).then(|| Duration::from_millis(n));
        } else if let Some(v) = flag_value(a, "--load", &mut iter)? {
            let (name, paths) = v
                .split_once('=')
                .ok_or_else(|| format!("--load: expected NAME=FILE[,FILE...], got `{v}`"))?;
            if name.is_empty() || paths.is_empty() {
                return Err(format!("--load: expected NAME=FILE[,FILE...], got `{v}`"));
            }
            config.preload.push((
                name.to_owned(),
                paths.split(',').map(str::to_owned).collect(),
            ));
        } else if let Some(v) = flag_value(a, "--index", &mut iter)? {
            let (name, path) = v
                .split_once('=')
                .ok_or_else(|| format!("--index: expected NAME=PATH.spi, got `{v}`"))?;
            if name.is_empty() || path.is_empty() {
                return Err(format!("--index: expected NAME=PATH.spi, got `{v}`"));
            }
            config.preload_index.push((name.to_owned(), path.into()));
        } else {
            return Err(format!("unknown argument `{a}` for `serve`"));
        }
    }
    let recorder = config.recorder.clone();
    let report = spo_serve::run(config)?;
    eprintln!(
        "spo serve: drained {} request(s) over {} session(s) in {:.1?}{}",
        report.requests,
        report.sessions,
        report.drained_in,
        if report.graceful { "" } else { " (forced)" }
    );
    stats.emit(&recorder)?;
    Ok(if report.graceful {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_DEGRADED)
    })
}

/// Methods whose daemon-side effect is safe to repeat after a dropped
/// connection: either read-only (`analyze`, `query`, `diff`, `stats`,
/// `trace`) or convergent (`load` of the same NAME=FILES is a no-op
/// replace). `reload` re-reads sources (a concurrent edit could make the
/// retry observe different bytes) and `shutdown` tears the daemon down,
/// so a lost response leaves their outcome genuinely unknown — those are
/// never retried.
const RPC_IDEMPOTENT: [&str; 6] = ["load", "analyze", "query", "diff", "stats", "trace"];

/// One connected rpc stream pair.
struct RpcConn {
    writer: Box<dyn std::io::Write>,
    reader: std::io::BufReader<Box<dyn std::io::Read>>,
}

/// `spo rpc`: send request lines to a running daemon in lock-step and
/// print each response. Exit code folds the response statuses: any
/// `error` -> 3, else any `degraded` -> 2, else 0.
///
/// A dropped connection (daemon restart, injected fault, flaky network)
/// is retried with exponential backoff plus jitter — but only for
/// [`RPC_IDEMPOTENT`] methods, and only until `--retries` attempts are
/// spent. Reconnects are surfaced on stderr, never stdout: a retried
/// run's stdout stays byte-identical to an undisturbed one.
fn cmd_rpc(args: &[String]) -> Result<ExitCode, String> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut stats_json: Option<String> = None;
    let mut retries: u32 = 5;
    let mut retry_base = Duration::from_millis(50);
    let mut requests: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--socket", &mut iter)? {
            socket = Some(v);
        } else if let Some(v) = flag_value(a, "--tcp", &mut iter)? {
            tcp = Some(v);
        } else if let Some(v) = flag_value(a, "--stats-json", &mut iter)? {
            stats_json = Some(v);
        } else if let Some(v) = flag_value(a, "--retries", &mut iter)? {
            retries = v
                .parse()
                .map_err(|_| format!("--retries: invalid retry count `{v}` (0 disables)"))?;
        } else if let Some(v) = flag_value(a, "--retry-base-ms", &mut iter)? {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--retry-base-ms: invalid milliseconds `{v}`"))?;
            retry_base = Duration::from_millis(n);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}` for `rpc`"));
        } else {
            requests.push(a.clone());
        }
    }
    if requests.is_empty() {
        return Err("rpc needs at least one request line".to_owned());
    }
    use std::io::{BufRead, Write};
    let connect = || -> Result<RpcConn, String> {
        match (&socket, &tcp) {
            (Some(path), None) => {
                let s = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("{path}: {e}"))?;
                let r = s.try_clone().map_err(|e| format!("{path}: {e}"))?;
                Ok(RpcConn {
                    writer: Box::new(s),
                    reader: std::io::BufReader::new(Box::new(r) as Box<dyn std::io::Read>),
                })
            }
            (None, Some(addr)) => {
                let s = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
                let r = s.try_clone().map_err(|e| format!("{addr}: {e}"))?;
                Ok(RpcConn {
                    writer: Box::new(s),
                    reader: std::io::BufReader::new(Box::new(r) as Box<dyn std::io::Read>),
                })
            }
            _ => Err("rpc needs exactly one of --socket PATH or --tcp ADDR".to_owned()),
        }
    };
    // Jitter decorrelates concurrent clients hammering a restarting
    // daemon; correctness never depends on the values drawn.
    let mut rng = spo_rng::SmallRng::seed_from_u64(
        u64::from(std::process::id()).rotate_left(32)
            ^ std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64)
                .unwrap_or(0),
    );
    let mut conn: Option<RpcConn> = Some(connect()?);
    let mut reconnects: u64 = 0;
    let mut exit = 0u8;
    for request in &requests {
        let method = obs::json::parse(request)
            .ok()
            .and_then(|doc| {
                doc.get("method")
                    .and_then(obs::json::Value::as_str)
                    .map(str::to_owned)
            })
            .unwrap_or_default();
        let retryable = RPC_IDEMPOTENT.contains(&method.as_str());
        let mut attempt: u32 = 0;
        let response = loop {
            let step = (|| -> std::io::Result<String> {
                if conn.is_none() {
                    let fresh = connect().map_err(std::io::Error::other)?;
                    conn = Some(fresh);
                }
                let c = conn.as_mut().expect("connection established above");
                writeln!(c.writer, "{request}")?;
                c.writer.flush()?;
                let mut response = String::new();
                let n = c.reader.read_line(&mut response)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a response arrived",
                    ));
                }
                // A line without its terminator is a connection torn down
                // mid-response: the frame is incomplete, not a payload.
                if !response.ends_with('\n') {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ));
                }
                Ok(response)
            })();
            match step {
                Ok(response) => break response,
                Err(e) => {
                    // The stream is in an unknown state; always reconnect.
                    conn = None;
                    if !retryable || attempt >= retries {
                        let verb = if matches!(
                            e.kind(),
                            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::BrokenPipe
                        ) {
                            "receive"
                        } else {
                            "send"
                        };
                        return Err(format!("{verb}: {e}"));
                    }
                    let backoff = retry_base
                        .saturating_mul(1u32 << attempt.min(10))
                        .saturating_add(Duration::from_millis(
                            rng.gen_range(0..retry_base.as_millis().max(1) as u64),
                        ));
                    eprintln!(
                        "spo rpc: {e}; retrying `{method}` in {backoff:.1?} \
                         (attempt {}/{retries})",
                        attempt + 1,
                    );
                    std::thread::sleep(backoff);
                    attempt += 1;
                    reconnects += 1;
                }
            }
        };
        let response = response.trim_end_matches('\n');
        print_report(&format!("{response}\n"))?;
        let doc = obs::json::parse(response)
            .map_err(|e| format!("malformed response from daemon: {e}"))?;
        match doc.get("status").and_then(obs::json::Value::as_str) {
            Some("ok") => {}
            Some("degraded") => exit = exit.max(EXIT_DEGRADED),
            _ => exit = exit.max(EXIT_FATAL),
        }
        if let (Some(path), Some(stats)) =
            (&stats_json, doc.get("result").and_then(|r| r.get("stats")))
        {
            let mut payload = stats.to_compact();
            payload.push('\n');
            std::fs::write(path, payload).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    if reconnects > 0 {
        eprintln!("# rpc: {reconnects} reconnect(s)");
    }
    Ok(ExitCode::from(exit))
}

/// `spo trace`: fetch a recent request's flight-recorder capture from a
/// running daemon (the request must have carried a `trace_id`). Prints
/// the `spo-trace/1` document to stdout, or writes it to `--out PATH` —
/// ready to load in Perfetto or chrome://tracing.
fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut trace_id: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--socket", &mut iter)? {
            socket = Some(v);
        } else if let Some(v) = flag_value(a, "--tcp", &mut iter)? {
            tcp = Some(v);
        } else if let Some(v) = flag_value(a, "--trace-id", &mut iter)? {
            trace_id = Some(v);
        } else if let Some(v) = flag_value(a, "--out", &mut iter)? {
            out_path = Some(v);
        } else {
            return Err(format!("unknown argument `{a}` for `trace`"));
        }
    }
    use std::io::{BufRead, BufReader, Read, Write};
    let (mut writer, reader): (Box<dyn Write>, Box<dyn Read>) = match (&socket, &tcp) {
        (Some(path), None) => {
            let s = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("{path}: {e}"))?;
            let r = s.try_clone().map_err(|e| format!("{path}: {e}"))?;
            (Box::new(s), Box::new(r))
        }
        (None, Some(addr)) => {
            let s = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
            let r = s.try_clone().map_err(|e| format!("{addr}: {e}"))?;
            (Box::new(s), Box::new(r))
        }
        _ => return Err("trace needs exactly one of --socket PATH or --tcp ADDR".to_owned()),
    };
    let request = match &trace_id {
        Some(id) => format!(
            r#"{{"spo-rpc":1,"id":0,"method":"trace","params":{{"trace_id":"{}"}}}}"#,
            obs::json::escape(id)
        ),
        None => r#"{"spo-rpc":1,"id":0,"method":"trace"}"#.to_owned(),
    };
    writeln!(writer, "{request}").map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    let n = BufReader::new(reader)
        .read_line(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    if n == 0 {
        return Err("connection closed before a response arrived".to_owned());
    }
    let doc = obs::json::parse(response.trim_end_matches('\n'))
        .map_err(|e| format!("malformed response from daemon: {e}"))?;
    if doc.get("status").and_then(obs::json::Value::as_str) != Some("ok") {
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(obs::json::Value::as_str)
            .unwrap_or("daemon returned a non-ok status");
        return Err(message.to_owned());
    }
    let result = doc.get("result").ok_or("response carries no result")?;
    let capture = result
        .get("trace")
        .ok_or("response carries no trace document")?
        .to_compact();
    let id = result
        .get("trace_id")
        .and_then(obs::json::Value::as_str)
        .unwrap_or("?");
    match &out_path {
        Some(path) => {
            let mut payload = capture;
            payload.push('\n');
            std::fs::write(path, payload).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("# trace {id} -> {path}");
        }
        None => {
            let mut payload = capture;
            payload.push('\n');
            print_report(&payload)?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff_policies(args: &[String]) -> Result<ExitCode, String> {
    let [left_path, right_path] = args else {
        return Err("diff-policies needs exactly two policy files".to_owned());
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let left = import_policies(&read(left_path)?).map_err(|e| format!("{left_path}: {e}"))?;
    let right = import_policies(&read(right_path)?).map_err(|e| format!("{right_path}: {e}"))?;
    let diff = diff_libraries(&left, &right);
    let groups = group_differences(&diff, &Default::default());
    print_report(&render_reports(&diff, &groups))?;
    Ok(if groups.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Embedded soak fixture: a six-class library over a tiny
/// `SecurityManager` prelude, giving the engine multiple independent
/// roots (so keyed fault injection can perturb a strict subset) and the
/// cache several cones to pack.
const CHAOS_FIXTURE_A: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class chaos.A {
  method public void read() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("a");
    staticinvoke chaos.A.op();
    return;
  }
  method private static native void op();
}
class chaos.B {
  method public void write() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("b");
    staticinvoke chaos.B.op();
    return;
  }
  method private static native void op();
}
class chaos.C {
  method public void readwrite() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("c");
    virtualinvoke sm.checkWrite("c");
    staticinvoke chaos.C.op();
    return;
  }
  method private static native void op();
}
class chaos.D {
  method public void unguarded() {
    staticinvoke chaos.D.op();
    return;
  }
  method private static native void op();
}
class chaos.E {
  method public void delegated() {
    local chaos.A a;
    a = new chaos.A;
    virtualinvoke a.read();
    return;
  }
}
class chaos.F {
  method public void idle() {
    local int i;
    i = 0;
    return;
  }
}
"#;

/// Layered variant: two extra classes over the same prelude, one of them
/// an unguarded twin of `chaos.A.read` (a deliberate policy hole).
/// Layering it onto [`CHAOS_FIXTURE_A`] grows the root set without
/// disturbing existing cones — a pack-extending cache write.
const CHAOS_FIXTURE_B: &str = r#"
class chaos.X {
  method public void read() {
    staticinvoke chaos.X.op();
    return;
  }
  method private static native void op();
}
class chaos.Y {
  method public void write() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("y");
    staticinvoke chaos.Y.op();
    return;
  }
  method private static native void op();
}
"#;

/// `spo chaos <action>`: fault-injection tooling. `soak` is the only
/// action today.
fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("soak") => chaos_soak(&args[1..]),
        Some(other) => Err(format!("chaos: unknown action `{other}` (use soak)")),
        None => Err("chaos needs an action: `soak`".to_owned()),
    }
}

/// One soak schedule's invariant violation.
struct SoakViolation {
    why: String,
    replay: String,
}

/// Everything a soak schedule needs from the surrounding run.
struct SoakEnv {
    exe: std::path::PathBuf,
    work: std::path::PathBuf,
    fixture_a: std::path::PathBuf,
    fixture_ab: std::path::PathBuf,
    rate: f64,
    clean_a: Vec<u8>,
    clean_ab: Vec<u8>,
    serve_baseline: Vec<u8>,
    /// A disarmed `spo cache export-index` of fixture A, built once.
    index_a: std::path::PathBuf,
    /// Fault-free `spo index query --index index_a` stdout.
    index_baseline: Vec<u8>,
}

/// The two fixed rpc requests every serve-mode schedule (and the
/// baseline) sends; responses are byte-deterministic, so a faulted run
/// must reproduce the baseline exactly.
const SOAK_RPC_REQUESTS: [&str; 2] = [
    r#"{"spo-rpc":1,"id":1,"method":"analyze","params":{"name":"lib"}}"#,
    r#"{"spo-rpc":1,"id":2,"method":"query","params":{"name":"lib"}}"#,
];

/// `spo chaos soak`: drive randomized fault schedules against the cache,
/// the engine, a live daemon, and the compiled policy index, asserting
/// the standing invariants —
/// no panic escapes, exit codes keep their contract, surviving output is
/// byte-identical to a clean run, and the cache self-heals. Every
/// schedule derives from `--seed`, so a red run replays exactly.
fn chaos_soak(args: &[String]) -> Result<ExitCode, String> {
    let mut seed: u64 = 1;
    let mut schedules: u64 = 200;
    let mut rate: f64 = 0.3;
    let mut keep_going = false;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = flag_value(a, "--seed", &mut iter)? {
            seed = v
                .parse()
                .map_err(|_| format!("--seed: invalid seed `{v}`"))?;
        } else if let Some(v) = flag_value(a, "--schedules", &mut iter)? {
            schedules = v
                .parse()
                .map_err(|_| format!("--schedules: invalid count `{v}`"))?;
        } else if let Some(v) = flag_value(a, "--rate", &mut iter)? {
            rate = v
                .parse()
                .map_err(|_| format!("--rate: invalid probability `{v}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("--rate: probability `{v}` out of [0, 1]"));
            }
        } else if a == "--keep-going" {
            keep_going = true;
        } else {
            return Err(format!("unknown argument `{a}` for `chaos soak`"));
        }
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let work = std::env::temp_dir().join(format!("spo-chaos-soak-{}", std::process::id()));
    std::fs::create_dir_all(&work).map_err(|e| format!("{}: {e}", work.display()))?;
    let fixture_a = work.join("a.jir");
    let fixture_b = work.join("b.jir");
    std::fs::write(&fixture_a, CHAOS_FIXTURE_A).map_err(|e| format!("a.jir: {e}"))?;
    std::fs::write(&fixture_b, CHAOS_FIXTURE_B).map_err(|e| format!("b.jir: {e}"))?;

    // Fault-free baselines. Every invariant below compares against these
    // bytes, so a failed baseline is fatal, not a violation.
    let clean_a = soak_clean_run(&exe, &[&fixture_a], &[])?;
    let clean_ab = soak_clean_run(&exe, &[&fixture_a, &fixture_b], &[])?;
    let serve_baseline = soak_serve_schedule(&exe, &work, "baseline", &fixture_a, None)
        .map_err(|v| format!("chaos soak: clean serve baseline failed: {}", v.why))?
        .0;
    // Disarmed index export + query: the anchor for index-mode schedules.
    let index_a = work.join("a.spi");
    let export = std::process::Command::new(&exe)
        .arg("cache")
        .arg("export-index")
        .arg(&fixture_a)
        .arg("--out")
        .arg(&index_a)
        .args(["--name", "lib", "--jobs", "2"])
        .env_remove(spo_chaos::ENV_VAR)
        .output()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    if !export.status.success() {
        return Err(format!(
            "chaos soak: clean index export failed: {}",
            String::from_utf8_lossy(&export.stderr)
        ));
    }
    let query = std::process::Command::new(&exe)
        .arg("index")
        .arg("query")
        .arg("--index")
        .arg(&index_a)
        .env_remove(spo_chaos::ENV_VAR)
        .output()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    if !query.status.success() {
        return Err(format!(
            "chaos soak: clean index query baseline failed: {}",
            String::from_utf8_lossy(&query.stderr)
        ));
    }
    let index_baseline = query.stdout;

    let env = SoakEnv {
        exe,
        work: work.clone(),
        fixture_a,
        fixture_ab: fixture_b,
        rate,
        clean_a,
        clean_ab,
        serve_baseline,
        index_a,
        index_baseline,
    };
    let mut srng = spo_rng::SmallRng::seed_from_u64(seed);
    let (mut injected, mut recovered, mut violations) = (0u64, 0u64, 0u64);
    for k in 0..schedules {
        let schedule_seed = srng.next_u64();
        let mode = srng.gen_range(0..4u32);
        let (label, outcome) = match mode {
            0 => ("cache", soak_cache_schedule(&env, k, schedule_seed)),
            1 => ("engine", soak_engine_schedule(&env, schedule_seed)),
            2 => ("serve", soak_serve_mode_schedule(&env, k, schedule_seed)),
            _ => ("index", soak_index_schedule(&env, schedule_seed)),
        };
        match outcome {
            Ok((i, r)) => {
                injected += i;
                recovered += r;
                println!(
                    "schedule {k}: mode={label} seed={schedule_seed} ok injected={i} recovered={r}"
                );
            }
            Err(v) => {
                violations += 1;
                println!(
                    "schedule {k}: mode={label} seed={schedule_seed} VIOLATION: {}",
                    v.why
                );
                println!("  minimized seed: {schedule_seed}");
                println!("  replay schedule: {}", v.replay);
                println!(
                    "  replay soak:     spo chaos soak --seed {seed} --schedules {}",
                    k + 1
                );
                if !keep_going {
                    let _ = std::fs::remove_dir_all(&work);
                    println!("# soak: FAILED at schedule {k} of {schedules} (seed {seed})");
                    return Ok(ExitCode::from(EXIT_FINDINGS));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&work);
    println!(
        "# soak: {schedules} schedule(s), {violations} violation(s), injected={injected} recovered={recovered} (seed {seed})"
    );
    Ok(if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    })
}

/// Runs `spo analyze` with faults disarmed, returning stdout. Exit must
/// be clean — these bytes anchor every later comparison.
fn soak_clean_run(
    exe: &std::path::Path,
    inputs: &[&std::path::PathBuf],
    extra: &[&str],
) -> Result<Vec<u8>, String> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("analyze");
    for i in inputs {
        cmd.arg(i);
    }
    cmd.args(extra)
        .args(["--jobs", "2"])
        .env_remove(spo_chaos::ENV_VAR);
    let out = cmd
        .output()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    if !out.status.success() {
        return Err(format!(
            "chaos soak: clean baseline exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(out.stdout)
}

/// Parses the `# chaos: injected=N recovered=M seed=S` summary a
/// chaos-armed `spo` process prints on stderr at exit.
fn parse_chaos_summary(stderr: &[u8]) -> (u64, u64) {
    let text = String::from_utf8_lossy(stderr);
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# chaos: ") {
            let mut injected = 0;
            let mut recovered = 0;
            for field in rest.split_whitespace() {
                if let Some(v) = field.strip_prefix("injected=") {
                    injected = v.parse().unwrap_or(0);
                } else if let Some(v) = field.strip_prefix("recovered=") {
                    recovered = v.parse().unwrap_or(0);
                }
            }
            return (injected, recovered);
        }
    }
    (0, 0)
}

/// Cache-mode schedule: two chaos-armed cached runs (cold then
/// pack-extending), then a disarmed run over the same directory. All
/// three must exit clean with byte-identical stdout — injected cache
/// faults may cost recomputation and stderr warnings, never report bytes
/// or exit codes — and the disarmed flush must leave a healed pack.
fn soak_cache_schedule(env: &SoakEnv, k: u64, seed: u64) -> Result<(u64, u64), SoakViolation> {
    let spec = format!(
        "seed={seed},rate={:.2},sites={}+{}+{}+{}",
        env.rate,
        spo_chaos::sites::CACHE_WRITE_SHORT,
        spo_chaos::sites::CACHE_RENAME_FAIL,
        spo_chaos::sites::CACHE_BITFLIP,
        spo_chaos::sites::CACHE_FSYNC_FAIL,
    );
    let dir = env.work.join(format!("cache-{k}"));
    let dir_s = dir.display().to_string();
    let replay = format!(
        "SPO_CHAOS='{spec}' {} analyze {} --cache-dir {dir_s} --jobs 2",
        env.exe.display(),
        env.fixture_a.display(),
    );
    let mut totals = (0u64, 0u64);
    let runs: [(&[&std::path::PathBuf], &[u8], Option<&str>); 3] = [
        (&[&env.fixture_a], &env.clean_a, Some(spec.as_str())),
        (
            &[&env.fixture_a, &env.fixture_ab],
            &env.clean_ab,
            Some(spec.as_str()),
        ),
        // Disarmed: the cache must come back from whatever the faults
        // left on disk and the flush must land a pack.
        (&[&env.fixture_a, &env.fixture_ab], &env.clean_ab, None),
    ];
    for (step, (inputs, want, chaos)) in runs.iter().enumerate() {
        let mut cmd = std::process::Command::new(&env.exe);
        cmd.arg("analyze");
        for i in *inputs {
            cmd.arg(i);
        }
        cmd.args(["--cache-dir", &dir_s, "--jobs", "2"]);
        match chaos {
            Some(spec) => cmd.env(spo_chaos::ENV_VAR, spec),
            None => cmd.env_remove(spo_chaos::ENV_VAR),
        };
        let out = cmd.output().map_err(|e| SoakViolation {
            why: format!("spawn failed: {e}"),
            replay: replay.clone(),
        })?;
        if out.status.code() != Some(0) {
            return Err(SoakViolation {
                why: format!(
                    "cache run {step} exited {:?} (cache faults must never change the exit code): {}",
                    out.status.code(),
                    String::from_utf8_lossy(&out.stderr)
                ),
                replay,
            });
        }
        if out.stdout != *want {
            return Err(SoakViolation {
                why: format!("cache run {step} stdout diverged from the fault-free report"),
                replay,
            });
        }
        let (i, r) = parse_chaos_summary(&out.stderr);
        totals.0 += i;
        totals.1 += r;
    }
    if !dir.join(spo_cache::PACK_FILE).is_file() {
        return Err(SoakViolation {
            why: "pack did not self-heal: no pack file after a disarmed flush".to_owned(),
            replay,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(totals)
}

/// Engine-mode schedule: keyed per-root panics and delays. The run may
/// degrade (exit 2) but must not crash; surviving roots' report lines
/// must be a subset of the clean report (the `#` summary footer counts
/// change with the survivor set).
fn soak_engine_schedule(env: &SoakEnv, seed: u64) -> Result<(u64, u64), SoakViolation> {
    let spec = format!(
        "seed={seed},sites={}:{:.2}+{}:{:.2}",
        spo_chaos::sites::ENGINE_ROOT_PANIC,
        env.rate * 0.5,
        spo_chaos::sites::ENGINE_ROOT_DELAY,
        env.rate,
    );
    let replay = format!(
        "SPO_CHAOS='{spec}' {} analyze {} {} --jobs 2",
        env.exe.display(),
        env.fixture_a.display(),
        env.fixture_ab.display(),
    );
    let out = std::process::Command::new(&env.exe)
        .arg("analyze")
        .arg(&env.fixture_a)
        .arg(&env.fixture_ab)
        .args(["--jobs", "2"])
        .env(spo_chaos::ENV_VAR, &spec)
        .output()
        .map_err(|e| SoakViolation {
            why: format!("spawn failed: {e}"),
            replay: replay.clone(),
        })?;
    let code = out.status.code();
    if code != Some(0) && code != Some(i32::from(EXIT_DEGRADED)) {
        return Err(SoakViolation {
            why: format!(
                "engine run exited {code:?} (want 0 or 2): {}",
                String::from_utf8_lossy(&out.stderr)
            ),
            replay,
        });
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    if stderr.contains("panicked at") {
        return Err(SoakViolation {
            why: "an injected panic escaped the quarantine onto stderr".to_owned(),
            replay,
        });
    }
    let clean = String::from_utf8_lossy(&env.clean_ab);
    let clean_lines: std::collections::BTreeSet<&str> = clean.lines().collect();
    let got = String::from_utf8_lossy(&out.stdout);
    for line in got.lines().filter(|l| !l.starts_with('#')) {
        if !clean_lines.contains(line) {
            return Err(SoakViolation {
                why: format!("surviving-root output line not present in the clean report: {line}"),
                replay,
            });
        }
    }
    Ok(parse_chaos_summary(&out.stderr))
}

/// Index-mode schedule: a chaos-armed `spo index query` over a known-good
/// compiled index, with `index.read.bitflip` flipping one read byte. A
/// schedule where the fault holds fire must reproduce the clean report
/// byte-for-byte; a schedule where it fires must die with the typed
/// "unusable index" diagnostic (exit 3, empty stdout) — degraded, never
/// a wrong answer, never a panic.
fn soak_index_schedule(env: &SoakEnv, seed: u64) -> Result<(u64, u64), SoakViolation> {
    let spec = format!(
        "seed={seed},sites={}:{:.2}",
        spo_chaos::sites::INDEX_READ_BITFLIP,
        env.rate,
    );
    let replay = format!(
        "SPO_CHAOS='{spec}' {} index query --index {}",
        env.exe.display(),
        env.index_a.display(),
    );
    let out = std::process::Command::new(&env.exe)
        .arg("index")
        .arg("query")
        .arg("--index")
        .arg(&env.index_a)
        .env(spo_chaos::ENV_VAR, &spec)
        .output()
        .map_err(|e| SoakViolation {
            why: format!("spawn failed: {e}"),
            replay: replay.clone(),
        })?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if stderr.contains("panicked at") {
        return Err(SoakViolation {
            why: "index query panicked under a read bitflip".to_owned(),
            replay,
        });
    }
    match out.status.code() {
        Some(0) => {
            if out.stdout != env.index_baseline {
                return Err(SoakViolation {
                    why: "index query exited clean but its report diverged from the \
                          fault-free baseline (a flipped byte slipped past the checksum)"
                        .to_owned(),
                    replay,
                });
            }
        }
        Some(code) if code == i32::from(EXIT_FATAL) => {
            if !out.stdout.is_empty() {
                return Err(SoakViolation {
                    why: "index query failed but still wrote a partial report to stdout".to_owned(),
                    replay,
                });
            }
            if !stderr.contains("the index is unusable") {
                return Err(SoakViolation {
                    why: format!(
                        "index query exited 3 without the typed unusable-index diagnostic: {stderr}"
                    ),
                    replay,
                });
            }
        }
        code => {
            return Err(SoakViolation {
                why: format!("index query exited {code:?} (want 0 clean or 3 typed failure)"),
                replay,
            });
        }
    }
    Ok(parse_chaos_summary(&out.stderr))
}

/// Serve-mode schedule: a chaos-armed daemon (connection drops, stalls,
/// split frames) queried by a disarmed `spo rpc` client with retries.
/// The client must exit clean with stdout byte-identical to the
/// fault-free baseline — injected drops are the client's to absorb.
fn soak_serve_mode_schedule(env: &SoakEnv, k: u64, seed: u64) -> Result<(u64, u64), SoakViolation> {
    // Drops are capped well below the retry budget; stalls ride at the
    // schedule rate and only cost latency.
    let spec = format!(
        "seed={seed},sites={}:{:.2}+{}:{:.2}+{}:{:.2}+{}:{:.2}",
        spo_chaos::sites::SERVE_CONN_DROP,
        (env.rate * 0.5).min(0.25),
        spo_chaos::sites::SERVE_WRITE_STALL,
        env.rate,
        spo_chaos::sites::SERVE_FRAME_SPLIT,
        env.rate,
        spo_chaos::sites::SERVE_READ_STALL,
        env.rate,
    );
    let tag = format!("s{k}");
    let (stdout, counts) =
        soak_serve_schedule(&env.exe, &env.work, &tag, &env.fixture_a, Some(&spec))?;
    if stdout != env.serve_baseline {
        return Err(SoakViolation {
            why: "rpc responses diverged from the fault-free baseline".to_owned(),
            replay: format!(
                "SPO_CHAOS='{spec}' {} serve --socket <SOCK> --load lib={} --jobs 2  # then: {} rpc --socket <SOCK> --retries 8 --retry-base-ms 10 '...'",
                env.exe.display(),
                env.fixture_a.display(),
                env.exe.display(),
            ),
        });
    }
    Ok(counts)
}

/// Starts one daemon (chaos-armed when `spec` is set), runs the fixed
/// request sequence through a disarmed retrying client, shuts the daemon
/// down, and returns the client's stdout plus the daemon's fault
/// counters.
fn soak_serve_schedule(
    exe: &std::path::Path,
    work: &std::path::Path,
    tag: &str,
    fixture: &std::path::Path,
    spec: Option<&str>,
) -> Result<(Vec<u8>, (u64, u64)), SoakViolation> {
    let sock = work.join(format!("sock-{tag}"));
    let _ = std::fs::remove_file(&sock);
    let replay = match spec {
        Some(s) => format!(
            "SPO_CHAOS='{s}' {} serve --socket {} --load lib={} --jobs 2",
            exe.display(),
            sock.display(),
            fixture.display(),
        ),
        None => format!(
            "{} serve --socket {} --load lib={} --jobs 2",
            exe.display(),
            sock.display(),
            fixture.display(),
        ),
    };
    let fail = |why: String| SoakViolation {
        why,
        replay: replay.clone(),
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--socket")
        .arg(&sock)
        .arg("--load")
        .arg(format!("lib={}", fixture.display()))
        .args(["--jobs", "2", "--drain-grace", "5"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
    match spec {
        Some(s) => cmd.env(spo_chaos::ENV_VAR, s),
        None => cmd.env_remove(spo_chaos::ENV_VAR),
    };
    let mut daemon = cmd
        .spawn()
        .map_err(|e| fail(format!("daemon spawn failed: {e}")))?;
    // Wait for the socket to come up; a daemon that dies first is a
    // violation in itself.
    let t0 = std::time::Instant::now();
    while !sock.exists() {
        if let Ok(Some(status)) = daemon.try_wait() {
            let mut err = String::new();
            if let Some(mut pipe) = daemon.stderr.take() {
                use std::io::Read;
                let _ = pipe.read_to_string(&mut err);
            }
            return Err(fail(format!(
                "daemon exited {status:?} before binding: {err}"
            )));
        }
        if t0.elapsed() > Duration::from_secs(10) {
            let _ = daemon.kill();
            let _ = daemon.wait();
            return Err(fail("daemon never bound its socket within 10s".to_owned()));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut client = std::process::Command::new(exe);
    client
        .arg("rpc")
        .arg("--socket")
        .arg(&sock)
        .args(["--retries", "8", "--retry-base-ms", "10"])
        .args(SOAK_RPC_REQUESTS)
        .env_remove(spo_chaos::ENV_VAR);
    let out = client
        .output()
        .map_err(|e| fail(format!("client spawn failed: {e}")))?;
    // Shut the daemon down; losing the shutdown *response* to an injected
    // drop is fine (the daemon still exits), so the client verdict for
    // this request is advisory.
    let _ = std::process::Command::new(exe)
        .arg("rpc")
        .arg("--socket")
        .arg(&sock)
        .arg(r#"{"spo-rpc":1,"id":99,"method":"shutdown"}"#)
        .env_remove(spo_chaos::ENV_VAR)
        .output();
    let t1 = std::time::Instant::now();
    let status = loop {
        match daemon.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) if t1.elapsed() > Duration::from_secs(10) => {
                let _ = daemon.kill();
                let _ = daemon.wait();
                return Err(fail(
                    "daemon did not exit within 10s of shutdown".to_owned(),
                ));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => {
                let _ = daemon.kill();
                return Err(fail(format!("daemon wait failed: {e}")));
            }
        }
    };
    let mut daemon_err = String::new();
    if let Some(mut pipe) = daemon.stderr.take() {
        use std::io::Read;
        let _ = pipe.read_to_string(&mut daemon_err);
    }
    if !status.success() {
        return Err(fail(format!(
            "daemon exited {:?} after drain: {daemon_err}",
            status.code()
        )));
    }
    if daemon_err.contains("panicked at") {
        return Err(fail(
            "a daemon thread panicked under injected faults".to_owned(),
        ));
    }
    if out.status.code() != Some(0) {
        return Err(fail(format!(
            "rpc client exited {:?} (retries must absorb injected drops): {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        )));
    }
    let counts = parse_chaos_summary(daemon_err.as_bytes());
    let _ = std::fs::remove_file(&sock);
    Ok((out.stdout, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn extract_jobs_space_form() {
        let (jobs, rest) = extract_jobs(&argv(&["a.jir", "--jobs", "4", "--lint"])).unwrap();
        assert_eq!(jobs, 4);
        assert_eq!(rest, argv(&["a.jir", "--lint"]));
    }

    #[test]
    fn extract_jobs_equals_form() {
        let (jobs, rest) = extract_jobs(&argv(&["--jobs=2", "a.jir"])).unwrap();
        assert_eq!(jobs, 2);
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_jobs_absent_defaults_to_all_cpus() {
        let (jobs, rest) = extract_jobs(&argv(&["a.jir"])).unwrap();
        assert_eq!(jobs, 0);
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_jobs_missing_value_is_an_error() {
        let err = extract_jobs(&argv(&["a.jir", "--jobs"])).unwrap_err();
        assert!(err.contains("--jobs needs a value"), "{err}");
    }

    #[test]
    fn extract_jobs_rejects_zero() {
        for form in [&["--jobs", "0"][..], &["--jobs=0"][..]] {
            let err = extract_jobs(&argv(form)).unwrap_err();
            assert!(err.contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn extract_jobs_rejects_non_numeric() {
        for bad in ["many", "-3", "2.5", ""] {
            let err = extract_jobs(&argv(&["--jobs", bad])).unwrap_err();
            assert!(err.contains("invalid worker count"), "{bad}: {err}");
        }
    }

    #[test]
    fn extract_stats_both_forms() {
        let (opts, rest) =
            extract_stats(&argv(&["a.jir", "--stats", "--stats-json", "out.json"])).unwrap();
        assert!(opts.human);
        assert_eq!(opts.json_path.as_deref(), Some("out.json"));
        assert!(opts.enabled());
        assert_eq!(rest, argv(&["a.jir"]));

        let (opts, rest) = extract_stats(&argv(&["--stats-json=x.json", "a.jir"])).unwrap();
        assert!(!opts.human);
        assert_eq!(opts.json_path.as_deref(), Some("x.json"));
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_stats_absent_is_disabled() {
        let (opts, rest) = extract_stats(&argv(&["a.jir", "--lint"])).unwrap();
        assert!(!opts.enabled());
        assert!(!opts.recorder().is_enabled());
        assert_eq!(rest, argv(&["a.jir", "--lint"]));
    }

    #[test]
    fn extract_stats_missing_path_is_an_error() {
        let err = extract_stats(&argv(&["--stats-json"])).unwrap_err();
        assert!(err.contains("needs a file path"), "{err}");
    }

    #[test]
    fn extract_guard_rejects_zero_budgets() {
        // 0 is the Budget-internal "unlimited" sentinel: before the fix it
        // was accepted and silently disabled the requested limit.
        for form in [
            &["--budget-steps", "0"][..],
            &["--budget-steps=0"][..],
            &["--budget-frames", "0"][..],
            &["--budget-frames=0"][..],
            &["--timeout-ms", "0"][..],
            &["--timeout-ms=0"][..],
        ] {
            let err = extract_guard(&argv(form)).unwrap_err();
            assert!(err.contains("at least 1"), "{form:?}: {err}");
            assert!(
                err.contains("omit the flag for unlimited"),
                "{form:?}: {err}"
            );
        }
    }

    #[test]
    fn extract_guard_accepts_positive_budgets() {
        let (guard, rest) = extract_guard(&argv(&[
            "a.jir",
            "--budget-steps",
            "5",
            "--budget-frames=7",
        ]))
        .unwrap();
        assert_eq!(guard.budget.max_steps, 5);
        assert_eq!(guard.budget.max_frames, 7);
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_guard_timeout_ms_sets_a_deadline() {
        let (guard, rest) = extract_guard(&argv(&["a.jir", "--timeout-ms", "250"])).unwrap();
        let deadline = guard.budget.deadline.expect("deadline set");
        assert!(deadline <= std::time::Instant::now() + Duration::from_millis(250));
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_cache_both_forms() {
        let (dir, rest) = extract_cache(&argv(&["a.jir", "--cache-dir", "/tmp/c"])).unwrap();
        assert_eq!(dir.as_deref(), Some("/tmp/c"));
        assert_eq!(rest, argv(&["a.jir"]));

        let (dir, rest) = extract_cache(&argv(&["--cache-dir=/tmp/c", "a.jir"])).unwrap();
        assert_eq!(dir.as_deref(), Some("/tmp/c"));
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_cache_no_cache_wins() {
        let (dir, rest) =
            extract_cache(&argv(&["--cache-dir", "/tmp/c", "--no-cache", "a.jir"])).unwrap();
        assert_eq!(dir, None);
        assert_eq!(rest, argv(&["a.jir"]));
    }

    #[test]
    fn extract_cache_missing_value_is_an_error() {
        let err = extract_cache(&argv(&["--cache-dir"])).unwrap_err();
        assert!(err.contains("--cache-dir needs a value"), "{err}");
    }

    #[test]
    fn unknown_flags_are_named_in_the_error() {
        let err = reject_unknown_flags("check", &["--lint", "--wat"], &["--lint"]).unwrap_err();
        assert!(err.contains("--wat"), "{err}");
        assert!(err.contains("check"), "{err}");
        // `=value` forms report the bare flag name.
        let err = reject_unknown_flags("throws", &["--frob=3"], &[]).unwrap_err();
        assert!(err.contains("unknown flag `--frob`"), "{err}");
    }

    #[test]
    fn guard_flags_get_a_pointed_rejection_from_check() {
        for f in GUARD_FLAG_NAMES {
            let err = reject_unknown_flags("check", &[f], &["--lint"]).unwrap_err();
            assert!(err.contains(f), "{err}");
            assert!(err.contains("no policy analysis"), "{err}");
        }
    }
}
