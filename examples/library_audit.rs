//! The full paper experience in miniature: generate the synthetic
//! three-implementation corpus, run the oracle over every pairing, and
//! triage the grouped reports against the ground-truth catalog — the
//! workflow behind Table 3.
//!
//! ```text
//! cargo run --release --example library_audit
//! SPO_SCALE=1.0 cargo run --release --example library_audit   # paper-sized
//! ```

use security_policy_oracle::compare_implementations;
use spo_core::AnalysisOptions;
use spo_corpus::{generate, BugCategory, CorpusConfig, Lib};

fn main() {
    let scale: f64 = std::env::var("SPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let corpus = generate(&CorpusConfig {
        scale,
        ..Default::default()
    });
    println!("generated corpus at scale {scale}:");
    for lib in Lib::ALL {
        println!(
            "  {lib:<10} {:>6} classes  {:>6} entry points  {:>7} LoC",
            corpus.program(lib).class_count(),
            spo_resolve::entry_points(corpus.program(lib)).len(),
            corpus.loc(lib),
        );
    }

    for (a, b) in [
        (Lib::Classpath, Lib::Harmony),
        (Lib::Jdk, Lib::Harmony),
        (Lib::Jdk, Lib::Classpath),
    ] {
        let t = std::time::Instant::now();
        let report = compare_implementations(
            corpus.program(a),
            a.name(),
            corpus.program(b),
            b.name(),
            AnalysisOptions::default(),
        );
        println!(
            "\n=== {a} vs {b}: {} matching APIs, {} distinct differences ({:?}) ===",
            report.diff.matching_apis,
            report.groups.len(),
            t.elapsed(),
        );
        let mut by_cat: Vec<(String, usize)> = Vec::new();
        for g in &report.groups {
            let label = match corpus.catalog.classify(g) {
                Some(bug) => match bug.category {
                    BugCategory::Vulnerability => {
                        format!("VULNERABILITY in {}", bug.buggy_lib)
                    }
                    BugCategory::Interop => format!("interop bug ({})", bug.buggy_lib),
                    BugCategory::FalsePositive => "false positive (benign)".to_owned(),
                    BugCategory::IcpOnly => "UNEXPECTED: icp-only".to_owned(),
                },
                None => "UNEXPECTED: unplanned report".to_owned(),
            };
            by_cat.push((label, g.manifestation_count()));
        }
        by_cat.sort();
        for (label, manifests) in by_cat {
            println!("  {label:<36} manifests in {manifests} entry point(s)");
        }
    }
    println!(
        "\nEvery report above traces to an injected inconsistency: policy\n\
         differencing has no intrinsic false positives (§1)."
    );
}
