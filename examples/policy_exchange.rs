//! The §8 workflow: implementations are proprietary, but vendors share
//! *extracted security policies* — and anyone can run the oracle over the
//! policy files alone.
//!
//! ```text
//! cargo run --example policy_exchange
//! ```

use spo_core::{
    diff_libraries, export_policies, group_differences, import_policies, render_reports,
    AnalysisOptions, Analyzer,
};
use spo_corpus::{figures::FIGURE1, Lib};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Vendor 1 (JDK-like) extracts and publishes its policies.
    let jdk = FIGURE1.program(Lib::Jdk);
    let jdk_policies = Analyzer::new(&jdk, AnalysisOptions::default()).analyze_library("jdk");
    let published = export_policies(&jdk_policies);
    println!(
        "--- vendor 1 publishes {} bytes of policy text, e.g. ---",
        published.len()
    );
    for line in published
        .lines()
        .filter(|l| l.contains("DatagramSocket"))
        .take(4)
    {
        println!("{line}");
    }

    // Vendor 2 (Harmony-like) does the same; neither ever sees the other's
    // source code.
    let harmony = FIGURE1.program(Lib::Harmony);
    let harmony_policies =
        Analyzer::new(&harmony, AnalysisOptions::default()).analyze_library("harmony");
    let received = export_policies(&harmony_policies);

    // Anyone holding both policy files can run the oracle.
    let left = import_policies(&published)?;
    let right = import_policies(&received)?;
    let diff = diff_libraries(&left, &right);
    let groups = group_differences(&diff, &Default::default());
    println!("\n--- differencing the two policy files ---\n");
    println!("{}", render_reports(&diff, &groups));

    assert_eq!(groups.len(), 1);
    println!(
        "The Figure 1 vulnerability surfaced from policy files alone —\n\
         no source code crossed the boundary."
    );
    Ok(())
}
