//! Figure 3: the hypothetical bug that only the *broad* definition of
//! security-sensitive events can see. Under the narrow definition (JNI
//! calls and API returns) both implementations have the identical
//! `{checkRead}` may policy; treating private-variable reads as events
//! exposes that one implementation guards the read of `data1` and the
//! other does not.
//!
//! ```text
//! cargo run --example broad_events
//! ```

use security_policy_oracle::compare_implementations;
use spo_core::{AnalysisOptions, EventDef};
use spo_corpus::{figures::FIGURE3, Lib};

fn main() {
    let impl1 = FIGURE3.program(Lib::Jdk);
    let impl2 = FIGURE3.program(Lib::Harmony);

    let narrow =
        compare_implementations(&impl1, "impl1", &impl2, "impl2", AnalysisOptions::default());
    println!(
        "narrow events (JNI + API returns): {} difference(s) reported",
        narrow.groups.len()
    );
    assert!(narrow.groups.is_empty());

    let broad = compare_implementations(
        &impl1,
        "impl1",
        &impl2,
        "impl2",
        AnalysisOptions {
            events: EventDef::Broad,
            ..Default::default()
        },
    );
    println!(
        "broad events (+ private variables, parameters): {} difference(s)\n",
        broad.groups.len()
    );
    println!("{}", broad.render());
    assert!(!broad.groups.is_empty());
    println!(
        "The paper found the broad definition unnecessary on the Java Class\n\
         Library (no additional bugs, >5x the policies) but essential for\n\
         this class of inconsistency."
    );
}
