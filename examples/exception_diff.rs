//! The §8 generalization: differencing *exception behaviour* across
//! implementations. Figure 8's `String.getBytes` is the motivating case —
//! JDK terminates the VM (needing `checkExit` permission) where Harmony
//! throws an exception.
//!
//! ```text
//! cargo run --example exception_diff
//! ```

use spo_core::{diff_throws, ThrowsAnalyzer};
use spo_corpus::{figures::FIGURE8, Lib};

fn main() {
    let jdk = FIGURE8.program(Lib::Jdk);
    let harmony = FIGURE8.program(Lib::Harmony);

    let jdk_throws = ThrowsAnalyzer::new(&jdk).analyze_library("jdk");
    let harmony_throws = ThrowsAnalyzer::new(&harmony).analyze_library("harmony");

    println!("may-throw sets for String.getBytes:");
    for lib in [&jdk_throws, &harmony_throws] {
        for (sig, set) in &lib.entries {
            if sig.contains("getBytes") {
                println!("  {:<10} {sig}: {set:?}", lib.name);
            }
        }
    }

    let diffs = diff_throws(&jdk_throws, &harmony_throws);
    println!("\n{} exception-behaviour difference(s):", diffs.len());
    for d in &diffs {
        println!("  {}", d.signature);
        if !d.only_left.is_empty() {
            println!("    only jdk may throw:     {:?}", d.only_left);
        }
        if !d.only_right.is_empty() {
            println!("    only harmony may throw: {:?}", d.only_right);
        }
    }
    assert!(diffs.iter().any(|d| d
        .only_right
        .contains("java.lang.UnsupportedOperationException")));
    println!(
        "\nJDK exits the VM on a missing charset (the checkExit policy\n\
         difference of Figure 8); Harmony raises an exception instead —\n\
         the same interoperability bug seen through the exception lens."
    );
}
