//! The paper's motivating example (§2, Figures 1 and 2): Harmony's
//! `DatagramSocket.connect` misses `checkAccept` on the non-multicast
//! path. The correct policy is *unique* to this method and *disjunctive*
//! (`{{checkMulticast}, {checkConnect, checkAccept}}`), which is exactly
//! why code-mining approaches miss the bug and may-policy differencing
//! finds it.
//!
//! ```text
//! cargo run --example datagram_socket
//! ```

use security_policy_oracle::{compare_implementations, core};
use spo_core::{AnalysisOptions, Analyzer, EventKey};
use spo_corpus::{figures::FIGURE1, Lib};

fn main() {
    let jdk = FIGURE1.program(Lib::Jdk);
    let harmony = FIGURE1.program(Lib::Harmony);

    // Step 1: extract each implementation's policies (Figure 2).
    println!("== Security policies for DatagramSocket.connect ==\n");
    for (name, program) in [("JDK", &jdk), ("Harmony", &harmony)] {
        let analyzer = Analyzer::new(program, AnalysisOptions::default());
        let lib = analyzer.analyze_library(name);
        let entry = &lib.entries["java.net.DatagramSocket.connect(java.net.InetAddress,int)"];
        println!("[{name}]");
        for (event, policy) in &entry.events {
            if matches!(event, EventKey::Native(_) | EventKey::ApiReturn) {
                println!("{}", policy.render(event));
            }
        }
        println!();
    }

    // Step 2: difference them — the oracle speaks.
    let report =
        compare_implementations(&jdk, "jdk", &harmony, "harmony", AnalysisOptions::default());
    println!("== Oracle report ==\n");
    println!("{}", report.render());

    let delta = report.groups[0].representative.delta;
    assert!(delta.contains(core::Check::Accept));
    println!(
        "Harmony is missing {delta} before connecting to the network — the\n\
         vulnerability of Figure 1, found with zero manual policy input."
    );
}
