//! Figure 5: JDK's `Runtime.loadLibrary` performs only `checkLink`, while
//! GNU Classpath also performs `checkRead` before loading a native library.
//! Detecting the missing check requires *interprocedural* analysis: the
//! checks live two calls below the API entry point, and the two
//! implementations structure their internals completely differently
//! (`ClassLoader.loadLibrary0 → NativeLibrary.load` vs
//! `loadLib → VMRuntime.nativeLoad`).
//!
//! ```text
//! cargo run --example load_library
//! ```

use security_policy_oracle::compare_implementations;
use spo_core::{AnalysisOptions, Check, RootCause};
use spo_corpus::{figures::FIGURE5, Lib};

fn main() {
    let jdk = FIGURE5.program(Lib::Jdk);
    let classpath = FIGURE5.program(Lib::Classpath);

    let report = compare_implementations(
        &jdk,
        "jdk",
        &classpath,
        "classpath",
        AnalysisOptions::default(),
    );
    println!("{}", report.render());

    let vuln = report
        .groups
        .iter()
        .find(|g| g.representative.delta.contains(Check::Read))
        .expect("the checkRead difference must be reported");
    assert_eq!(vuln.cause, RootCause::Interprocedural);
    println!(
        "JDK returns from Runtime.loadLibrary having called only checkLink;\n\
         Classpath also calls checkRead (inside {}). An intraprocedural\n\
         analysis would never see it — the oracle classifies the root cause\n\
         as {}.",
        vuln.representative
            .origins
            .iter()
            .next()
            .map(String::as_str)
            .unwrap_or("?"),
        vuln.cause,
    );

    // Show the ablation explicitly: an intraprocedural-only analysis
    // reports nothing here.
    let intra = compare_implementations(
        &jdk,
        "jdk",
        &classpath,
        "classpath",
        AnalysisOptions {
            interprocedural: false,
            ..Default::default()
        },
    );
    println!(
        "\nIntraprocedural-only ablation reports {} difference(s) for this API.",
        intra
            .groups
            .iter()
            .filter(|g| g.representative.delta.contains(Check::Read))
            .count()
    );
}
