//! Quickstart: write two tiny implementations of the same API in the
//! `.jir` textual format, run the security policy oracle, and read the
//! report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use security_policy_oracle::{compare_implementations, core::AnalysisOptions};
use spo_jir::parse_program;

/// A minimal runtime: the security manager with one check, and the
/// standard way code obtains it.
const RUNTIME: &str = r#"
class java.lang.SecurityManager {
  method public native void checkWrite(java.lang.Object file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
"#;

/// Vendor A checks `checkWrite` before the native write.
const VENDOR_A: &str = r#"
class api.FileWriter {
  method public void write(java.lang.String path) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkWrite(path);
  go:
    staticinvoke api.FileWriter.write0(path);
    return;
  }
  method private static native void write0(java.lang.String path);
}
"#;

/// Vendor B forgot the check — the oracle flags the difference without
/// anyone having to specify the intended policy.
const VENDOR_B: &str = r#"
class api.FileWriter {
  method public void write(java.lang.String path) {
    staticinvoke api.FileWriter.write0(path);
    return;
  }
  method private static native void write0(java.lang.String path);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vendor_a = parse_program(&format!("{RUNTIME}{VENDOR_A}"))?;
    let vendor_b = parse_program(&format!("{RUNTIME}{VENDOR_B}"))?;

    let report = compare_implementations(
        &vendor_a,
        "vendor-a",
        &vendor_b,
        "vendor-b",
        AnalysisOptions::default(),
    );

    println!("{}", report.render());
    println!(
        "The oracle needs no manual policy: two implementations of the same\n\
         API must enforce the same checks, so any difference is a bug in at\n\
         least one of them."
    );
    assert_eq!(report.groups.len(), 1, "expected exactly one difference");
    Ok(())
}
