//! Rapid Type Analysis: allocation-aware call resolution.
//!
//! The paper notes that "type-resolving events, such as allocation, make
//! simple type hierarchy analysis very effective at resolving method
//! invocations" (§4, citing Diwan et al. and Sundaresan et al.). RTA
//! refines CHA by dispatching virtual calls only to classes the program
//! actually instantiates along reachable code: a `new` of a subclass is
//! what makes its overrides possible targets.
//!
//! [`Rta::build`] runs the classic fixpoint — reachable methods contribute
//! allocations, allocations widen dispatch, dispatch widens reachability —
//! and then resolves call sites against the instantiated-subtype set.

use crate::hierarchy::Hierarchy;
use crate::resolver::{Resolution, ResolutionStats, Resolver};
use spo_jir::{Call, ClassId, Expr, InvokeKind, MethodFlags, MethodId, Stmt};
use std::collections::{BTreeSet, VecDeque};

/// The result of an RTA fixpoint over a set of entry points.
#[derive(Debug)]
pub struct Rta<'p> {
    hierarchy: &'p Hierarchy<'p>,
    instantiated: BTreeSet<ClassId>,
    reachable: BTreeSet<MethodId>,
}

impl<'p> Rta<'p> {
    /// Runs the RTA fixpoint from `roots`.
    pub fn build(hierarchy: &'p Hierarchy<'p>, roots: &[MethodId]) -> Self {
        let program = hierarchy.program();
        let mut instantiated: BTreeSet<ClassId> = BTreeSet::new();
        // Receivers of entry points are externally instantiable: clients
        // construct them. Seed with every entry's declaring class.
        for &r in roots {
            instantiated.extend(hierarchy.concrete_subtypes(r.class));
        }
        let mut reachable: BTreeSet<MethodId> = BTreeSet::new();
        let mut queue: VecDeque<MethodId> = roots.iter().copied().collect();
        // Deferred virtual calls re-examined when instantiation grows.
        let mut pending_calls: Vec<Call> = Vec::new();
        while let Some(m) = queue.pop_front() {
            if !reachable.insert(m) {
                continue;
            }
            let Some(body) = program.method(m).body.as_ref() else {
                continue;
            };
            for stmt in &body.stmts {
                match stmt {
                    Stmt::Assign {
                        value: Expr::New(class),
                        ..
                    } => {
                        if let Some(cid) = program.class_by_name(*class) {
                            if instantiated.insert(cid) {
                                // New class: previously deferred calls may
                                // gain targets.
                                let drained: Vec<Call> = std::mem::take(&mut pending_calls);
                                for call in drained {
                                    Self::dispatch(
                                        hierarchy,
                                        &instantiated,
                                        &call,
                                        &mut queue,
                                        &mut pending_calls,
                                    );
                                }
                            }
                        }
                    }
                    Stmt::Invoke { call, .. } => {
                        Self::dispatch(
                            hierarchy,
                            &instantiated,
                            call,
                            &mut queue,
                            &mut pending_calls,
                        );
                    }
                    _ => {}
                }
            }
        }
        Rta {
            hierarchy,
            instantiated,
            reachable,
        }
    }

    fn dispatch(
        hierarchy: &Hierarchy<'_>,
        instantiated: &BTreeSet<ClassId>,
        call: &Call,
        queue: &mut VecDeque<MethodId>,
        pending: &mut Vec<Call>,
    ) {
        let program = hierarchy.program();
        match call.kind {
            InvokeKind::Static | InvokeKind::Special => {
                if let Some(class) = program.class_by_name(call.callee.class) {
                    if let Some(t) =
                        hierarchy.lookup_method(class, call.callee.name, call.callee.argc)
                    {
                        queue.push_back(t);
                    }
                }
            }
            InvokeKind::Virtual | InvokeKind::Interface => {
                let Some(class) = program.class_by_name(call.callee.class) else {
                    return;
                };
                let mut any = false;
                for sub in hierarchy.concrete_subtypes(class) {
                    if !instantiated.contains(&sub) {
                        continue;
                    }
                    if let Some(t) =
                        hierarchy.lookup_method(sub, call.callee.name, call.callee.argc)
                    {
                        if !program.method(t).flags.contains(MethodFlags::ABSTRACT) {
                            queue.push_back(t);
                            any = true;
                        }
                    }
                }
                if !any {
                    // No instantiated target yet; revisit if instantiation
                    // grows.
                    pending.push(call.clone());
                }
            }
        }
    }

    /// Classes observed as instantiated (or externally instantiable entry
    /// receivers).
    pub fn instantiated(&self) -> &BTreeSet<ClassId> {
        &self.instantiated
    }

    /// Methods reachable during the fixpoint.
    pub fn reachable(&self) -> &BTreeSet<MethodId> {
        &self.reachable
    }

    /// Resolves a call site against the instantiated-type set: like CHA,
    /// but virtual/interface dispatch only considers instantiated concrete
    /// subtypes. Falls back to CHA behaviour for static/special calls.
    pub fn resolve(&self, call: &Call) -> Resolution {
        let program = self.hierarchy.program();
        match call.kind {
            InvokeKind::Static | InvokeKind::Special => Resolver::new(self.hierarchy).resolve(call),
            InvokeKind::Virtual | InvokeKind::Interface => {
                let Some(class) = program.class_by_name(call.callee.class) else {
                    return Resolution::Unknown;
                };
                let mut targets: BTreeSet<MethodId> = BTreeSet::new();
                for sub in self.hierarchy.concrete_subtypes(class) {
                    if !self.instantiated.contains(&sub) {
                        continue;
                    }
                    if let Some(m) =
                        self.hierarchy
                            .lookup_method(sub, call.callee.name, call.callee.argc)
                    {
                        if !program.method(m).flags.contains(MethodFlags::ABSTRACT) {
                            targets.insert(m);
                        }
                    }
                }
                let mut it = targets.into_iter();
                match (it.next(), it.next()) {
                    (None, _) => Resolution::Unknown,
                    (Some(only), None) => Resolution::Unique(only),
                    (Some(a), Some(b)) => {
                        Resolution::Ambiguous([a, b].into_iter().chain(it).collect())
                    }
                }
            }
        }
    }

    /// Resolution-precision comparison against plain CHA over every call
    /// site in reachable methods: `(cha, rta)` stats.
    pub fn compare_with_cha(&self) -> (ResolutionStats, ResolutionStats) {
        let program = self.hierarchy.program();
        let cha = Resolver::new(self.hierarchy);
        let mut cha_stats = ResolutionStats::default();
        let mut rta_stats = ResolutionStats::default();
        for &m in &self.reachable {
            let Some(body) = program.method(m).body.as_ref() else {
                continue;
            };
            for stmt in &body.stmts {
                if let Stmt::Invoke { call, .. } = stmt {
                    cha_stats.record(&cha.resolve(call));
                    rta_stats.record(&self.resolve(call));
                }
            }
        }
        (cha_stats, rta_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::entry_points;
    use spo_jir::parse_program;

    /// Two subclasses override `run`, but only one is ever instantiated:
    /// CHA is ambiguous, RTA resolves uniquely.
    const DEVIRT: &str = r#"
class A {
  method public void run() { return; }
}
class B extends A {
  method public void run() { return; }
}
class CC extends A {
  method public void run() { return; }
}
class Caller {
  method public static void m() {
    local A a;
    a = new B;
    virtualinvoke a.run();
    return;
  }
}
"#;

    #[test]
    fn rta_devirtualizes_where_cha_cannot() {
        let p = parse_program(DEVIRT).unwrap();
        let h = Hierarchy::new(&p);
        // The API under audit is Caller.m alone; A/B/CC are internal types
        // (were they entry receivers, clients could instantiate any of
        // them and RTA would rightly stay ambiguous).
        let caller = p.class_by_str("Caller").unwrap();
        let root = p
            .find_method(caller, p.interner().get("m").unwrap(), 0)
            .unwrap();
        let rta = Rta::build(&h, &[root]);
        let body = p.class(caller).methods[0].body.as_ref().unwrap();
        let call = body
            .stmts
            .iter()
            .find_map(|s| s.as_call())
            .expect("has a call");
        // CHA: A, B, CC all possible -> ambiguous.
        let cha = Resolver::new(&h).resolve(call);
        assert!(matches!(cha, Resolution::Ambiguous(_)));
        // RTA: only B is instantiated -> unique.
        let resolved = rta.resolve(call);
        let m = resolved.unique().expect("RTA resolves uniquely");
        assert_eq!(m.class, p.class_by_str("B").unwrap());
    }

    #[test]
    fn rta_precision_never_below_cha() {
        let p = parse_program(DEVIRT).unwrap();
        let h = Hierarchy::new(&p);
        let roots = entry_points(&p);
        let rta = Rta::build(&h, &roots);
        let (cha, rtas) = rta.compare_with_cha();
        assert!(rtas.unique >= cha.unique, "rta {rtas:?} vs cha {cha:?}");
        assert_eq!(rtas.total(), cha.total());
    }

    #[test]
    fn uninstantiated_call_is_unknown() {
        let p = parse_program(
            r#"
class A {
  method public void run() { return; }
}
class Caller {
  method public static void m(A a) {
    virtualinvoke a.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        // Build with only Caller.m as root: A never instantiated...
        let caller = p.class_by_str("Caller").unwrap();
        let m = p
            .find_method(caller, p.interner().get("m").unwrap(), 1)
            .unwrap();
        let rta = Rta::build(&h, &[m]);
        let body = p.class(caller).methods[0].body.as_ref().unwrap();
        let call = body.stmts.iter().find_map(|s| s.as_call()).unwrap();
        // ...except entry receivers are seeded: Caller is instantiable, A
        // is not (not an entry receiver). The call has no target.
        assert_eq!(rta.resolve(call), Resolution::Unknown);
    }

    #[test]
    fn entry_receivers_are_externally_instantiable() {
        let p = parse_program(
            r#"
class A {
  method public void api() {
    local A self;
    self = this;
    virtualinvoke self.run();
    return;
  }
  method public void run() { return; }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let roots = entry_points(&p);
        let rta = Rta::build(&h, &roots);
        let a = p.class_by_str("A").unwrap();
        assert!(rta.instantiated().contains(&a));
        let body = p.class(a).methods[0].body.as_ref().unwrap();
        let call = body.stmts.iter().find_map(|s| s.as_call()).unwrap();
        assert!(rta.resolve(call).unique().is_some());
    }

    #[test]
    fn deferred_calls_resolve_after_later_allocation() {
        // The virtual call is seen before any allocation of a target; the
        // allocation happens in a method reached afterwards. The fixpoint
        // must still mark `B.run` reachable.
        let p = parse_program(
            r#"
class A {
  method public void run() { return; }
}
class B extends A {
  method public void run() {
    staticinvoke Marker.hit();
    return;
  }
}
class Marker {
  method public static void hit() { return; }
}
class Caller {
  method public static void m(A a) {
    virtualinvoke a.run();
    staticinvoke Caller.makeB();
    return;
  }
  method public static void makeB() {
    local B b;
    b = new B;
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let caller = p.class_by_str("Caller").unwrap();
        let m = p
            .find_method(caller, p.interner().get("m").unwrap(), 1)
            .unwrap();
        let rta = Rta::build(&h, &[m]);
        let marker = p.class_by_str("Marker").unwrap();
        let hit = p
            .find_method(marker, p.interner().get("hit").unwrap(), 0)
            .unwrap();
        assert!(
            rta.reachable().contains(&hit),
            "B.run must become reachable"
        );
    }
}
