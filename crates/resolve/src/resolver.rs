//! Call-site resolution: CHA devirtualization with unique-target filtering.
//!
//! The paper uses Soot's method resolution, which resolves 97% of call sites
//! in the Java Class Library to a unique target; unresolved sites are simply
//! not analyzed. [`Resolver`] reproduces that contract: a call site resolves
//! when class-hierarchy analysis finds exactly one possible concrete target
//! (helped by `final` methods/classes, the paper's observation about JCL
//! coding conventions), and reports [`Resolution::Ambiguous`] or
//! [`Resolution::Unknown`] otherwise.

use crate::hierarchy::Hierarchy;
#[cfg(test)]
use spo_jir::Program;
use spo_jir::{Call, ClassFlags, InvokeKind, MethodFlags, MethodId};
use std::collections::BTreeSet;

/// Outcome of resolving one call site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// Exactly one possible target.
    Unique(MethodId),
    /// Multiple possible targets (listed, deduplicated, in hierarchy order).
    /// The security analysis skips these, as the paper's does.
    Ambiguous(Vec<MethodId>),
    /// The static callee class or method is not declared in the program
    /// (external code).
    Unknown,
}

impl Resolution {
    /// The unique target, if resolution succeeded.
    pub fn unique(&self) -> Option<MethodId> {
        match self {
            Resolution::Unique(m) => Some(*m),
            _ => None,
        }
    }
}

/// Running counters for resolution precision — the paper's "97% of method
/// calls resolved" statistic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResolutionStats {
    /// Call sites resolved to a unique target.
    pub unique: usize,
    /// Call sites with multiple CHA targets.
    pub ambiguous: usize,
    /// Call sites naming external classes/methods.
    pub unknown: usize,
}

impl ResolutionStats {
    /// Total observed call sites.
    pub fn total(&self) -> usize {
        self.unique + self.ambiguous + self.unknown
    }

    /// Fraction of call sites resolved to a unique target (0 when empty).
    pub fn resolved_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unique as f64 / self.total() as f64
        }
    }

    /// Accumulates one resolution outcome.
    pub fn record(&mut self, r: &Resolution) {
        match r {
            Resolution::Unique(_) => self.unique += 1,
            Resolution::Ambiguous(_) => self.ambiguous += 1,
            Resolution::Unknown => self.unknown += 1,
        }
    }
}

/// Resolves call sites against a [`Hierarchy`].
#[derive(Debug)]
pub struct Resolver<'p> {
    hierarchy: &'p Hierarchy<'p>,
}

impl<'p> Resolver<'p> {
    /// Creates a resolver over `hierarchy`.
    pub fn new(hierarchy: &'p Hierarchy<'p>) -> Self {
        Resolver { hierarchy }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &'p Hierarchy<'p> {
        self.hierarchy
    }

    /// Resolves a call site.
    ///
    /// * `Static`/`Special` calls dispatch directly: the target is the
    ///   method found on the named class or its superclass chain.
    /// * `Virtual`/`Interface` calls collect every concrete subtype's
    ///   implementation; the call resolves only if that set is a singleton.
    pub fn resolve(&self, call: &Call) -> Resolution {
        let program = self.hierarchy.program();
        let Some(static_class) = program.class_by_name(call.callee.class) else {
            return Resolution::Unknown;
        };
        match call.kind {
            InvokeKind::Static | InvokeKind::Special => {
                match self
                    .hierarchy
                    .lookup_method(static_class, call.callee.name, call.callee.argc)
                {
                    Some(m) => Resolution::Unique(m),
                    None => Resolution::Unknown,
                }
            }
            InvokeKind::Virtual | InvokeKind::Interface => {
                let Some(decl) =
                    self.hierarchy
                        .lookup_method(static_class, call.callee.name, call.callee.argc)
                else {
                    return Resolution::Unknown;
                };
                // Fast path: final methods and final classes cannot be
                // overridden.
                let decl_method = program.method(decl);
                if decl_method.flags.contains(MethodFlags::FINAL)
                    || program
                        .class(static_class)
                        .flags
                        .contains(ClassFlags::FINAL)
                {
                    return Resolution::Unique(decl);
                }
                let mut targets: BTreeSet<MethodId> = BTreeSet::new();
                for sub in self.hierarchy.concrete_subtypes(static_class) {
                    if let Some(m) =
                        self.hierarchy
                            .lookup_method(sub, call.callee.name, call.callee.argc)
                    {
                        // Skip abstract declarations reached through
                        // interface fallback; they are not callable targets.
                        if !program.method(m).flags.contains(MethodFlags::ABSTRACT) {
                            targets.insert(m);
                        }
                    }
                }
                if targets.is_empty() {
                    // No concrete subtype: the declared implementation (if
                    // non-abstract) is the only candidate.
                    if decl_method.flags.contains(MethodFlags::ABSTRACT) {
                        Resolution::Unknown
                    } else {
                        Resolution::Unique(decl)
                    }
                } else if targets.len() == 1 {
                    Resolution::Unique(targets.into_iter().next().unwrap())
                } else {
                    Resolution::Ambiguous(targets.into_iter().collect())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::{parse_program, Stmt};

    fn first_call(program: &Program, class: &str, midx: usize) -> Call {
        let c = program.class_by_str(class).unwrap();
        let body = program.class(c).methods[midx].body.as_ref().unwrap();
        body.stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Invoke { call, .. } => Some(call.clone()),
                _ => None,
            })
            .unwrap()
    }

    #[test]
    fn static_call_resolves_directly() {
        let p = parse_program(
            r#"
class Util {
  method public static void helper() { return; }
}
class Caller {
  method public static void m() {
    staticinvoke Util.helper();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        let m = r.resolve(&call).unique().unwrap();
        assert_eq!(m.class, p.class_by_str("Util").unwrap());
    }

    #[test]
    fn virtual_call_with_single_impl_resolves() {
        let p = parse_program(
            r#"
class A {
  method public void run() { return; }
}
class Caller {
  method public void m(A a) {
    virtualinvoke a.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        assert!(r.resolve(&call).unique().is_some());
    }

    #[test]
    fn virtual_call_with_override_is_ambiguous() {
        let p = parse_program(
            r#"
class A {
  method public void run() { return; }
}
class B extends A {
  method public void run() { return; }
}
class Caller {
  method public void m(A a) {
    virtualinvoke a.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        match r.resolve(&call) {
            Resolution::Ambiguous(targets) => assert_eq!(targets.len(), 2),
            other => panic!("expected ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn final_method_devirtualizes_despite_subclasses() {
        let p = parse_program(
            r#"
class A {
  method public final void run() { return; }
  method public void other() { return; }
}
class B extends A {
  method public void other() { return; }
}
class Caller {
  method public void m(A a) {
    virtualinvoke a.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        let m = r.resolve(&call).unique().unwrap();
        assert_eq!(m.class, p.class_by_str("A").unwrap());
    }

    #[test]
    fn interface_call_resolves_via_single_implementer() {
        let p = parse_program(
            r#"
interface Task {
  method public abstract void run();
}
class Worker implements Task {
  method public void run() { return; }
}
class Caller {
  method public void m(Task t) {
    interfaceinvoke t.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        let m = r.resolve(&call).unique().unwrap();
        assert_eq!(m.class, p.class_by_str("Worker").unwrap());
    }

    #[test]
    fn unknown_class_is_unknown() {
        let p = parse_program(
            r#"
class Caller {
  method public static void m() {
    staticinvoke external.Lib.boom();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        assert_eq!(r.resolve(&call), Resolution::Unknown);
    }

    #[test]
    fn abstract_method_without_impl_is_unknown() {
        let p = parse_program(
            r#"
class abstract A {
  method public abstract void run();
}
class Caller {
  method public void m(A a) {
    virtualinvoke a.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let r = Resolver::new(&h);
        let call = first_call(&p, "Caller", 0);
        assert_eq!(r.resolve(&call), Resolution::Unknown);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = ResolutionStats::default();
        stats.record(&Resolution::Unknown);
        stats.record(&Resolution::Ambiguous(vec![]));
        stats.record(&Resolution::Unique(MethodId {
            class: spo_jir::ClassId(0),
            index: 0,
        }));
        stats.record(&Resolution::Unique(MethodId {
            class: spo_jir::ClassId(0),
            index: 0,
        }));
        assert_eq!(stats.total(), 4);
        assert!((stats.resolved_fraction() - 0.5).abs() < 1e-9);
    }
}
