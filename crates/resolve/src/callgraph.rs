//! API entry-point enumeration and on-the-fly call graph construction.

use crate::hierarchy::Hierarchy;
use crate::resolver::{Resolution, ResolutionStats, Resolver};
use spo_jir::{MethodFlags, MethodId, Program, Stmt};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Enumerates the API entry points of a program: all `public` and
/// `protected` non-abstract methods. The paper analyzes protected methods
/// too because clients can reach them by subclassing, making them
/// "unintended paths into the API".
pub fn entry_points(program: &Program) -> Vec<MethodId> {
    program
        .all_methods()
        .filter(|(_, m)| m.flags.is_entry_visible() && !m.flags.contains(MethodFlags::ABSTRACT))
        .map(|(id, _)| id)
        .collect()
}

/// A call graph rooted at a set of entry points.
///
/// Built on the fly, as the paper does (Soot's whole-program call graph
/// assumes a single `main`; APIs have thousands of roots). Edges exist only
/// for call sites that resolve to a unique target.
#[derive(Clone, Debug)]
pub struct CallGraph {
    roots: Vec<MethodId>,
    /// Unique-target callees per reachable method.
    edges: BTreeMap<MethodId, Vec<MethodId>>,
    stats: ResolutionStats,
}

impl CallGraph {
    /// Builds the call graph reachable from `roots`.
    pub fn build(hierarchy: &Hierarchy<'_>, roots: Vec<MethodId>) -> Self {
        let program = hierarchy.program();
        let resolver = Resolver::new(hierarchy);
        let mut stats = ResolutionStats::default();
        let mut edges: BTreeMap<MethodId, Vec<MethodId>> = BTreeMap::new();
        let mut queue: VecDeque<MethodId> = roots.iter().copied().collect();
        let mut seen: BTreeSet<MethodId> = queue.iter().copied().collect();
        while let Some(m) = queue.pop_front() {
            let mut callees = Vec::new();
            if let Some(body) = &program.method(m).body {
                for stmt in &body.stmts {
                    if let Stmt::Invoke { call, .. } = stmt {
                        let r = resolver.resolve(call);
                        stats.record(&r);
                        if let Resolution::Unique(target) = r {
                            callees.push(target);
                            if seen.insert(target) {
                                queue.push_back(target);
                            }
                        }
                    }
                }
            }
            edges.insert(m, callees);
        }
        CallGraph {
            roots,
            edges,
            stats,
        }
    }

    /// Builds the call graph rooted at all API entry points of the program.
    pub fn from_entry_points(hierarchy: &Hierarchy<'_>) -> Self {
        let roots = entry_points(hierarchy.program());
        Self::build(hierarchy, roots)
    }

    /// Like [`CallGraph::build`], recording construction metrics into
    /// `rec`: a `resolve.callgraph` span plus deterministic counters for
    /// graph size (`resolve.callgraph.roots`/`.methods`/`.edges`) and
    /// resolution precision (`resolve.calls.unique`/`.ambiguous`/
    /// `.unknown`). Construction is a serial BFS over ordered maps, so
    /// every count is schedule-independent.
    pub fn build_traced(
        hierarchy: &Hierarchy<'_>,
        roots: Vec<MethodId>,
        rec: &spo_obs::Recorder,
    ) -> Self {
        let span = rec.span("resolve.callgraph");
        let cg = Self::build(hierarchy, roots);
        drop(span);
        rec.counter("resolve.callgraph.roots")
            .add(cg.roots.len() as u64);
        rec.counter("resolve.callgraph.methods")
            .add(cg.reachable_count() as u64);
        rec.counter("resolve.callgraph.edges")
            .add(cg.edge_count() as u64);
        rec.counter("resolve.calls.unique")
            .add(cg.stats.unique as u64);
        rec.counter("resolve.calls.ambiguous")
            .add(cg.stats.ambiguous as u64);
        rec.counter("resolve.calls.unknown")
            .add(cg.stats.unknown as u64);
        cg
    }

    /// Like [`CallGraph::from_entry_points`], recording construction
    /// metrics into `rec` (see [`CallGraph::build_traced`]).
    pub fn from_entry_points_traced(hierarchy: &Hierarchy<'_>, rec: &spo_obs::Recorder) -> Self {
        let roots = entry_points(hierarchy.program());
        Self::build_traced(hierarchy, roots, rec)
    }

    /// The root methods.
    pub fn roots(&self) -> &[MethodId] {
        &self.roots
    }

    /// Unique-target callees of `m` (empty if `m` is unreachable or leaf).
    pub fn callees(&self, m: MethodId) -> &[MethodId] {
        self.edges.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All methods reachable from the roots (including the roots).
    pub fn reachable(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.edges.keys().copied()
    }

    /// Number of reachable methods.
    pub fn reachable_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of unique-target call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Resolution precision counters accumulated during construction.
    pub fn stats(&self) -> ResolutionStats {
        self.stats
    }

    /// Methods transitively reachable from a single root, including itself —
    /// the per-entry-point subgraph the security analysis walks.
    pub fn reachable_from(&self, root: MethodId) -> Vec<MethodId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                stack.extend(self.callees(m).iter().copied());
            }
        }
        seen.into_iter().collect()
    }

    /// The dependency cone of every root: `(root, reachable methods)` in
    /// root order. This is what the persistent summary cache hashes to key
    /// a root's cached policy — a root's analysis can only observe methods
    /// inside its cone, so an edit outside the cone cannot change the
    /// result.
    pub fn cones(&self) -> impl Iterator<Item = (MethodId, Vec<MethodId>)> + '_ {
        self.roots
            .iter()
            .map(move |&root| (root, self.reachable_from(root)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    fn prog() -> Program {
        parse_program(
            r#"
class A {
  method public void entry() {
    local A a;
    a = this;
    virtualinvoke a.helper();
    return;
  }
  method private void helper() {
    staticinvoke B.leaf();
    return;
  }
  method protected void prot() { return; }
  method private void unreachable_private() { return; }
  method public abstract int absent();
}
class B {
  method public static void leaf() {
    staticinvoke external.Sys.call();
    return;
  }
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn entry_points_are_public_and_protected_non_abstract() {
        let p = prog();
        let eps = entry_points(&p);
        let names: Vec<String> = eps.iter().map(|&m| p.method_name(m)).collect();
        assert!(names.contains(&"A.entry".to_owned()));
        assert!(names.contains(&"A.prot".to_owned()));
        assert!(names.contains(&"B.leaf".to_owned()));
        assert!(!names.contains(&"A.helper".to_owned()));
        assert!(!names.contains(&"A.absent".to_owned()));
        assert!(!names.contains(&"A.unreachable_private".to_owned()));
    }

    #[test]
    fn call_graph_reaches_through_private_helpers() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let cg = CallGraph::from_entry_points(&h);
        let helper_reached = cg.reachable().any(|m| p.method_name(m) == "A.helper");
        assert!(helper_reached);
        // The external call resolves to Unknown but doesn't break anything.
        assert_eq!(cg.stats().unknown, 1);
        assert!(cg.stats().unique >= 2);
    }

    #[test]
    fn reachable_from_single_root() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let cg = CallGraph::from_entry_points(&h);
        let entry = cg
            .roots()
            .iter()
            .copied()
            .find(|&m| p.method_name(m) == "A.entry")
            .unwrap();
        let sub = cg.reachable_from(entry);
        let names: Vec<String> = sub.iter().map(|&m| p.method_name(m)).collect();
        assert!(names.contains(&"A.entry".to_owned()));
        assert!(names.contains(&"A.helper".to_owned()));
        assert!(names.contains(&"B.leaf".to_owned()));
        assert!(!names.contains(&"A.prot".to_owned()));
    }

    #[test]
    fn cones_cover_every_root_and_match_reachable_from() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let cg = CallGraph::from_entry_points(&h);
        let cones: Vec<_> = cg.cones().collect();
        assert_eq!(cones.len(), cg.roots().len());
        for ((root, cone), expect) in cones.iter().zip(cg.roots()) {
            assert_eq!(root, expect);
            assert_eq!(cone, &cg.reachable_from(*root));
            assert!(cone.contains(root));
        }
    }

    #[test]
    fn traced_build_records_graph_and_resolution_counters() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let rec = spo_obs::Recorder::new();
        let cg = CallGraph::from_entry_points_traced(&h, &rec);
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters["resolve.callgraph.roots"],
            cg.roots().len() as u64
        );
        assert_eq!(
            snap.counters["resolve.callgraph.methods"],
            cg.reachable_count() as u64
        );
        assert_eq!(
            snap.counters["resolve.callgraph.edges"],
            cg.edge_count() as u64
        );
        assert_eq!(snap.counters["resolve.calls.unknown"], 1);
        assert_eq!(snap.durations["resolve.callgraph"].count, 1);
        // Traced and untraced construction agree.
        let plain = CallGraph::from_entry_points(&h);
        assert_eq!(plain.reachable_count(), cg.reachable_count());
        assert_eq!(plain.edge_count(), cg.edge_count());
    }

    #[test]
    fn recursive_graph_terminates() {
        let p = parse_program(
            r#"
class R {
  method public void ping() {
    local R r;
    r = this;
    virtualinvoke r.pong();
    return;
  }
  method public void pong() {
    local R r;
    r = this;
    virtualinvoke r.ping();
    return;
  }
}
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let cg = CallGraph::from_entry_points(&h);
        assert_eq!(cg.reachable_count(), 2);
        let ping = cg.roots()[0];
        assert_eq!(cg.reachable_from(ping).len(), 2);
    }
}
