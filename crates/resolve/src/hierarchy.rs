//! Class hierarchy construction and subtype queries.

use spo_jir::{ClassFlags, ClassId, MethodId, Program, Symbol};

/// The class/interface hierarchy of a [`Program`].
///
/// Superclass and interface names that do not resolve to a declared class
/// are treated as *external*: they contribute no members and no subtypes.
/// This mirrors the paper's setting where the analyzed library is
/// closed-world but may name classes outside the analyzed packages.
#[derive(Debug)]
pub struct Hierarchy<'p> {
    program: &'p Program,
    /// Direct subclasses (for classes) / direct sub-interfaces and
    /// implementing classes (for interfaces), indexed by `ClassId`.
    children: Vec<Vec<ClassId>>,
    /// Resolved superclass id per class, if declared and present.
    superclass: Vec<Option<ClassId>>,
    /// Resolved interface ids per class.
    interfaces: Vec<Vec<ClassId>>,
}

impl<'p> Hierarchy<'p> {
    /// Builds the hierarchy for `program`.
    pub fn new(program: &'p Program) -> Self {
        let n = program.class_count();
        let mut children = vec![Vec::new(); n];
        let mut superclass = vec![None; n];
        let mut interfaces = vec![Vec::new(); n];
        let lookup = |name: Symbol| program.class_by_name(name);
        for (id, class) in program.classes() {
            if let Some(sup) = class.superclass.and_then(lookup) {
                superclass[id.index()] = Some(sup);
                children[sup.index()].push(id);
            }
            for &iface in &class.interfaces {
                if let Some(i) = lookup(iface) {
                    interfaces[id.index()].push(i);
                    children[i.index()].push(id);
                }
            }
        }
        Hierarchy {
            program,
            children,
            superclass,
            interfaces,
        }
    }

    /// The program this hierarchy describes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Resolved direct superclass.
    pub fn superclass(&self, class: ClassId) -> Option<ClassId> {
        self.superclass[class.index()]
    }

    /// Direct subtypes: subclasses, sub-interfaces, and implementers.
    pub fn children(&self, class: ClassId) -> &[ClassId] {
        &self.children[class.index()]
    }

    /// Returns `true` if `sub` equals `sup` or is a (transitive) subclass or
    /// implementer of it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        // Walk superclass chain and interfaces.
        let mut stack = vec![sub];
        let mut seen = vec![false; self.program.class_count()];
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            if std::mem::replace(&mut seen[c.index()], true) {
                continue;
            }
            if let Some(s) = self.superclass[c.index()] {
                stack.push(s);
            }
            stack.extend(self.interfaces[c.index()].iter().copied());
        }
        false
    }

    /// All transitive subtypes of `class`, including itself.
    pub fn subtypes(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.program.class_count()];
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if std::mem::replace(&mut seen[c.index()], true) {
                continue;
            }
            out.push(c);
            stack.extend(self.children[c.index()].iter().copied());
        }
        out
    }

    /// All *concrete* (instantiable: non-abstract, non-interface) transitive
    /// subtypes of `class`, including itself if concrete.
    pub fn concrete_subtypes(&self, class: ClassId) -> Vec<ClassId> {
        self.subtypes(class)
            .into_iter()
            .filter(|&c| {
                let f = self.program.class(c).flags;
                !f.contains(ClassFlags::ABSTRACT) && !f.contains(ClassFlags::INTERFACE)
            })
            .collect()
    }

    /// Looks up the method implementation `name/argc` visible on `class`:
    /// searches the class itself, then the superclass chain, then declared
    /// interfaces (for abstract interface members).
    pub fn lookup_method(&self, class: ClassId, name: Symbol, argc: u32) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.program.find_method(c, name, argc) {
                return Some(m);
            }
            cur = self.superclass[c.index()];
        }
        // Interface declarations (abstract members) as a fallback.
        let mut stack: Vec<ClassId> = self.collect_interfaces(class);
        let mut seen = vec![false; self.program.class_count()];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i.index()], true) {
                continue;
            }
            if let Some(m) = self.program.find_method(i, name, argc) {
                return Some(m);
            }
            stack.extend(self.interfaces[i.index()].iter().copied());
        }
        None
    }

    fn collect_interfaces(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            out.extend(self.interfaces[c.index()].iter().copied());
            cur = self.superclass[c.index()];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    fn prog() -> Program {
        parse_program(
            r#"
class java.lang.Object {
  method public int hashCode() { local int x; x = 0; return x; }
}
interface I {
  method public abstract void run();
}
class A extends java.lang.Object implements I {
  method public void run() { return; }
}
class B extends A {
  method public void run() { return; }
}
class abstract C extends A { }
class D extends C { }
"#,
        )
        .unwrap()
    }

    #[test]
    fn subtype_relations() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let get = |n: &str| p.class_by_str(n).unwrap();
        assert!(h.is_subtype(get("B"), get("A")));
        assert!(h.is_subtype(get("B"), get("java.lang.Object")));
        assert!(h.is_subtype(get("A"), get("I")));
        assert!(h.is_subtype(get("B"), get("I")));
        assert!(!h.is_subtype(get("A"), get("B")));
        assert!(h.is_subtype(get("A"), get("A")));
    }

    #[test]
    fn concrete_subtypes_exclude_abstract() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let get = |n: &str| p.class_by_str(n).unwrap();
        let subs = h.concrete_subtypes(get("A"));
        assert!(subs.contains(&get("A")));
        assert!(subs.contains(&get("B")));
        assert!(subs.contains(&get("D")));
        assert!(!subs.contains(&get("C")));
        // Interface I: implementers only.
        let isubs = h.concrete_subtypes(get("I"));
        assert_eq!(isubs.len(), 3); // A, B, D
    }

    #[test]
    fn method_lookup_walks_superclasses() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let get = |n: &str| p.class_by_str(n).unwrap();
        let hash = p.interner().get("hashCode").unwrap();
        let m = h.lookup_method(get("B"), hash, 0).unwrap();
        assert_eq!(m.class, get("java.lang.Object"));
        let run = p.interner().get("run").unwrap();
        // D inherits run from A (C doesn't override).
        let m = h.lookup_method(get("D"), run, 0).unwrap();
        assert_eq!(m.class, get("A"));
        // B overrides.
        let m = h.lookup_method(get("B"), run, 0).unwrap();
        assert_eq!(m.class, get("B"));
    }

    #[test]
    fn interface_lookup_finds_abstract_decl() {
        let p = prog();
        let h = Hierarchy::new(&p);
        let get = |n: &str| p.class_by_str(n).unwrap();
        let run = p.interner().get("run").unwrap();
        let m = h.lookup_method(get("I"), run, 0).unwrap();
        assert_eq!(m.class, get("I"));
    }

    #[test]
    fn external_superclass_tolerated() {
        let p = parse_program("class X extends external.Unknown { }").unwrap();
        let h = Hierarchy::new(&p);
        let x = p.class_by_str("X").unwrap();
        assert_eq!(h.superclass(x), None);
        assert_eq!(h.subtypes(x), vec![x]);
    }

    #[test]
    fn diamond_interface_no_infinite_loop() {
        let p = parse_program(
            r#"
interface P { }
interface Q extends P { }
interface R extends P { }
class Z implements Q, R { }
"#,
        )
        .unwrap();
        let h = Hierarchy::new(&p);
        let z = p.class_by_str("Z").unwrap();
        let pp = p.class_by_str("P").unwrap();
        assert!(h.is_subtype(z, pp));
        assert_eq!(h.concrete_subtypes(pp), vec![z]);
    }
}
