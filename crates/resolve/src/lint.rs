//! Cross-reference linting for JIR programs.
//!
//! The parser checks syntax and per-body structure; this pass checks
//! *references*: calls naming classes or methods that are not declared,
//! field accesses naming unknown fields, and interface calls on
//! non-interfaces. The paper's analysis silently skips unresolved call
//! sites (as Soot does); the linter makes those sites visible so corpus
//! authors can tell intentional external references from typos.

use crate::hierarchy::Hierarchy;
use spo_jir::{Expr, FieldTarget, InvokeKind, MethodId, Program, Stmt};
use std::fmt;

/// One lint finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lint {
    /// `Class.method` where the reference occurs.
    pub location: String,
    /// Statement index within the body.
    pub stmt: usize,
    /// What is wrong.
    pub kind: LintKind,
}

/// Kinds of reference problems.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LintKind {
    /// A call names a class not declared in the program.
    UnknownClass(String),
    /// A call names a declared class but no matching method exists on it
    /// or its supertypes.
    UnknownMethod {
        /// The named class.
        class: String,
        /// The missing `name/argc`.
        method: String,
    },
    /// A field access names a field not found on the class or its
    /// superclasses.
    UnknownField {
        /// The named class.
        class: String,
        /// The missing field name.
        field: String,
    },
    /// `interfaceinvoke` on a class that is not an interface.
    InterfaceCallOnClass(String),
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintKind::UnknownClass(c) => write!(f, "reference to undeclared class `{c}`"),
            LintKind::UnknownMethod { class, method } => {
                write!(f, "no method `{method}` on `{class}` or its supertypes")
            }
            LintKind::UnknownField { class, field } => {
                write!(f, "no field `{field}` on `{class}` or its superclasses")
            }
            LintKind::InterfaceCallOnClass(c) => {
                write!(f, "interfaceinvoke on non-interface `{c}`")
            }
        }
    }
}

/// Lints every method body in the program.
pub fn lint_program(program: &Program) -> Vec<Lint> {
    let hierarchy = Hierarchy::new(program);
    let mut out = Vec::new();
    for (class_id, _) in program.classes() {
        for (mid, method) in program.methods_of(class_id) {
            let Some(body) = method.body.as_ref() else {
                continue;
            };
            for (i, stmt) in body.stmts.iter().enumerate() {
                lint_stmt(program, &hierarchy, mid, i, stmt, &mut out);
            }
        }
    }
    out
}

fn lint_stmt(
    program: &Program,
    hierarchy: &Hierarchy<'_>,
    mid: MethodId,
    idx: usize,
    stmt: &Stmt,
    out: &mut Vec<Lint>,
) {
    let location = || program.method_name(mid);
    let lint_field = |target: &FieldTarget, out: &mut Vec<Lint>| {
        let fr = target.field();
        let Some(class) = program.class_by_name(fr.class) else {
            out.push(Lint {
                location: location(),
                stmt: idx,
                kind: LintKind::UnknownClass(program.str(fr.class).to_owned()),
            });
            return;
        };
        // Search the superclass chain.
        let mut cur = Some(class);
        while let Some(c) = cur {
            if program.find_field(c, fr.name).is_some() {
                return;
            }
            cur = hierarchy.superclass(c);
        }
        out.push(Lint {
            location: location(),
            stmt: idx,
            kind: LintKind::UnknownField {
                class: program.str(fr.class).to_owned(),
                field: program.str(fr.name).to_owned(),
            },
        });
    };
    match stmt {
        Stmt::Invoke { call, .. } => {
            let Some(class) = program.class_by_name(call.callee.class) else {
                out.push(Lint {
                    location: location(),
                    stmt: idx,
                    kind: LintKind::UnknownClass(program.str(call.callee.class).to_owned()),
                });
                return;
            };
            if call.kind == InvokeKind::Interface && !program.class(class).is_interface() {
                out.push(Lint {
                    location: location(),
                    stmt: idx,
                    kind: LintKind::InterfaceCallOnClass(program.str(call.callee.class).to_owned()),
                });
            }
            if hierarchy
                .lookup_method(class, call.callee.name, call.callee.argc)
                .is_none()
            {
                out.push(Lint {
                    location: location(),
                    stmt: idx,
                    kind: LintKind::UnknownMethod {
                        class: program.str(call.callee.class).to_owned(),
                        method: format!("{}/{}", program.str(call.callee.name), call.callee.argc),
                    },
                });
            }
        }
        Stmt::FieldStore { target, .. } => lint_field(target, out),
        Stmt::Assign {
            value: Expr::FieldLoad(target),
            ..
        } => lint_field(target, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    #[test]
    fn clean_program_has_no_lints() {
        let p = parse_program(
            r#"
class A {
  field private int f;
  method public void m() {
    local int x;
    x = this.f;
    staticinvoke A.helper(x);
    return;
  }
  method private static void helper(int x) { return; }
}
"#,
        )
        .unwrap();
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn unknown_class_reported() {
        let p = parse_program(
            "class A { method public void m() { staticinvoke ext.Gone.f(); return; } }",
        )
        .unwrap();
        let lints = lint_program(&p);
        assert_eq!(lints.len(), 1);
        assert!(matches!(&lints[0].kind, LintKind::UnknownClass(c) if c == "ext.Gone"));
        assert_eq!(lints[0].location, "A.m");
    }

    #[test]
    fn unknown_method_reported_with_arity() {
        let p = parse_program(
            r#"
class B { method public static void f(int x) { return; } }
class A { method public void m() { staticinvoke B.f(); return; } }
"#,
        )
        .unwrap();
        let lints = lint_program(&p);
        assert_eq!(lints.len(), 1);
        assert!(matches!(
            &lints[0].kind,
            LintKind::UnknownMethod { method, .. } if method == "f/0"
        ));
    }

    #[test]
    fn inherited_members_are_not_lints() {
        let p = parse_program(
            r#"
class Base {
  field private int f;
  method public void inheritable() { return; }
}
class Sub extends Base {
  method public void m(Sub s) {
    local int x;
    x = s.f;
    virtualinvoke s.inheritable();
    return;
  }
}
"#,
        )
        .unwrap();
        assert!(lint_program(&p).is_empty());
    }

    #[test]
    fn unknown_field_reported() {
        let p = parse_program("class A { method public void m() { this.ghost = 1; return; } }")
            .unwrap();
        let lints = lint_program(&p);
        assert_eq!(lints.len(), 1);
        assert!(matches!(&lints[0].kind, LintKind::UnknownField { field, .. } if field == "ghost"));
    }

    #[test]
    fn interface_call_on_class_reported() {
        let p = parse_program(
            r#"
class NotIface { method public void run() { return; } }
class A {
  method public void m(NotIface t) {
    interfaceinvoke t.run();
    return;
  }
}
"#,
        )
        .unwrap();
        let lints = lint_program(&p);
        assert_eq!(lints.len(), 1);
        assert!(matches!(&lints[0].kind, LintKind::InterfaceCallOnClass(_)));
    }

    #[test]
    fn lint_display_is_readable() {
        let k = LintKind::UnknownMethod {
            class: "A".into(),
            method: "f/2".into(),
        };
        assert!(k.to_string().contains("f/2"));
    }
}
