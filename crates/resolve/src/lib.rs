//! # spo-resolve — hierarchy, devirtualization, and call graphs
//!
//! This crate reproduces the method-resolution substrate the paper borrows
//! from Soot (§4 "Call graph"): a class-hierarchy analysis over
//! [`spo_jir::Program`]s, unique-target call-site resolution (with
//! `final`-method/class devirtualization — the coding convention the paper
//! credits for the JCL's 97% resolution rate), API entry-point enumeration
//! (public *and* protected methods), and on-the-fly call graphs rooted at
//! every entry point.
//!
//! Call sites that do not resolve to a unique target are skipped by the
//! downstream security analysis, exactly as in the paper ("If Soot does not
//! resolve a method invocation, our implementation does not analyze it").
//!
//! # Examples
//!
//! ```
//! use spo_resolve::{entry_points, CallGraph, Hierarchy};
//!
//! let program = spo_jir::parse_program(
//!     "class C { method public void api() { return; } }",
//! )?;
//! let hierarchy = Hierarchy::new(&program);
//! let roots = entry_points(&program);
//! assert_eq!(roots.len(), 1);
//! let cg = CallGraph::build(&hierarchy, roots);
//! assert_eq!(cg.reachable_count(), 1);
//! # Ok::<(), spo_jir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod callgraph;
mod hierarchy;
mod lint;
mod resolver;
mod rta;

pub use callgraph::{entry_points, CallGraph};
pub use hierarchy::Hierarchy;
pub use lint::{lint_program, Lint, LintKind};
pub use resolver::{Resolution, ResolutionStats, Resolver};
pub use rta::Rta;
