//! # spo-chaos — deterministic fault injection
//!
//! The guard layer (quarantine, budgets, cancellation) and the cache's
//! degrade-to-cold fallbacks only earn trust if something in the tree can
//! actually *produce* the failures they claim to absorb. This crate is
//! that something: a seeded plan of named fault sites compiled into the
//! cache's pack IO, the daemon's session IO, and the engine's worker
//! loop. Every failure a plan injects is a pure function of the plan's
//! seed plus either a per-site sequence number or a caller-supplied key,
//! so any observed failure replays from a single printed seed.
//!
//! The handle follows the Recorder/Tracer disabled-is-free pattern: a
//! [`FaultPlan`] is an `Option<Arc<..>>` and a disabled plan answers
//! every probe with one branch on a `None` — production binaries carry
//! the fault sites at zero practical cost.
//!
//! Two keying modes cover the two scheduling regimes:
//!
//! - [`FaultPlan::should_fire`] draws from a per-site *sequence* stream
//!   (`seed ⊕ site ⊕ n` for the site's n-th probe). Deterministic when
//!   the site is probed in a deterministic order (single-threaded IO
//!   paths: cache flush, one rpc session's reads and writes).
//! - [`FaultPlan::should_fire_keyed`] draws from `seed ⊕ site ⊕ key`, a
//!   pure function of the *argument* — the right mode inside thread
//!   pools, where work-stealing makes probe order nondeterministic but
//!   the set of work items (root signatures) is fixed.
//!
//! Processes spawned by `spo chaos soak` inherit the plan through the
//! `SPO_CHAOS` environment variable (see [`init_from_env`] and
//! [`FaultPlan::parse`]), which is how one soak seed reaches a daemon
//! child, the one-shot CLI children, and every layer inside them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use spo_rng::SmallRng;

/// The environment variable carrying a rendered fault-plan spec into
/// child processes (see [`FaultPlan::parse`] for the format).
pub const ENV_VAR: &str = "SPO_CHAOS";

/// Canonical fault-site names. Sites are compiled into production code
/// paths; a plan only arms the subset it names.
pub mod sites {
    /// Cache pack flush writes only a prefix of the temp file, then
    /// fails with a transient error (a torn write).
    pub const CACHE_WRITE_SHORT: &str = "cache.write.short";
    /// Cache pack flush fails at the atomic rename step.
    pub const CACHE_RENAME_FAIL: &str = "cache.rename.fail";
    /// Cache pack flush flips one byte of the encoded pack before
    /// writing — the write *succeeds*, leaving silent corruption for the
    /// next open to detect and heal.
    pub const CACHE_BITFLIP: &str = "cache.bitflip";
    /// Cache pack flush fails at `sync_all` on the temp file.
    pub const CACHE_FSYNC_FAIL: &str = "cache.fsync.fail";
    /// Daemon drops the connection mid-response: half the frame is
    /// written, then both stream halves are shut down.
    pub const SERVE_CONN_DROP: &str = "serve.conn.drop";
    /// Daemon stalls before consuming a request line.
    pub const SERVE_READ_STALL: &str = "serve.read.stall";
    /// Daemon stalls mid-write (exercises client read patience and the
    /// daemon's own write deadline).
    pub const SERVE_WRITE_STALL: &str = "serve.write.stall";
    /// Daemon writes a response frame in two separately flushed chunks
    /// (a split frame — readers must assemble on the newline, not the
    /// read boundary).
    pub const SERVE_FRAME_SPLIT: &str = "serve.frame.split";
    /// Engine worker panics while analyzing a root (quarantined to a
    /// degraded root; keyed by root signature).
    pub const ENGINE_ROOT_PANIC: &str = "engine.root.panic";
    /// Engine worker sleeps while analyzing a root (keyed by root
    /// signature; exercises deadlines and drain grace).
    pub const ENGINE_ROOT_DELAY: &str = "engine.root.delay";
    /// One byte of a compiled policy index flips between the `read()`
    /// and the checksum verify (must surface as a typed parse failure,
    /// never a wrong answer).
    pub const INDEX_READ_BITFLIP: &str = "index.read.bitflip";

    /// Every named site, in canonical order.
    pub const ALL: &[&str] = &[
        CACHE_WRITE_SHORT,
        CACHE_RENAME_FAIL,
        CACHE_BITFLIP,
        CACHE_FSYNC_FAIL,
        SERVE_CONN_DROP,
        SERVE_READ_STALL,
        SERVE_WRITE_STALL,
        SERVE_FRAME_SPLIT,
        ENGINE_ROOT_PANIC,
        ENGINE_ROOT_DELAY,
        INDEX_READ_BITFLIP,
    ];
}

/// A site's arming rule: fire with a probability, or exactly once (the
/// site's first probe), which pins single-fault scenarios in tests.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Rate {
    Probability(f64),
    Once,
}

#[derive(Debug)]
struct Shared {
    seed: u64,
    rates: BTreeMap<&'static str, Rate>,
    // Per-site probe counters for the sequence-keyed mode.
    counters: Mutex<BTreeMap<&'static str, u64>>,
    injected: AtomicU64,
    recovered: AtomicU64,
    per_site: Mutex<BTreeMap<&'static str, u64>>,
}

/// A seeded schedule of fault injections. Cloning shares the plan (and
/// its counters); the disabled plan is free to probe.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan(Option<Arc<Shared>>);

/// FNV-1a over a string — stable site/key hashing for stream derivation.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonicalizes a site name to its `'static` form so counters key on
/// identity-stable strings. Unknown names are rejected at parse/arm time.
fn canonical(site: &str) -> Option<&'static str> {
    sites::ALL.iter().copied().find(|s| *s == site)
}

impl FaultPlan {
    /// The inert plan: every probe is one branch and a `false`.
    pub fn disabled() -> FaultPlan {
        FaultPlan(None)
    }

    /// A plan with `seed` and no armed sites; arm sites with
    /// [`FaultPlan::site`] or [`FaultPlan::sites_at`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan(Some(Arc::new(Shared {
            seed,
            rates: BTreeMap::new(),
            counters: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            per_site: Mutex::new(BTreeMap::new()),
        })))
    }

    /// Arms `site` at probability `rate` (clamped to `0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown site name or a disabled plan — both are
    /// construction-time programming errors, not runtime conditions.
    #[must_use]
    pub fn site(self, site: &str, rate: f64) -> FaultPlan {
        self.arm(site, Rate::Probability(rate.clamp(0.0, 1.0)))
    }

    /// Arms `site` to fire exactly once, on its first probe. For keyed
    /// probes "once" fires on every distinct key's first probe.
    ///
    /// # Panics
    ///
    /// Panics on an unknown site name or a disabled plan.
    #[must_use]
    pub fn site_once(self, site: &str) -> FaultPlan {
        self.arm(site, Rate::Once)
    }

    /// Arms every site in `names` at `rate`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown site name or a disabled plan.
    #[must_use]
    pub fn sites_at(mut self, names: &[&str], rate: f64) -> FaultPlan {
        for name in names {
            self = self.site(name, rate);
        }
        self
    }

    fn arm(self, site: &str, rate: Rate) -> FaultPlan {
        let canon =
            canonical(site).unwrap_or_else(|| panic!("spo-chaos: unknown fault site \"{site}\""));
        let shared = self.0.expect("spo-chaos: cannot arm a disabled plan");
        // Plans are built before they are shared; a clone at arm time
        // would silently fork counters, so insist on sole ownership.
        let mut inner =
            Arc::try_unwrap(shared).expect("spo-chaos: arm sites before sharing the plan");
        inner.rates.insert(canon, rate);
        FaultPlan(Some(Arc::new(inner)))
    }

    /// Whether any sites can fire.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The plan's seed, if enabled.
    pub fn seed(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.seed)
    }

    /// Sequence-keyed probe: does `site` fire on this, its n-th, probe?
    /// Deterministic when the site is probed in a deterministic order.
    pub fn should_fire(&self, site: &str) -> bool {
        let Some(shared) = &self.0 else { return false };
        let Some((canon, rate)) = shared.rate_of(site) else {
            return false;
        };
        let n = {
            let mut counters = shared
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = counters.entry(canon).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        shared.decide(canon, rate, n, n)
    }

    /// Content-keyed probe: does `site` fire for `key`? A pure function
    /// of `(seed, site, key)` — deterministic under any thread
    /// interleaving, so it is the right mode inside worker pools.
    pub fn should_fire_keyed(&self, site: &str, key: &str) -> bool {
        let Some(shared) = &self.0 else { return false };
        let Some((canon, rate)) = shared.rate_of(site) else {
            return false;
        };
        shared.decide(canon, rate, fnv(key), 0)
    }

    /// A deterministic fault parameter in `0..bound` for `site` (byte
    /// position to flip, milliseconds to stall, …), drawn from a stream
    /// disjoint from the fire/no-fire draws. Returns 0 when the plan is
    /// disabled or `bound` is 0.
    pub fn amount(&self, site: &str, bound: u64) -> u64 {
        let Some(shared) = &self.0 else { return 0 };
        if bound == 0 {
            return 0;
        }
        let n = {
            let counters = shared
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            counters.get(site).copied().unwrap_or(0)
        };
        let mut rng = SmallRng::seed_from_u64(
            shared.seed ^ fnv(site).rotate_left(17) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        rng.gen_range(0..bound)
    }

    /// Records that a layer recovered from an injected fault (a retry
    /// succeeded, a reconnect went through).
    pub fn note_recovered(&self, _site: &str) {
        if let Some(shared) = &self.0 {
            shared.recovered.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total faults injected through this plan.
    pub fn injected(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Total recoveries noted against this plan.
    pub fn recovered(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.recovered.load(Ordering::Relaxed))
    }

    /// Per-site injection counts, in canonical site order.
    pub fn per_site(&self) -> Vec<(&'static str, u64)> {
        let Some(shared) = &self.0 else {
            return Vec::new();
        };
        shared
            .per_site
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(site, n)| (*site, *n))
            .collect()
    }

    /// Parses a plan spec, the `SPO_CHAOS` wire format:
    ///
    /// ```text
    /// seed=N,rate=R,sites=SITE[:RATE|:once][+SITE...]
    /// ```
    ///
    /// `rate` is the default probability for sites without a `:RATE`
    /// suffix (default 0.1); `sites=all` arms every known site. An empty
    /// spec is the disabled plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field or unknown site.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::disabled());
        }
        let mut seed: Option<u64> = None;
        let mut default_rate = 0.1f64;
        let mut site_list: Vec<(String, Option<Rate>)> = Vec::new();
        for field in spec.split(',') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed field \"{field}\" (expected key=value)"))?;
            match key.trim() {
                "seed" => {
                    seed = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| format!("seed \"{value}\": {e}"))?,
                    );
                }
                "rate" => {
                    default_rate = parse_rate(value)?;
                }
                "sites" => {
                    for part in value.split('+') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        if part == "all" {
                            for s in sites::ALL {
                                site_list.push(((*s).to_owned(), None));
                            }
                            continue;
                        }
                        match part.split_once(':') {
                            None => site_list.push((part.to_owned(), None)),
                            Some((name, "once")) => {
                                site_list.push((name.to_owned(), Some(Rate::Once)));
                            }
                            Some((name, rate)) => site_list.push((
                                name.to_owned(),
                                Some(Rate::Probability(parse_rate(rate)?)),
                            )),
                        }
                    }
                }
                other => return Err(format!("unknown field \"{other}\"")),
            }
        }
        let seed = seed.ok_or("missing required field \"seed\"")?;
        let mut plan = FaultPlan::seeded(seed);
        for (name, rate) in site_list {
            if canonical(&name).is_none() {
                return Err(format!("unknown fault site \"{name}\""));
            }
            plan = plan.arm(&name, rate.unwrap_or(Rate::Probability(default_rate)));
        }
        Ok(plan)
    }

    /// Renders the plan back into the [`FaultPlan::parse`] wire format
    /// (empty for a disabled plan) — what `spo chaos soak` exports to
    /// child processes and prints as the minimized replay handle.
    pub fn spec(&self) -> String {
        let Some(shared) = &self.0 else {
            return String::new();
        };
        let mut out = format!("seed={}", shared.seed);
        if !shared.rates.is_empty() {
            out.push_str(",sites=");
            let rendered: Vec<String> = shared
                .rates
                .iter()
                .map(|(site, rate)| match rate {
                    Rate::Once => format!("{site}:once"),
                    Rate::Probability(p) => format!("{site}:{p}"),
                })
                .collect();
            out.push_str(&rendered.join("+"));
        }
        out
    }
}

impl Shared {
    fn rate_of(&self, site: &str) -> Option<(&'static str, Rate)> {
        // Armed sites are canonical; an unarmed (or unknown) site never
        // fires, so the probe stays cheap for plans arming other layers.
        self.rates.get_key_value(site).map(|(k, v)| (*k, *v))
    }

    /// One fire/no-fire decision from the `(seed, site, draw)` stream;
    /// `once_index` is the probe ordinal "once" compares against.
    fn decide(&self, canon: &'static str, rate: Rate, draw: u64, once_index: u64) -> bool {
        let fire = match rate {
            Rate::Once => once_index == 0,
            Rate::Probability(p) => {
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ fnv(canon) ^ draw.wrapping_mul(0x2545_f491_4f6c_dd1d),
                );
                rng.gen_bool(p)
            }
        };
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
            *self
                .per_site
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(canon)
                .or_insert(0) += 1;
        }
        fire
    }
}

fn parse_rate(value: &str) -> Result<f64, String> {
    let rate = value
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("rate \"{value}\": {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {rate} out of range 0.0..=1.0"));
    }
    Ok(rate)
}

// The process-wide plan. Layers that cannot thread a handle (the cache
// opened deep inside the CLI, the daemon's session loops) capture
// `current()` once at construction; `ENABLED` keeps the ambient probes
// free when no plan was ever installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Mutex<FaultPlan>> = OnceLock::new();

fn global() -> &'static Mutex<FaultPlan> {
    GLOBAL.get_or_init(|| Mutex::new(FaultPlan::disabled()))
}

/// Installs `plan` as the process-wide plan (what [`current`] returns).
/// Layers capture the plan at construction, so install before building
/// engines, caches, or daemons.
pub fn install(plan: FaultPlan) {
    ENABLED.store(plan.is_enabled(), Ordering::Release);
    *global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
}

/// The process-wide plan (disabled unless [`install`] armed one). The
/// returned handle shares the installed plan's counters.
pub fn current() -> FaultPlan {
    if !ENABLED.load(Ordering::Acquire) {
        return FaultPlan::disabled();
    }
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Installs the plan described by the `SPO_CHAOS` environment variable,
/// if set — how `spo chaos soak`'s seed reaches the daemon and one-shot
/// CLI children it spawns. A missing or empty variable is a no-op.
///
/// # Errors
///
/// Returns the [`FaultPlan::parse`] error for a malformed spec.
pub fn init_from_env() -> Result<(), String> {
    match std::env::var(ENV_VAR) {
        Err(_) => Ok(()),
        Ok(spec) => {
            let plan = FaultPlan::parse(&spec)?;
            if plan.is_enabled() {
                install(plan);
            }
            Ok(())
        }
    }
}

/// A transient-looking injected IO error for `site` — `Interrupted`, so
/// hardened layers classify it as retryable.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("chaos: injected fault at {site}"),
    )
}

/// Whether `err` is an injected chaos error (used by soak assertions to
/// distinguish injected faults from real environment failures).
pub fn is_injected(err: &std::io::Error) -> bool {
    err.to_string().starts_with("chaos: injected fault")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires_and_costs_nothing_to_probe() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for site in sites::ALL {
            assert!(!plan.should_fire(site));
            assert!(!plan.should_fire_keyed(site, "k"));
        }
        assert_eq!(plan.amount(sites::CACHE_BITFLIP, 100), 0);
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.spec(), "");
    }

    #[test]
    fn sequence_stream_is_a_pure_function_of_the_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).site(sites::CACHE_RENAME_FAIL, 0.5);
            (0..64)
                .map(|_| plan.should_fire(sites::CACHE_RENAME_FAIL))
                .collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
        let fired = draw(7).iter().filter(|f| **f).count();
        assert!((8..=56).contains(&fired), "rate 0.5 wildly off: {fired}/64");
    }

    #[test]
    fn keyed_probes_ignore_ordering() {
        let plan = FaultPlan::seeded(3).site(sites::ENGINE_ROOT_PANIC, 0.5);
        let keys = ["a.A.m()V", "b.B.n()V", "c.C.o()V", "d.D.p()V"];
        let forward: Vec<bool> = keys
            .iter()
            .map(|k| plan.should_fire_keyed(sites::ENGINE_ROOT_PANIC, k))
            .collect();
        let mut reversed: Vec<bool> = keys
            .iter()
            .rev()
            .map(|k| plan.should_fire_keyed(sites::ENGINE_ROOT_PANIC, k))
            .collect();
        reversed.reverse();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn once_fires_exactly_on_the_first_probe() {
        let plan = FaultPlan::seeded(1).site_once(sites::SERVE_CONN_DROP);
        assert!(plan.should_fire(sites::SERVE_CONN_DROP));
        for _ in 0..16 {
            assert!(!plan.should_fire(sites::SERVE_CONN_DROP));
        }
        assert_eq!(plan.injected(), 1);
        assert_eq!(plan.per_site(), vec![(sites::SERVE_CONN_DROP, 1)]);
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let plan = FaultPlan::seeded(1).site(sites::CACHE_BITFLIP, 1.0);
        assert!(!plan.should_fire(sites::CACHE_RENAME_FAIL));
        assert!(plan.should_fire(sites::CACHE_BITFLIP));
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let plan = FaultPlan::seeded(42)
            .site(sites::CACHE_BITFLIP, 0.25)
            .site_once(sites::SERVE_CONN_DROP);
        let spec = plan.spec();
        let reparsed = FaultPlan::parse(&spec).unwrap();
        assert_eq!(reparsed.spec(), spec);
        assert_eq!(reparsed.seed(), Some(42));
    }

    #[test]
    fn parse_accepts_the_documented_forms_and_rejects_garbage() {
        assert!(!FaultPlan::parse("").unwrap().is_enabled());
        let plan =
            FaultPlan::parse("seed=9,rate=0.3,sites=cache.bitflip+serve.conn.drop:once").unwrap();
        assert_eq!(plan.seed(), Some(9));
        let all = FaultPlan::parse("seed=1,sites=all").unwrap();
        assert!(all.spec().contains(sites::ENGINE_ROOT_DELAY));
        assert!(FaultPlan::parse("sites=all").is_err(), "seed is required");
        assert!(FaultPlan::parse("seed=1,sites=no.such.site").is_err());
        assert!(FaultPlan::parse("seed=1,rate=7").is_err());
        assert!(FaultPlan::parse("garbage").is_err());
    }

    #[test]
    fn amounts_are_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(11).site(sites::ENGINE_ROOT_DELAY, 1.0);
        let a = plan.amount(sites::ENGINE_ROOT_DELAY, 30);
        assert!(a < 30);
        assert_eq!(a, plan.amount(sites::ENGINE_ROOT_DELAY, 30));
        assert_eq!(plan.amount(sites::ENGINE_ROOT_DELAY, 0), 0);
    }

    #[test]
    fn injected_errors_are_transient_and_recognizable() {
        let err = injected_io_error(sites::CACHE_RENAME_FAIL);
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert!(is_injected(&err));
        assert!(!is_injected(&std::io::Error::other("disk on fire")));
    }
}
