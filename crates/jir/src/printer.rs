//! Pretty-printer emitting the `.jir` textual format.
//!
//! The printer's output parses back with
//! [`parse_program`](crate::parse_program); this round-trip is exercised by
//! property tests. Instance field and invoke targets print against the
//! receiver's *declared* type (the textual format names callees through the
//! receiver), so a program whose refs name superclasses re-parses with the
//! subclass named instead — resolution treats both identically.

use crate::body::Body;
use crate::program::{Class, Method, Program};
use crate::stmt::{
    BinOp, CmpOp, Cond, Const, Expr, FieldTarget, InvokeKind, LocalId, Operand, Stmt, UnOp,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders a whole program as `.jir` source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (_, class) in program.classes() {
        print_class(program, class, &mut out);
        out.push('\n');
    }
    out
}

/// Renders a single class.
pub fn print_class(program: &Program, class: &Class, out: &mut String) {
    let kw = if class.is_interface() {
        "interface"
    } else {
        "class"
    };
    write!(out, "{kw} {}", program.str(class.name)).unwrap();
    if class.is_interface() {
        if !class.interfaces.is_empty() {
            let names: Vec<_> = class.interfaces.iter().map(|s| program.str(*s)).collect();
            write!(out, " extends {}", names.join(", ")).unwrap();
        }
    } else {
        if let Some(sup) = class.superclass {
            if program.str(sup) != "java.lang.Object" {
                write!(out, " extends {}", program.str(sup)).unwrap();
            }
        }
        if !class.interfaces.is_empty() {
            let names: Vec<_> = class.interfaces.iter().map(|s| program.str(*s)).collect();
            write!(out, " implements {}", names.join(", ")).unwrap();
        }
    }
    out.push_str(" {\n");
    for field in &class.fields {
        let mods: Vec<_> = field.flags.words().collect();
        let mods = if mods.is_empty() {
            String::new()
        } else {
            format!("{} ", mods.join(" "))
        };
        writeln!(
            out,
            "  field {mods}{} {};",
            field.ty.display(program.interner()),
            program.str(field.name)
        )
        .unwrap();
    }
    for method in &class.methods {
        print_method(program, method, out);
    }
    out.push_str("}\n");
}

/// Renders a single method (used standalone by content hashing; the text
/// is exactly what [`print_class`] emits for that member).
pub fn print_method(program: &Program, method: &Method, out: &mut String) {
    let mods: Vec<_> = method.flags.words().collect();
    let mods = if mods.is_empty() {
        String::new()
    } else {
        format!("{} ", mods.join(" "))
    };
    write!(
        out,
        "  method {mods}{} {}(",
        method.ret.display(program.interner()),
        program.str(method.name)
    )
    .unwrap();
    if let Some(body) = &method.body {
        let implicit = body.n_params - method.params.len();
        let params: Vec<String> = body.locals[implicit..body.n_params]
            .iter()
            .map(|l| {
                format!(
                    "{} {}",
                    l.ty.display(program.interner()),
                    program.str(l.name)
                )
            })
            .collect();
        write!(out, "{}", params.join(", ")).unwrap();
        out.push_str(") {\n");
        print_body(program, body, out);
        out.push_str("  }\n");
    } else {
        let params: Vec<String> = method
            .params
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{} p{i}", t.display(program.interner())))
            .collect();
        write!(out, "{}", params.join(", ")).unwrap();
        out.push_str(");\n");
    }
}

fn print_body(program: &Program, body: &Body, out: &mut String) {
    // Group non-parameter locals by type for compact declarations.
    let mut by_type: Vec<(String, Vec<&str>)> = Vec::new();
    for l in &body.locals[body.n_params..] {
        let ty = l.ty.display(program.interner()).to_string();
        let name = program.str(l.name);
        match by_type.iter_mut().find(|(t, _)| *t == ty) {
            Some((_, names)) => names.push(name),
            None => by_type.push((ty, vec![name])),
        }
    }
    for (ty, names) in &by_type {
        writeln!(out, "    local {ty} {};", names.join(", ")).unwrap();
    }
    // Assign label names to branch targets.
    let mut labels: HashMap<usize, String> = HashMap::new();
    for s in &body.stmts {
        if let Stmt::If { target, .. } | Stmt::Goto { target } = s {
            let n = labels.len();
            labels.entry(*target).or_insert_with(|| format!("L{n}"));
        }
    }
    let local_name = |l: LocalId| program.str(body.locals[l.index()].name).to_owned();
    let operand = |o: &Operand| match o {
        Operand::Local(l) => local_name(*l),
        Operand::Const(c) => print_const(program, c),
    };
    for (i, s) in body.stmts.iter().enumerate() {
        if let Some(label) = labels.get(&i) {
            writeln!(out, "  {label}:").unwrap();
        }
        let line = match s {
            Stmt::Assign { dst, value } => {
                format!(
                    "{} = {}",
                    local_name(*dst),
                    print_expr(program, body, value)
                )
            }
            Stmt::FieldStore { target, value } => {
                format!(
                    "{} = {}",
                    print_field_target(program, body, target),
                    operand(value)
                )
            }
            Stmt::ArrayStore {
                array,
                index,
                value,
            } => {
                format!(
                    "{}[{}] = {}",
                    local_name(*array),
                    operand(index),
                    operand(value)
                )
            }
            Stmt::Invoke { dst, call } => {
                let call_str = print_call(program, body, call);
                match dst {
                    Some(d) => format!("{} = {call_str}", local_name(*d)),
                    None => call_str,
                }
            }
            Stmt::If { cond, target } => {
                let c = match cond {
                    Cond::Truthy(o) => operand(o),
                    Cond::Falsy(o) => format!("!{}", operand(o)),
                    Cond::Cmp { op, lhs, rhs } => {
                        format!("{} {} {}", operand(lhs), cmp_str(*op), operand(rhs))
                    }
                };
                format!("if {c} goto {}", labels[target])
            }
            Stmt::Goto { target } => format!("goto {}", labels[target]),
            Stmt::Return { value: None } => "return".to_owned(),
            Stmt::Return { value: Some(v) } => format!("return {}", operand(v)),
            Stmt::Throw { value } => format!("throw {}", operand(value)),
            Stmt::EnterPriv => "enterpriv".to_owned(),
            Stmt::ExitPriv => "exitpriv".to_owned(),
            Stmt::Nop => "nop".to_owned(),
        };
        writeln!(out, "    {line};").unwrap();
    }
}

fn print_const(program: &Program, c: &Const) -> String {
    match c {
        Const::Int(v) => v.to_string(),
        Const::Bool(b) => b.to_string(),
        Const::Str(s) => format!("\"{}\"", escape(program.str(*s))),
        Const::Null => "null".to_owned(),
        Const::Class(s) => format!("{}.class", program.str(*s)),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            other => vec![other],
        })
        .collect()
}

fn print_field_target(program: &Program, body: &Body, t: &FieldTarget) -> String {
    match t {
        FieldTarget::Instance(recv, f) => {
            format!(
                "{}.{}",
                program.str(body.locals[recv.index()].name),
                program.str(f.name)
            )
        }
        FieldTarget::Static(f) => {
            format!("{}.{}", program.str(f.class), program.str(f.name))
        }
    }
}

fn print_call(program: &Program, body: &Body, call: &crate::stmt::Call) -> String {
    let args: Vec<String> = call
        .args
        .iter()
        .map(|o| match o {
            Operand::Local(l) => program.str(body.locals[l.index()].name).to_owned(),
            Operand::Const(c) => print_const(program, c),
        })
        .collect();
    let args = args.join(", ");
    match call.kind {
        InvokeKind::Static => format!(
            "staticinvoke {}.{}({args})",
            program.str(call.callee.class),
            program.str(call.callee.name)
        ),
        kind => {
            let kw = match kind {
                InvokeKind::Virtual => "virtualinvoke",
                InvokeKind::Special => "specialinvoke",
                InvokeKind::Interface => "interfaceinvoke",
                InvokeKind::Static => unreachable!(),
            };
            let recv = call.receiver.expect("instance call without receiver");
            format!(
                "{kw} {}.{}({args})",
                program.str(body.locals[recv.index()].name),
                program.str(call.callee.name)
            )
        }
    }
}

fn print_expr(program: &Program, body: &Body, e: &Expr) -> String {
    let operand = |o: &Operand| match o {
        Operand::Local(l) => program.str(body.locals[l.index()].name).to_owned(),
        Operand::Const(c) => print_const(program, c),
    };
    match e {
        Expr::Operand(o) => operand(o),
        Expr::Unary { op, operand: o } => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            };
            format!("{sym}{}", operand(o))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {} {}", operand(lhs), bin_str(*op), operand(rhs))
        }
        Expr::FieldLoad(t) => print_field_target(program, body, t),
        Expr::New(c) => format!("new {}", program.str(*c)),
        Expr::NewArray { elem, len } => {
            format!(
                "newarray {} [{}]",
                elem.display(program.interner()),
                operand(len)
            )
        }
        Expr::ArrayLoad { array, index } => {
            format!(
                "{}[{}]",
                program.str(body.locals[array.index()].name),
                operand(index)
            )
        }
        Expr::Cast { ty, operand: o } => {
            format!("({}) {}", ty.display(program.interner()), operand(o))
        }
        Expr::InstanceOf { ty, operand: o } => {
            format!(
                "{} instanceof {}",
                operand(o),
                ty.display(program.interner())
            )
        }
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
    }
}
