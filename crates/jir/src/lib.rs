//! # spo-jir — a Jimple-like IR for Java-style programs
//!
//! This crate is the program-representation substrate of the
//! *security policy oracle* (PLDI 2011 reproduction). The paper's analysis
//! runs on Soot's Jimple, a typed three-address IR for JVM bytecode; `spo-jir`
//! provides the equivalent from scratch:
//!
//! * an interned, arena-based [`Program`] of classes, fields, and methods;
//! * three-address [`Stmt`]s with index-based branch targets and per-body
//!   [`Cfg`] construction;
//! * a fluent [`ProgramBuilder`] for generating programs in code;
//! * a textual format (`.jir`) with a [`parse_program`] frontend and a
//!   round-tripping [`print_program`] pretty-printer.
//!
//! The IR deliberately models the parts of Java the security analysis
//! observes: virtual/special/static/interface dispatch, `native` (JNI)
//! methods, field accesses, constants feeding conditional branches, and
//! privileged regions (`AccessController.doPrivileged`).
//!
//! # Examples
//!
//! Parse a class and inspect it:
//!
//! ```
//! let src = r#"
//! class java.net.Socket {
//!   method public void connect(java.net.SocketAddress endpoint, int timeout) {
//!     local java.lang.SecurityManager sm;
//!     sm = staticinvoke java.lang.System.getSecurityManager();
//!     if sm == null goto skip;
//!     virtualinvoke sm.checkConnect(endpoint, timeout);
//!   skip:
//!     return;
//!   }
//! }
//! "#;
//! let program = spo_jir::parse_program(src)?;
//! let socket = program.class_by_str("java.net.Socket").unwrap();
//! assert_eq!(program.class(socket).methods.len(), 1);
//! # Ok::<(), spo_jir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod body;
mod builder;
mod dominators;
mod flags;
mod hash;
mod intern;
mod parse;
mod printer;
mod program;
mod stmt;
mod types;

pub use body::{Body, Cfg, LocalDecl};
pub use builder::{ClassBuilder, Label, MethodBuilder, ProgramBuilder};
pub use dominators::Dominators;
pub use flags::{ClassFlags, FieldFlags, MethodFlags};
pub use hash::{method_content_hash, method_identity_hash, structure_hash, Fnv64};
pub use intern::{Interner, Symbol};
pub use parse::{
    lex, parse_into, parse_into_recovering, parse_into_recovering_traced, parse_into_traced,
    parse_program, LexError, ParseDiagnostic, ParseError, Recovery, Spanned, Tok,
};
pub use printer::{print_class, print_method, print_program};
pub use program::{Class, ClassId, Field, FieldId, Method, MethodId, Program, ProgramError};
pub use stmt::{
    BinOp, Call, CmpOp, Cond, Const, Expr, FieldRef, FieldTarget, InvokeKind, LocalId, MethodRef,
    Operand, Stmt, UnOp,
};
pub use types::{Type, TypeDisplay};
