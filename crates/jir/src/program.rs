//! The top-level program arena: classes, methods, fields, and lookups.

use crate::body::Body;
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::intern::{Interner, Symbol};
use crate::stmt::{FieldRef, MethodRef};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a class within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a method: the declaring class plus its index therein.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MethodId {
    /// Declaring class.
    pub class: ClassId,
    /// Index within the class's method table.
    pub index: u32,
}

/// Identifier of a field: the declaring class plus its index therein.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FieldId {
    /// Declaring class.
    pub class: ClassId,
    /// Index within the class's field table.
    pub index: u32,
}

/// A field declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Field {
    /// Interned field name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Type,
    /// Access flags.
    pub flags: FieldFlags,
}

/// A method declaration, possibly with a body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Method {
    /// Interned method name.
    pub name: Symbol,
    /// Parameter types, excluding the implicit receiver.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Access and attribute flags.
    pub flags: MethodFlags,
    /// The body; `None` for `native` and `abstract` methods.
    pub body: Option<Body>,
}

impl Method {
    /// Returns `true` for JNI methods — the paper's primary
    /// security-sensitive events.
    pub fn is_native(&self) -> bool {
        self.flags.contains(MethodFlags::NATIVE)
    }

    /// Returns `true` if the method has no receiver.
    pub fn is_static(&self) -> bool {
        self.flags.contains(MethodFlags::STATIC)
    }

    /// Number of explicit parameters.
    pub fn argc(&self) -> u32 {
        self.params.len() as u32
    }
}

/// A class or interface declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Class {
    /// Interned fully-qualified name.
    pub name: Symbol,
    /// Superclass name; `None` only for the hierarchy root.
    pub superclass: Option<Symbol>,
    /// Implemented interface names.
    pub interfaces: Vec<Symbol>,
    /// Class flags.
    pub flags: ClassFlags,
    /// Declared fields.
    pub fields: Vec<Field>,
    /// Declared methods.
    pub methods: Vec<Method>,
}

impl Class {
    /// Returns `true` if declared with `interface`.
    pub fn is_interface(&self) -> bool {
        self.flags.contains(ClassFlags::INTERFACE)
    }
}

/// Errors raised when assembling a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// Two classes share a fully-qualified name.
    DuplicateClass(String),
    /// Two methods in one class share a `(name, arity)` key.
    DuplicateMethod {
        /// Class name.
        class: String,
        /// Method name.
        method: String,
        /// Shared arity.
        argc: u32,
    },
    /// Two fields in one class share a name.
    DuplicateField {
        /// Class name.
        class: String,
        /// Field name.
        field: String,
    },
    /// A body failed structural validation.
    InvalidBody {
        /// Class name.
        class: String,
        /// Method name.
        method: String,
        /// Violation description.
        detail: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateClass(c) => write!(f, "duplicate class `{c}`"),
            ProgramError::DuplicateMethod {
                class,
                method,
                argc,
            } => {
                write!(f, "duplicate method `{class}.{method}/{argc}`")
            }
            ProgramError::DuplicateField { class, field } => {
                write!(f, "duplicate field `{class}.{field}`")
            }
            ProgramError::InvalidBody {
                class,
                method,
                detail,
            } => {
                write!(f, "invalid body in `{class}.{method}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete JIR program: an arena of classes with interned names and
/// dense lookup tables.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder) or by
/// parsing the textual format with [`parse_program`](crate::parse_program).
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub(crate) interner: Interner,
    pub(crate) classes: Vec<Class>,
    pub(crate) class_by_name: HashMap<Symbol, ClassId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The string interner backing all names in this program.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (used by builders and parsers).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// All classes, in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The class with the given id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks a class up by interned name.
    pub fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.class_by_name.get(&name).copied()
    }

    /// Looks a class up by string name.
    pub fn class_by_str(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name(sym)
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.classes[id.class.index()].methods[id.index as usize]
    }

    /// The field with the given id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.classes[id.class.index()].fields[id.index as usize]
    }

    /// All methods of a class.
    pub fn methods_of(&self, class: ClassId) -> impl Iterator<Item = (MethodId, &Method)> {
        self.classes[class.index()]
            .methods
            .iter()
            .enumerate()
            .map(move |(i, m)| {
                (
                    MethodId {
                        class,
                        index: i as u32,
                    },
                    m,
                )
            })
    }

    /// All methods in the program.
    pub fn all_methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.classes().flat_map(move |(id, _)| self.methods_of(id))
    }

    /// Finds a method declared *directly* on `class` by name and arity
    /// (no superclass search — see `spo-resolve` for hierarchy lookup).
    pub fn find_method(&self, class: ClassId, name: Symbol, argc: u32) -> Option<MethodId> {
        self.classes[class.index()]
            .methods
            .iter()
            .position(|m| m.name == name && m.argc() == argc)
            .map(|i| MethodId {
                class,
                index: i as u32,
            })
    }

    /// Finds a field declared directly on `class` by name.
    pub fn find_field(&self, class: ClassId, name: Symbol) -> Option<FieldId> {
        self.classes[class.index()]
            .fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId {
                class,
                index: i as u32,
            })
    }

    /// Human-readable `Class.method` name of a method.
    pub fn method_name(&self, id: MethodId) -> String {
        format!(
            "{}.{}",
            self.str(self.class(id.class).name),
            self.str(self.method(id).name)
        )
    }

    /// The signature string of a method: `Class.name(ty1,ty2)`.
    ///
    /// This is the key used to match API entry points across independent
    /// implementations of the same library.
    pub fn method_signature(&self, id: MethodId) -> String {
        let m = self.method(id);
        let params: Vec<String> = m
            .params
            .iter()
            .map(|t| t.display(&self.interner).to_string())
            .collect();
        format!("{}({})", self.method_name(id), params.join(","))
    }

    /// A [`MethodRef`] naming `id` as a call target.
    pub fn method_ref(&self, id: MethodId) -> MethodRef {
        let m = self.method(id);
        MethodRef {
            class: self.class(id.class).name,
            name: m.name,
            argc: m.argc(),
        }
    }

    /// A [`FieldRef`] naming `id`.
    pub fn field_ref(&self, id: FieldId) -> FieldRef {
        FieldRef {
            class: self.class(id.class).name,
            name: self.field(id).name,
        }
    }

    /// Adds a fully-formed class, validating name/member uniqueness and
    /// method bodies.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on duplicate class/member names or a body
    /// that fails [`Body::validate`].
    pub fn add_class(&mut self, class: Class) -> Result<ClassId, ProgramError> {
        if self.class_by_name.contains_key(&class.name) {
            return Err(ProgramError::DuplicateClass(
                self.str(class.name).to_owned(),
            ));
        }
        let cname = self.str(class.name).to_owned();
        for (i, m) in class.methods.iter().enumerate() {
            for m2 in &class.methods[i + 1..] {
                if m.name == m2.name && m.argc() == m2.argc() {
                    return Err(ProgramError::DuplicateMethod {
                        class: cname,
                        method: self.str(m.name).to_owned(),
                        argc: m.argc(),
                    });
                }
            }
            if let Some(body) = &m.body {
                body.validate()
                    .map_err(|detail| ProgramError::InvalidBody {
                        class: cname.clone(),
                        method: self.str(m.name).to_owned(),
                        detail,
                    })?;
            }
        }
        for (i, fl) in class.fields.iter().enumerate() {
            if class.fields[i + 1..].iter().any(|f2| f2.name == fl.name) {
                return Err(ProgramError::DuplicateField {
                    class: cname,
                    field: self.str(fl.name).to_owned(),
                });
            }
        }
        let id = ClassId(self.classes.len() as u32);
        self.class_by_name.insert(class.name, id);
        self.classes.push(class);
        Ok(id)
    }

    /// Total number of statements across all bodies — the "size" metric used
    /// in library-characteristics reporting.
    pub fn stmt_count(&self) -> usize {
        self.all_methods()
            .filter_map(|(_, m)| m.body.as_ref())
            .map(|b| b.stmts.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_class(p: &mut Program, name: &str) -> Class {
        let n = p.intern(name);
        Class {
            name: n,
            superclass: None,
            interfaces: vec![],
            flags: ClassFlags::PUBLIC,
            fields: vec![],
            methods: vec![],
        }
    }

    #[test]
    fn add_and_lookup_class() {
        let mut p = Program::new();
        let c = simple_class(&mut p, "a.B");
        let id = p.add_class(c).unwrap();
        assert_eq!(p.class_by_str("a.B"), Some(id));
        assert_eq!(p.class_by_str("a.C"), None);
        assert_eq!(p.class_count(), 1);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut p = Program::new();
        let c1 = simple_class(&mut p, "a.B");
        let c2 = simple_class(&mut p, "a.B");
        p.add_class(c1).unwrap();
        assert!(matches!(
            p.add_class(c2),
            Err(ProgramError::DuplicateClass(_))
        ));
    }

    #[test]
    fn duplicate_method_rejected() {
        let mut p = Program::new();
        let mut c = simple_class(&mut p, "a.B");
        let m = p.intern("m");
        let mk = |name| Method {
            name,
            params: vec![Type::Int],
            ret: Type::Void,
            flags: MethodFlags::PUBLIC | MethodFlags::NATIVE,
            body: None,
        };
        c.methods.push(mk(m));
        c.methods.push(mk(m));
        assert!(matches!(
            p.add_class(c),
            Err(ProgramError::DuplicateMethod { .. })
        ));
    }

    #[test]
    fn overload_by_arity_allowed() {
        let mut p = Program::new();
        let mut c = simple_class(&mut p, "a.B");
        let m = p.intern("m");
        c.methods.push(Method {
            name: m,
            params: vec![],
            ret: Type::Void,
            flags: MethodFlags::NATIVE,
            body: None,
        });
        c.methods.push(Method {
            name: m,
            params: vec![Type::Int],
            ret: Type::Void,
            flags: MethodFlags::NATIVE,
            body: None,
        });
        let id = p.add_class(c).unwrap();
        assert!(p.find_method(id, m, 0).is_some());
        assert!(p.find_method(id, m, 1).is_some());
        assert!(p.find_method(id, m, 2).is_none());
    }

    #[test]
    fn signature_string() {
        let mut p = Program::new();
        let mut c = simple_class(&mut p, "java.net.Socket");
        let m = p.intern("connect");
        let addr = p.intern("java.net.SocketAddress");
        c.methods.push(Method {
            name: m,
            params: vec![Type::Ref(addr), Type::Int],
            ret: Type::Void,
            flags: MethodFlags::PUBLIC | MethodFlags::NATIVE,
            body: None,
        });
        let cid = p.add_class(c).unwrap();
        let mid = p.find_method(cid, m, 2).unwrap();
        assert_eq!(
            p.method_signature(mid),
            "java.net.Socket.connect(java.net.SocketAddress,int)"
        );
    }

    #[test]
    fn invalid_body_rejected() {
        let mut p = Program::new();
        let mut c = simple_class(&mut p, "a.B");
        let m = p.intern("m");
        c.methods.push(Method {
            name: m,
            params: vec![],
            ret: Type::Void,
            flags: MethodFlags::PUBLIC,
            body: Some(Body {
                locals: vec![],
                n_params: 0,
                stmts: vec![crate::Stmt::Goto { target: 42 }],
            }),
        });
        assert!(matches!(
            p.add_class(c),
            Err(ProgramError::InvalidBody { .. })
        ));
    }
}
