//! Deterministic content hashing of JIR programs.
//!
//! The persistent summary cache (`spo-cache`) keys each entry point by the
//! *content* of the methods its analysis can observe. That key must be
//! stable across processes, platforms, and parses — interned [`Symbol`]
//! values are none of those, so hashing resolves every symbol to its
//! string and streams the structural representation directly into the
//! hasher (no printing, no allocation: the keyer runs on the warm path of
//! every cached invocation).
//!
//! Two hashes are exposed:
//!
//! * [`method_content_hash`] — a method's signature, flags, and body
//!   structure. Any edit the analysis could observe changes it;
//!   re-parsing the same text reproduces it. Local variable *names* are
//!   deliberately excluded: the analysis never reads them, so two bodies
//!   differing only in local names produce identical policies and may
//!   share a cache entry.
//! * [`structure_hash`] — every class *declaration* in the program (names,
//!   superclasses, interfaces, flags, field declarations, and method
//!   signatures — no bodies). Any edit that can change hierarchy-based
//!   resolution or private-field classification changes it.
//!
//! Both build on [`Fnv64`], a 64-bit FNV-1a hasher chosen because it is
//! fully specified (no per-process seed, unlike `DefaultHasher`) and
//! allocation-free.
//!
//! [`Symbol`]: crate::Symbol

use crate::intern::Interner;
use crate::program::{MethodId, Program};
use crate::stmt::{Call, Cond, Const, Expr, FieldTarget, Operand, Stmt};
use crate::types::Type;

/// A 64-bit FNV-1a hasher with a fully deterministic, seedless state.
///
/// ```
/// use spo_jir::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"abc");
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write(b"abc");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string plus a terminator byte, so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Absorbs a 64-bit value (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_type(h: &mut Fnv64, interner: &Interner, ty: &Type) {
    match ty {
        Type::Void => h.write(&[0]),
        Type::Bool => h.write(&[1]),
        Type::Int => h.write(&[2]),
        Type::Long => h.write(&[3]),
        Type::Float => h.write(&[4]),
        Type::Double => h.write(&[5]),
        Type::Ref(s) => {
            h.write(&[6]);
            h.write_str(interner.resolve(*s));
        }
        Type::Array(inner) => {
            h.write(&[7]);
            hash_type(h, interner, inner);
        }
    }
}

fn hash_const(h: &mut Fnv64, interner: &Interner, c: &Const) {
    match c {
        Const::Int(v) => {
            h.write(&[0]);
            h.write_u64(*v as u64);
        }
        Const::Bool(b) => h.write(&[1, *b as u8]),
        Const::Str(s) => {
            h.write(&[2]);
            h.write_str(interner.resolve(*s));
        }
        Const::Null => h.write(&[3]),
        Const::Class(s) => {
            h.write(&[4]);
            h.write_str(interner.resolve(*s));
        }
    }
}

fn hash_operand(h: &mut Fnv64, interner: &Interner, o: &Operand) {
    match o {
        Operand::Local(l) => {
            h.write(&[0]);
            h.write_u64(l.0 as u64);
        }
        Operand::Const(c) => {
            h.write(&[1]);
            hash_const(h, interner, c);
        }
    }
}

fn hash_field_target(h: &mut Fnv64, interner: &Interner, t: &FieldTarget) {
    match t {
        FieldTarget::Instance(recv, f) => {
            h.write(&[0]);
            h.write_u64(recv.0 as u64);
            h.write_str(interner.resolve(f.class));
            h.write_str(interner.resolve(f.name));
        }
        FieldTarget::Static(f) => {
            h.write(&[1]);
            h.write_str(interner.resolve(f.class));
            h.write_str(interner.resolve(f.name));
        }
    }
}

fn hash_call(h: &mut Fnv64, interner: &Interner, call: &Call) {
    h.write(&[call.kind as u8]);
    match call.receiver {
        Some(r) => {
            h.write(&[1]);
            h.write_u64(r.0 as u64);
        }
        None => h.write(&[0]),
    }
    h.write_str(interner.resolve(call.callee.class));
    h.write_str(interner.resolve(call.callee.name));
    h.write_u64(call.callee.argc as u64);
    h.write_u64(call.args.len() as u64);
    for a in &call.args {
        hash_operand(h, interner, a);
    }
}

fn hash_expr(h: &mut Fnv64, interner: &Interner, e: &Expr) {
    match e {
        Expr::Operand(o) => {
            h.write(&[0]);
            hash_operand(h, interner, o);
        }
        Expr::Unary { op, operand } => {
            h.write(&[1, *op as u8]);
            hash_operand(h, interner, operand);
        }
        Expr::Binary { op, lhs, rhs } => {
            h.write(&[2, *op as u8]);
            hash_operand(h, interner, lhs);
            hash_operand(h, interner, rhs);
        }
        Expr::FieldLoad(t) => {
            h.write(&[3]);
            hash_field_target(h, interner, t);
        }
        Expr::New(c) => {
            h.write(&[4]);
            h.write_str(interner.resolve(*c));
        }
        Expr::NewArray { elem, len } => {
            h.write(&[5]);
            hash_type(h, interner, elem);
            hash_operand(h, interner, len);
        }
        Expr::ArrayLoad { array, index } => {
            h.write(&[6]);
            h.write_u64(array.0 as u64);
            hash_operand(h, interner, index);
        }
        Expr::Cast { ty, operand } => {
            h.write(&[7]);
            hash_type(h, interner, ty);
            hash_operand(h, interner, operand);
        }
        Expr::InstanceOf { ty, operand } => {
            h.write(&[8]);
            hash_type(h, interner, ty);
            hash_operand(h, interner, operand);
        }
    }
}

fn hash_stmt(h: &mut Fnv64, interner: &Interner, s: &Stmt) {
    match s {
        Stmt::Assign { dst, value } => {
            h.write(&[0]);
            h.write_u64(dst.0 as u64);
            hash_expr(h, interner, value);
        }
        Stmt::FieldStore { target, value } => {
            h.write(&[1]);
            hash_field_target(h, interner, target);
            hash_operand(h, interner, value);
        }
        Stmt::ArrayStore {
            array,
            index,
            value,
        } => {
            h.write(&[2]);
            h.write_u64(array.0 as u64);
            hash_operand(h, interner, index);
            hash_operand(h, interner, value);
        }
        Stmt::Invoke { dst, call } => {
            h.write(&[3]);
            match dst {
                Some(d) => {
                    h.write(&[1]);
                    h.write_u64(d.0 as u64);
                }
                None => h.write(&[0]),
            }
            hash_call(h, interner, call);
        }
        Stmt::If { cond, target } => {
            h.write(&[4]);
            match cond {
                Cond::Truthy(o) => {
                    h.write(&[0]);
                    hash_operand(h, interner, o);
                }
                Cond::Falsy(o) => {
                    h.write(&[1]);
                    hash_operand(h, interner, o);
                }
                Cond::Cmp { op, lhs, rhs } => {
                    h.write(&[2, *op as u8]);
                    hash_operand(h, interner, lhs);
                    hash_operand(h, interner, rhs);
                }
            }
            h.write_u64(*target as u64);
        }
        Stmt::Goto { target } => {
            h.write(&[5]);
            h.write_u64(*target as u64);
        }
        Stmt::Return { value } => {
            h.write(&[6]);
            match value {
                Some(v) => {
                    h.write(&[1]);
                    hash_operand(h, interner, v);
                }
                None => h.write(&[0]),
            }
        }
        Stmt::Throw { value } => {
            h.write(&[7]);
            hash_operand(h, interner, value);
        }
        Stmt::EnterPriv => h.write(&[8]),
        Stmt::ExitPriv => h.write(&[9]),
        Stmt::Nop => h.write(&[10]),
    }
}

/// Deterministic content hash of one method: declaring class, name, flags,
/// signature types, and full body structure with every symbol resolved to
/// its string.
///
/// Stable across save/load round-trips and process restarts (nothing
/// process-local is hashed). Local variable names are excluded — the
/// analysis never reads them — so a rename-only edit keeps the hash,
/// which is sound: the cached policy is still exactly what re-analysis
/// would produce.
pub fn method_content_hash(program: &Program, id: MethodId) -> u64 {
    let interner = program.interner();
    let method = program.method(id);
    let mut h = Fnv64::new();
    h.write_str(program.str(program.class(id.class).name));
    h.write_str(program.str(method.name));
    h.write_u64(method.flags.bits() as u64);
    hash_type(&mut h, interner, &method.ret);
    h.write_u64(method.params.len() as u64);
    for p in &method.params {
        hash_type(&mut h, interner, p);
    }
    match &method.body {
        None => h.write(&[0]),
        Some(body) => {
            h.write(&[1]);
            h.write_u64(body.n_params as u64);
            h.write_u64(body.locals.len() as u64);
            for l in &body.locals {
                hash_type(&mut h, interner, &l.ty);
            }
            h.write_u64(body.stmts.len() as u64);
            for s in &body.stmts {
                hash_stmt(&mut h, interner, s);
            }
        }
    }
    h.finish()
}

/// Deterministic identity hash of one method *declaration slot*: declaring
/// class, name, return type, and parameter types — no flags, no body.
///
/// Two parses of the same program always agree on it, and no two methods
/// of one program share it (Java bytecode distinguishes overloads by full
/// descriptor, which is exactly what is hashed). The persistent cache uses
/// it as a compact cross-process method name: stable under body and flag
/// edits, which the content hash ([`method_content_hash`]) catches
/// instead.
pub fn method_identity_hash(program: &Program, id: MethodId) -> u64 {
    let interner = program.interner();
    let method = program.method(id);
    let mut h = Fnv64::new();
    h.write_str(program.str(program.class(id.class).name));
    h.write_str(program.str(method.name));
    hash_type(&mut h, interner, &method.ret);
    h.write_u64(method.params.len() as u64);
    for p in &method.params {
        hash_type(&mut h, interner, p);
    }
    h.finish()
}

/// Deterministic hash of the program's *declaration structure*: for every
/// class (in name order) its name, kind, superclass, interfaces, flags,
/// field declarations, and method signatures with flags — no bodies.
///
/// Class-hierarchy analysis, devirtualization, and private-field
/// classification read exactly this declaration surface, so any edit that
/// could change how a call site or field access resolves changes the hash,
/// while body-only edits leave it untouched.
pub fn structure_hash(program: &Program) -> u64 {
    // Name order, not declaration order: layering the same files in a
    // different order must not look like a structural edit.
    let mut classes: Vec<_> = program.classes().map(|(_, c)| c).collect();
    classes.sort_by_key(|c| program.str(c.name));
    let interner = program.interner();
    let mut h = Fnv64::new();
    for class in classes {
        h.write_str(program.str(class.name));
        h.write_u64(class.flags.bits() as u64);
        match class.superclass {
            Some(sup) => h.write_str(program.str(sup)),
            None => h.write_str(""),
        }
        for i in &class.interfaces {
            h.write_str(program.str(*i));
        }
        h.write_u64(class.fields.len() as u64);
        for field in &class.fields {
            h.write_str(program.str(field.name));
            hash_type(&mut h, interner, &field.ty);
            h.write_u64(field.flags.bits() as u64);
        }
        h.write_u64(class.methods.len() as u64);
        for method in &class.methods {
            h.write_str(program.str(method.name));
            for p in &method.params {
                hash_type(&mut h, interner, p);
            }
            hash_type(&mut h, interner, &method.ret);
            h.write_u64(method.flags.bits() as u64);
            h.write_u64(method.body.is_some() as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const SRC: &str = r#"
class a.Base {
  field static int counter;
  method public void api() {
    local int x;
    x = 1;
    staticinvoke a.Util.helper();
    return;
  }
}
class a.Util {
  method public static void helper() {
    local int y;
    y = 2;
    return;
  }
}
"#;

    fn method(p: &Program, class: &str, name: &str) -> MethodId {
        let cid = p.class_by_str(class).unwrap();
        let sym = p.interner().get(name).unwrap();
        p.find_method(cid, sym, 0).unwrap()
    }

    #[test]
    fn hashes_stable_across_reparses() {
        let p1 = parse_program(SRC).unwrap();
        let p2 = parse_program(SRC).unwrap();
        assert_eq!(structure_hash(&p1), structure_hash(&p2));
        assert_eq!(
            method_content_hash(&p1, method(&p1, "a.Base", "api")),
            method_content_hash(&p2, method(&p2, "a.Base", "api")),
        );
    }

    #[test]
    fn body_edit_changes_method_hash_not_structure() {
        let p1 = parse_program(SRC).unwrap();
        let edited = SRC.replace("y = 2;", "y = 3;");
        let p2 = parse_program(&edited).unwrap();
        assert_eq!(structure_hash(&p1), structure_hash(&p2));
        assert_ne!(
            method_content_hash(&p1, method(&p1, "a.Util", "helper")),
            method_content_hash(&p2, method(&p2, "a.Util", "helper")),
        );
        // The untouched method's hash is unchanged.
        assert_eq!(
            method_content_hash(&p1, method(&p1, "a.Base", "api")),
            method_content_hash(&p2, method(&p2, "a.Base", "api")),
        );
    }

    #[test]
    fn local_rename_keeps_method_hash() {
        // Names of locals are not analysis inputs, so a rename-only edit
        // keeps the content hash (and may legitimately share a cache
        // entry).
        let p1 = parse_program(SRC).unwrap();
        let renamed = SRC.replace("int y;", "int z;").replace("y = 2;", "z = 2;");
        let p2 = parse_program(&renamed).unwrap();
        assert_eq!(
            method_content_hash(&p1, method(&p1, "a.Util", "helper")),
            method_content_hash(&p2, method(&p2, "a.Util", "helper")),
        );
    }

    #[test]
    fn declaration_edit_changes_structure_hash() {
        let p1 = parse_program(SRC).unwrap();
        for edit in [
            SRC.replace("class a.Util", "class a.Util extends a.Base"),
            SRC.replace("field static int counter;", "field int counter;"),
            SRC.replace(
                "method public static void helper",
                "method static void helper",
            ),
        ] {
            let p2 = parse_program(&edit).unwrap();
            assert_ne!(
                structure_hash(&p1),
                structure_hash(&p2),
                "edit not seen:\n{edit}"
            );
        }
    }

    #[test]
    fn structure_hash_ignores_layering_order() {
        let p1 = parse_program(SRC).unwrap();
        // Same classes, opposite file order.
        let (a, b) = SRC.split_once("class a.Util").unwrap();
        let swapped = format!("class a.Util{b}\n{a}");
        let p2 = parse_program(&swapped).unwrap();
        assert_eq!(structure_hash(&p1), structure_hash(&p2));
    }

    #[test]
    fn same_class_different_methods_hash_differently() {
        let p = parse_program(SRC).unwrap();
        assert_ne!(
            method_content_hash(&p, method(&p, "a.Base", "api")),
            method_content_hash(&p, method(&p, "a.Util", "helper")),
        );
    }
}
