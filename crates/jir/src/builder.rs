//! Fluent builders for constructing [`Program`]s in code.
//!
//! The builders are the programmatic alternative to the textual frontend
//! ([`parse_program`](crate::parse_program)) and are what the synthetic
//! corpus generator uses to emit library implementations at scale.
//!
//! # Examples
//!
//! ```
//! use spo_jir::{ProgramBuilder, Type, MethodFlags, Const};
//!
//! let mut pb = ProgramBuilder::new();
//! {
//!     let mut cb = pb.class("demo.Greeter");
//!     cb.extends("java.lang.Object");
//!     let mut mb = cb.method("answer", MethodFlags::PUBLIC, Type::Int);
//!     let x = mb.local("x", Type::Int);
//!     mb.assign_const(x, Const::Int(42));
//!     mb.ret_val(x);
//!     mb.finish();
//!     cb.finish().unwrap();
//! }
//! let program = pb.finish();
//! assert_eq!(program.class_count(), 1);
//! ```

use crate::body::{Body, LocalDecl};
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::intern::Symbol;
use crate::program::{Class, ClassId, Field, Method, Program, ProgramError};
use crate::stmt::{
    Call, CmpOp, Cond, Const, Expr, FieldRef, FieldTarget, InvokeKind, LocalId, MethodRef, Operand,
    Stmt,
};
use crate::types::Type;

/// Top-level builder that accumulates classes into a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string in the program under construction.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.program.intern(s)
    }

    /// Shorthand for a class-reference type.
    pub fn ref_ty(&mut self, class: &str) -> Type {
        let s = self.intern(class);
        Type::Ref(s)
    }

    /// Starts a class. Call [`ClassBuilder::finish`] to commit it.
    pub fn class<'a>(&'a mut self, name: &str) -> ClassBuilder<'a> {
        let name = self.program.intern(name);
        let object = self.program.intern("java.lang.Object");
        ClassBuilder {
            pb: self,
            class: Class {
                name,
                superclass: Some(object),
                interfaces: vec![],
                flags: ClassFlags::PUBLIC,
                fields: vec![],
                methods: vec![],
            },
            is_root: false,
        }
    }

    /// Starts the hierarchy-root class (no superclass), conventionally
    /// `java.lang.Object`.
    pub fn root_class<'a>(&'a mut self, name: &str) -> ClassBuilder<'a> {
        let mut cb = self.class(name);
        cb.is_root = true;
        cb.class.superclass = None;
        cb
    }

    /// Consumes the builder, returning the finished program.
    pub fn finish(self) -> Program {
        self.program
    }

    /// Read access to the program under construction.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builder for one class. Created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    class: Class,
    is_root: bool,
}

impl<'a> ClassBuilder<'a> {
    /// Sets the superclass (default `java.lang.Object`).
    pub fn extends(&mut self, name: &str) -> &mut Self {
        if !self.is_root {
            self.class.superclass = Some(self.pb.intern(name));
        }
        self
    }

    /// Adds an implemented interface.
    pub fn implements(&mut self, name: &str) -> &mut Self {
        let s = self.pb.intern(name);
        self.class.interfaces.push(s);
        self
    }

    /// Replaces the class flags.
    pub fn flags(&mut self, flags: ClassFlags) -> &mut Self {
        self.class.flags = flags;
        self
    }

    /// Adds a field.
    pub fn field(&mut self, name: &str, ty: Type, flags: FieldFlags) -> &mut Self {
        let name = self.pb.intern(name);
        self.class.fields.push(Field { name, ty, flags });
        self
    }

    /// Adds a body-less `native` method.
    pub fn native_method(
        &mut self,
        name: &str,
        flags: MethodFlags,
        params: Vec<Type>,
        ret: Type,
    ) -> &mut Self {
        let name = self.pb.intern(name);
        self.class.methods.push(Method {
            name,
            params,
            ret,
            flags: flags | MethodFlags::NATIVE,
            body: None,
        });
        self
    }

    /// Adds a body-less `abstract` method.
    pub fn abstract_method(
        &mut self,
        name: &str,
        flags: MethodFlags,
        params: Vec<Type>,
        ret: Type,
    ) -> &mut Self {
        let name = self.pb.intern(name);
        self.class.methods.push(Method {
            name,
            params,
            ret,
            flags: flags | MethodFlags::ABSTRACT,
            body: None,
        });
        self
    }

    /// Starts a method with a body. Instance methods receive an implicit
    /// `this` parameter typed as the enclosing class; pass
    /// [`MethodFlags::STATIC`] to omit it.
    pub fn method<'b>(
        &'b mut self,
        name: &str,
        flags: MethodFlags,
        ret: Type,
    ) -> MethodBuilder<'a, 'b> {
        let name_sym = self.pb.intern(name);
        let mut locals = Vec::new();
        if !flags.contains(MethodFlags::STATIC) {
            let this = self.pb.intern("this");
            locals.push(LocalDecl {
                name: this,
                ty: Type::Ref(self.class.name),
            });
        }
        MethodBuilder {
            cb: self,
            name: name_sym,
            flags,
            ret,
            params: Vec::new(),
            locals,
            stmts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Commits the class to the program.
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`] for duplicate names or invalid bodies.
    pub fn finish(self) -> Result<ClassId, ProgramError> {
        self.pb.program.add_class(self.class)
    }
}

/// A forward-referenceable branch label inside a [`MethodBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Builder for one method body. Created by [`ClassBuilder::method`].
///
/// Statements are appended in order; branch targets use [`Label`]s that may
/// be bound before or after the branches that reference them. Labels are
/// resolved to statement indices in [`MethodBuilder::finish`].
#[derive(Debug)]
pub struct MethodBuilder<'a, 'b> {
    cb: &'b mut ClassBuilder<'a>,
    name: Symbol,
    flags: MethodFlags,
    ret: Type,
    params: Vec<Type>,
    locals: Vec<LocalDecl>,
    stmts: Vec<Stmt>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl<'a, 'b> MethodBuilder<'a, 'b> {
    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.cb.pb.intern(s)
    }

    /// Shorthand for a class-reference type.
    pub fn ref_ty(&mut self, class: &str) -> Type {
        let s = self.intern(class);
        Type::Ref(s)
    }

    /// Declares a parameter. Must be called before any statement is emitted.
    ///
    /// # Panics
    ///
    /// Panics if statements have already been emitted or a non-parameter
    /// local was already declared.
    pub fn param(&mut self, name: &str, ty: Type) -> LocalId {
        assert!(
            self.stmts.is_empty(),
            "params must be declared before statements"
        );
        let implicit = usize::from(!self.flags.contains(MethodFlags::STATIC));
        assert_eq!(
            self.locals.len(),
            implicit + self.params.len(),
            "params must be declared before locals"
        );
        let name = self.intern(name);
        self.params.push(ty.clone());
        self.locals.push(LocalDecl { name, ty });
        LocalId((self.locals.len() - 1) as u32)
    }

    /// Declares a non-parameter local.
    pub fn local(&mut self, name: &str, ty: Type) -> LocalId {
        let name = self.intern(name);
        self.locals.push(LocalDecl { name, ty });
        LocalId((self.locals.len() - 1) as u32)
    }

    /// The implicit `this` local of an instance method.
    ///
    /// # Panics
    ///
    /// Panics for static methods.
    pub fn this(&self) -> LocalId {
        assert!(
            !self.flags.contains(MethodFlags::STATIC),
            "static methods have no `this`"
        );
        LocalId(0)
    }

    /// Creates an unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next statement to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.stmts.len());
    }

    /// Appends a raw statement. Prefer the typed helpers below.
    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// `dst = expr`.
    pub fn assign(&mut self, dst: LocalId, value: Expr) {
        self.push(Stmt::Assign { dst, value });
    }

    /// `dst = const`.
    pub fn assign_const(&mut self, dst: LocalId, c: Const) {
        self.assign(dst, Expr::Operand(Operand::Const(c)));
    }

    /// `dst = src`.
    pub fn copy(&mut self, dst: LocalId, src: LocalId) {
        self.assign(dst, Expr::Operand(Operand::Local(src)));
    }

    /// `dst = new Class` (allocation only; call the constructor with
    /// [`MethodBuilder::invoke_special`]).
    pub fn new_object(&mut self, dst: LocalId, class: &str) {
        let c = self.intern(class);
        self.assign(dst, Expr::New(c));
    }

    /// `dst = recv.field`.
    pub fn load_field(&mut self, dst: LocalId, recv: LocalId, class: &str, field: &str) {
        let fr = self.field_ref(class, field);
        self.assign(dst, Expr::FieldLoad(FieldTarget::Instance(recv, fr)));
    }

    /// `dst = Class.field` (static).
    pub fn load_static(&mut self, dst: LocalId, class: &str, field: &str) {
        let fr = self.field_ref(class, field);
        self.assign(dst, Expr::FieldLoad(FieldTarget::Static(fr)));
    }

    /// `recv.field = value`.
    pub fn store_field(
        &mut self,
        recv: LocalId,
        class: &str,
        field: &str,
        value: impl Into<Operand>,
    ) {
        let fr = self.field_ref(class, field);
        self.push(Stmt::FieldStore {
            target: FieldTarget::Instance(recv, fr),
            value: value.into(),
        });
    }

    /// `Class.field = value` (static).
    pub fn store_static(&mut self, class: &str, field: &str, value: impl Into<Operand>) {
        let fr = self.field_ref(class, field);
        self.push(Stmt::FieldStore {
            target: FieldTarget::Static(fr),
            value: value.into(),
        });
    }

    fn field_ref(&mut self, class: &str, field: &str) -> FieldRef {
        FieldRef {
            class: self.intern(class),
            name: self.intern(field),
        }
    }

    fn method_ref(&mut self, class: &str, name: &str, argc: usize) -> MethodRef {
        MethodRef {
            class: self.intern(class),
            name: self.intern(name),
            argc: argc as u32,
        }
    }

    /// Virtual call `dst = recv.Class::name(args)`.
    pub fn invoke_virtual(
        &mut self,
        dst: Option<LocalId>,
        recv: LocalId,
        class: &str,
        name: &str,
        args: Vec<Operand>,
    ) {
        let callee = self.method_ref(class, name, args.len());
        self.push(Stmt::Invoke {
            dst,
            call: Call {
                kind: InvokeKind::Virtual,
                receiver: Some(recv),
                callee,
                args,
            },
        });
    }

    /// Interface call.
    pub fn invoke_interface(
        &mut self,
        dst: Option<LocalId>,
        recv: LocalId,
        class: &str,
        name: &str,
        args: Vec<Operand>,
    ) {
        let callee = self.method_ref(class, name, args.len());
        self.push(Stmt::Invoke {
            dst,
            call: Call {
                kind: InvokeKind::Interface,
                receiver: Some(recv),
                callee,
                args,
            },
        });
    }

    /// Direct (constructor/private/super) call.
    pub fn invoke_special(
        &mut self,
        dst: Option<LocalId>,
        recv: LocalId,
        class: &str,
        name: &str,
        args: Vec<Operand>,
    ) {
        let callee = self.method_ref(class, name, args.len());
        self.push(Stmt::Invoke {
            dst,
            call: Call {
                kind: InvokeKind::Special,
                receiver: Some(recv),
                callee,
                args,
            },
        });
    }

    /// Static call `dst = Class::name(args)`.
    pub fn invoke_static(
        &mut self,
        dst: Option<LocalId>,
        class: &str,
        name: &str,
        args: Vec<Operand>,
    ) {
        let callee = self.method_ref(class, name, args.len());
        self.push(Stmt::Invoke {
            dst,
            call: Call {
                kind: InvokeKind::Static,
                receiver: None,
                callee,
                args,
            },
        });
    }

    /// `if cond goto label`.
    pub fn if_cond(&mut self, cond: Cond, label: Label) {
        self.fixups.push((self.stmts.len(), label));
        self.push(Stmt::If {
            cond,
            target: usize::MAX,
        });
    }

    /// `if op goto label` (branch when truthy).
    pub fn if_truthy(&mut self, op: impl Into<Operand>, label: Label) {
        self.if_cond(Cond::Truthy(op.into()), label);
    }

    /// `if !op goto label` (branch when falsy).
    pub fn if_falsy(&mut self, op: impl Into<Operand>, label: Label) {
        self.if_cond(Cond::Falsy(op.into()), label);
    }

    /// `if lhs <op> rhs goto label`.
    pub fn if_cmp(
        &mut self,
        lhs: impl Into<Operand>,
        op: CmpOp,
        rhs: impl Into<Operand>,
        label: Label,
    ) {
        self.if_cond(
            Cond::Cmp {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
            label,
        );
    }

    /// `goto label`.
    pub fn goto(&mut self, label: Label) {
        self.fixups.push((self.stmts.len(), label));
        self.push(Stmt::Goto { target: usize::MAX });
    }

    /// `return;`
    pub fn ret(&mut self) {
        self.push(Stmt::Return { value: None });
    }

    /// `return op;`
    pub fn ret_val(&mut self, op: impl Into<Operand>) {
        self.push(Stmt::Return {
            value: Some(op.into()),
        });
    }

    /// `throw op;`
    pub fn throw(&mut self, op: impl Into<Operand>) {
        self.push(Stmt::Throw { value: op.into() });
    }

    /// Emits a privileged region around the statements emitted by `f`
    /// (models `AccessController.doPrivileged`; checks inside are no-ops).
    pub fn privileged(&mut self, f: impl FnOnce(&mut Self)) {
        self.push(Stmt::EnterPriv);
        f(self);
        self.push(Stmt::ExitPriv);
    }

    /// Convenience: the idiomatic `SecurityManager` prologue plus a check
    /// call. Emits:
    ///
    /// ```text
    /// sm = static java.lang.System.getSecurityManager();
    /// if sm == null goto skip;
    /// virtual sm.<check>(args);
    /// skip: nop
    /// ```
    ///
    /// The null test is elided from policies by the analysis exactly as the
    /// paper elides it from its examples.
    pub fn security_check(&mut self, check: &str, args: Vec<Operand>) {
        let sm_ty = self.ref_ty("java.lang.SecurityManager");
        let sm = self.local(&format!("sm{}", self.locals.len()), sm_ty);
        self.invoke_static(Some(sm), "java.lang.System", "getSecurityManager", vec![]);
        let skip = self.fresh_label();
        self.if_cmp(sm, CmpOp::Eq, Const::Null, skip);
        self.invoke_virtual(None, sm, "java.lang.SecurityManager", check, args);
        self.bind(skip);
        self.push(Stmt::Nop);
    }

    /// Resolves labels and commits the method to the class.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound — that is a programming
    /// error in the caller, caught deterministically here rather than
    /// surfacing as a malformed body later.
    pub fn finish(mut self) {
        for (stmt_idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {:?} referenced but never bound", label));
            match &mut self.stmts[stmt_idx] {
                Stmt::If { target: t, .. } | Stmt::Goto { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        // A label may be bound to one-past-the-end (e.g. `skip` before an
        // implicit return); append a return so targets stay in range.
        let needs_pad = self
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::If { target, .. } | Stmt::Goto { target } if *target == self.stmts.len()));
        if needs_pad || self.stmts.last().is_none_or(|s| !s.is_terminator()) {
            self.stmts.push(Stmt::Return { value: None });
        }
        let body = Body {
            locals: self.locals,
            n_params: self.params.len() + usize::from(!self.flags.contains(MethodFlags::STATIC)),
            stmts: self.stmts,
        };
        self.cb.class.methods.push(Method {
            name: self.name,
            params: self.params,
            ret: self.ret,
            flags: self.flags,
            body: Some(body),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_program() {
        let mut pb = ProgramBuilder::new();
        {
            let mut cb = pb.root_class("java.lang.Object");
            let mb = cb.method("hashCode", MethodFlags::PUBLIC, Type::Int);
            let mut mb = mb;
            let x = mb.local("x", Type::Int);
            mb.assign_const(x, Const::Int(0));
            mb.ret_val(x);
            mb.finish();
            cb.finish().unwrap();
        }
        let p = pb.finish();
        let obj = p.class_by_str("java.lang.Object").unwrap();
        assert!(p.class(obj).superclass.is_none());
        let h = p.interner().get("hashCode").unwrap();
        let m = p.find_method(obj, h, 0).unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        assert_eq!(body.n_params, 1); // implicit this
        assert!(body.validate().is_ok());
    }

    #[test]
    fn labels_forward_and_backward() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", MethodFlags::PUBLIC | MethodFlags::STATIC, Type::Void);
        let x = mb.local("x", Type::Bool);
        mb.assign_const(x, Const::Bool(true));
        let end = mb.fresh_label();
        let top = mb.fresh_label();
        mb.bind(top);
        mb.if_falsy(x, end);
        mb.goto(top);
        mb.bind(end);
        mb.ret();
        mb.finish();
        cb.finish().unwrap();
        let p = pb.finish();
        let c = p.class_by_str("t.C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        assert!(body.validate().is_ok());
        // if at index 1 targets the return at index 3; goto at 2 targets 1.
        assert!(matches!(body.stmts[1], Stmt::If { target: 3, .. }));
        assert!(matches!(body.stmts[2], Stmt::Goto { target: 1 }));
    }

    #[test]
    fn implicit_return_appended() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mb = cb.method("m", MethodFlags::PUBLIC | MethodFlags::STATIC, Type::Void);
        mb.finish(); // no statements at all
        cb.finish().unwrap();
        let p = pb.finish();
        let c = p.class_by_str("t.C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        assert!(matches!(body.stmts[0], Stmt::Return { value: None }));
    }

    #[test]
    fn security_check_shape() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", MethodFlags::PUBLIC, Type::Void);
        mb.security_check("checkExit", vec![Operand::Const(Const::Int(1))]);
        mb.ret();
        mb.finish();
        cb.finish().unwrap();
        let p = pb.finish();
        let c = p.class_by_str("t.C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        assert!(body.validate().is_ok());
        // getSecurityManager, if-null, check, nop, return
        assert_eq!(body.stmts.len(), 5);
        assert!(matches!(&body.stmts[2], Stmt::Invoke { call, .. }
            if p.str(call.callee.name) == "checkExit"));
    }

    #[test]
    fn privileged_region() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", MethodFlags::PUBLIC | MethodFlags::STATIC, Type::Void);
        mb.privileged(|mb| {
            mb.security_check("checkRead", vec![]);
        });
        mb.ret();
        mb.finish();
        cb.finish().unwrap();
        let p = pb.finish();
        let c = p.class_by_str("t.C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::EnterPriv));
        assert!(body.stmts.iter().any(|s| matches!(s, Stmt::ExitPriv)));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", MethodFlags::STATIC, Type::Void);
        let l = mb.fresh_label();
        mb.goto(l);
        mb.finish();
    }

    #[test]
    fn params_then_locals() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("t.C");
        let mut mb = cb.method("m", MethodFlags::PUBLIC, Type::Void);
        let p0 = mb.param("a", Type::Int);
        let p1 = mb.param("b", Type::Bool);
        let l0 = mb.local("x", Type::Int);
        assert_eq!(p0, LocalId(1)); // this is 0
        assert_eq!(p1, LocalId(2));
        assert_eq!(l0, LocalId(3));
        assert_eq!(mb.this(), LocalId(0));
        mb.ret();
        mb.finish();
        cb.finish().unwrap();
    }
}
