//! Dominator trees over statement-level CFGs.
//!
//! Complete-mediation verification (the prior work the oracle is compared
//! against) is defined in terms of domination: a check mediates an event
//! when every path from entry to the event passes the check. This module
//! provides the classic Cooper–Harvey–Kennedy iterative dominator
//! algorithm over [`Cfg`]s, used by clients that want statement-level
//! mediation queries instead of the policy-set view.

use crate::body::Cfg;

/// Immediate-dominator table for one CFG, rooted at statement 0.
///
/// # Examples
///
/// ```
/// use spo_jir::{parse_program, Dominators};
///
/// let p = parse_program(
///     "class C { method public static void m(bool c) {
///        if c goto a;
///        nop;
///        goto b;
///      a:
///        nop;
///      b:
///        return;
///      } }",
/// )?;
/// let c = p.class_by_str("C").unwrap();
/// let body = p.class(c).methods[0].body.as_ref().unwrap();
/// let dom = Dominators::new(&body.cfg());
/// // The join point is dominated by the branch, not by either arm.
/// assert!(dom.dominates(0, 4));
/// assert!(!dom.dominates(1, 4));
/// # Ok::<(), spo_jir::ParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[i]` = immediate dominator of statement `i`; `usize::MAX` for
    /// unreachable statements; `0` is its own idom.
    idom: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `cfg` (entry = statement 0).
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let mut idom = vec![usize::MAX; n];
        if n == 0 {
            return Dominators { idom };
        }
        let rpo = cfg.reverse_post_order();
        let mut rank = vec![usize::MAX; n];
        for (r, &b) in rpo.iter().enumerate() {
            rank[b] = r;
        }
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom = usize::MAX;
                for &p in cfg.preds(b) {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        Self::intersect(&idom, &rank, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    fn intersect(idom: &[usize], rank: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rank[a] > rank[b] {
                a = idom[a];
            }
            while rank[b] > rank[a] {
                b = idom[b];
            }
        }
        a
    }

    /// The immediate dominator of statement `i` (`None` for the entry and
    /// for unreachable statements).
    pub fn idom(&self, i: usize) -> Option<usize> {
        match self.idom.get(i) {
            Some(&d) if d != usize::MAX && i != 0 => Some(d),
            _ => None,
        }
    }

    /// Returns `true` if statement `i` is reachable from the entry.
    pub fn is_reachable(&self, i: usize) -> bool {
        self.idom.get(i).is_some_and(|&d| d != usize::MAX)
    }

    /// Returns `true` if `a` dominates `b` (reflexive: every statement
    /// dominates itself). Unreachable statements dominate nothing and are
    /// dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == 0 {
                return false;
            }
            cur = self.idom[cur];
        }
    }

    /// All dominators of `i`, from `i` up to the entry.
    pub fn dominators_of(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if !self.is_reachable(i) {
            return out;
        }
        let mut cur = i;
        loop {
            out.push(cur);
            if cur == 0 {
                return out;
            }
            cur = self.idom[cur];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn dom_of(src: &str) -> (Dominators, usize) {
        let p = parse_program(src).unwrap();
        let c = p.class_by_str("C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        let cfg = body.cfg();
        (Dominators::new(&cfg), body.stmts.len())
    }

    #[test]
    fn straight_line_chain() {
        let (dom, n) = dom_of("class C { method public static void m() { nop; nop; return; } }");
        assert_eq!(n, 3);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert!(dom.dominates(0, 2));
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(2, 1));
        assert!(dom.dominates(2, 2));
    }

    #[test]
    fn diamond_join_dominated_by_branch_only() {
        // 0: if c goto 3 / 1: nop / 2: goto 4 / 3: nop / 4: return
        let (dom, _) = dom_of(
            "class C { method public static void m(bool c) {
               if c goto a;
               nop;
               goto b;
             a:
               nop;
             b:
               return;
             } }",
        );
        assert_eq!(dom.idom(4), Some(0));
        assert!(dom.dominates(0, 4));
        assert!(!dom.dominates(1, 4));
        assert!(!dom.dominates(3, 4));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0: nop (header target) / 1: if c goto 0 / 2: return
        let (dom, _) = dom_of(
            "class C { method public static void m(bool c) {
             top:
               nop;
               if c goto top;
               return;
             } }",
        );
        assert!(dom.dominates(0, 1));
        assert!(dom.dominates(0, 2));
        assert!(dom.dominates(1, 2));
    }

    #[test]
    fn unreachable_code_is_outside_the_tree() {
        let (dom, _) = dom_of(
            "class C { method public static void m() {
               return;
               nop;
             } }",
        );
        assert!(!dom.is_reachable(1));
        assert!(!dom.dominates(0, 1));
        assert!(!dom.dominates(1, 1));
        assert_eq!(dom.dominators_of(1), Vec::<usize>::new());
    }

    #[test]
    fn dominators_of_lists_chain() {
        let (dom, _) = dom_of("class C { method public static void m() { nop; nop; return; } }");
        assert_eq!(dom.dominators_of(2), vec![2, 1, 0]);
    }
}
