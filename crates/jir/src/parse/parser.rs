//! Recursive-descent parser for the `.jir` textual format.
//!
//! The grammar mirrors Jimple where practical. See the crate-level docs for
//! a walkthrough and `printer.rs` for the exact concrete syntax (the printer
//! and parser round-trip).

use super::lexer::{lex, LexError, Spanned, Tok};
use crate::body::{Body, LocalDecl};
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::program::{Class, Field, Method, Program, ProgramError};
use crate::stmt::{
    Call, CmpOp, Cond, Const, Expr, FieldRef, FieldTarget, InvokeKind, LocalId, MethodRef, Operand,
    Stmt,
};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses `.jir` source text into a fresh [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic problems and on semantic
/// ones caught at assembly time (duplicate classes/members, malformed
/// bodies), with the position of the offending construct where available.
///
/// # Examples
///
/// ```
/// let src = r#"
/// class demo.C {
///   method public static int answer() {
///     local int x;
///     x = 42;
///     return x;
///   }
/// }
/// "#;
/// let program = spo_jir::parse_program(src)?;
/// assert_eq!(program.class_count(), 1);
/// # Ok::<(), spo_jir::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    parse_into(src, &mut program)?;
    Ok(program)
}

/// Parses `.jir` source text, adding its classes to an existing program.
///
/// Used to layer a library implementation on top of a shared runtime
/// prelude.
///
/// # Errors
///
/// See [`parse_program`].
pub fn parse_into(src: &str, program: &mut Program) -> Result<(), ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        program,
    };
    while !p.at_eof() {
        let class = p.parse_class()?;
        let (line, col) = p.here();
        p.program
            .add_class(class)
            .map_err(|e: ProgramError| ParseError {
                message: e.to_string(),
                line,
                col,
            })?;
    }
    Ok(())
}

/// Like [`parse_into`], recording parse metrics into `rec`: a `jir.parse`
/// span plus `jir.parse.bytes`/`.classes`/`.methods`/`.stmts` counters
/// covering what this call added to `program`. Parsing is deterministic
/// and serial, so these land in the deterministic `counters` section.
///
/// # Errors
///
/// See [`parse_program`].
pub fn parse_into_traced(
    src: &str,
    program: &mut Program,
    rec: &spo_obs::Recorder,
) -> Result<(), ParseError> {
    let size = |p: &Program| (p.class_count(), p.all_methods().count(), p.stmt_count());
    let _span = rec.span("jir.parse");
    let (classes0, methods0, stmts0) = size(program);
    parse_into(src, program)?;
    let (classes1, methods1, stmts1) = size(program);
    rec.counter("jir.parse.bytes").add(src.len() as u64);
    rec.counter("jir.parse.classes")
        .add((classes1 - classes0) as u64);
    rec.counter("jir.parse.methods")
        .add((methods1 - methods0) as u64);
    rec.counter("jir.parse.stmts").add((stmts1 - stmts0) as u64);
    Ok(())
}

/// One recovered-from parse problem: what went wrong, where, and which
/// syntactic unit was dropped to move past it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseDiagnostic {
    /// Description of the problem.
    pub message: String,
    /// 1-based line of the offending construct.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The unit dropped to recover: `field`, `method`, `class`,
    /// `` class `N` ``, or `file`.
    pub dropped: String,
}

impl fmt::Display for ParseDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} (dropped {})",
            self.line, self.col, self.message, self.dropped
        )
    }
}

/// The outcome of a recovering parse: every problem encountered, in source
/// order. Empty means the input parsed cleanly.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Recovery {
    /// Recovered-from problems, in source order.
    pub diagnostics: Vec<ParseDiagnostic>,
}

impl Recovery {
    /// Returns `true` if the input parsed without dropping anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parses `.jir` source with error recovery, adding what parses to
/// `program` and collecting a [`ParseDiagnostic`] per problem instead of
/// bailing on the first error.
///
/// Recovery granularity: a malformed field or method body drops only that
/// member (resynchronizing on `;` / balanced braces); a malformed class
/// header, duplicate class, or unclosed class body drops that class
/// (resynchronizing on the next top-level `class`/`interface`); a lexical
/// error drops the whole file. Everything that does parse is added, so one
/// corrupt file in a library-scale corpus degrades — never aborts — the
/// load.
pub fn parse_into_recovering(src: &str, program: &mut Program) -> Recovery {
    let mut recovery = Recovery::default();
    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => {
            recovery.diagnostics.push(ParseDiagnostic {
                message: e.message,
                line: e.line,
                col: e.col,
                dropped: "file".to_owned(),
            });
            return recovery;
        }
    };
    let mut p = Parser {
        tokens,
        pos: 0,
        program,
    };
    while !p.at_eof() {
        let start = p.pos;
        match p.parse_class_with(Some(&mut recovery)) {
            Ok(class) => {
                let cname = p.program.str(class.name).to_owned();
                let (line, col) = p.here();
                if let Err(e) = p.program.add_class(class) {
                    recovery.diagnostics.push(ParseDiagnostic {
                        message: e.to_string(),
                        line,
                        col,
                        dropped: format!("class `{cname}`"),
                    });
                }
            }
            Err(e) => {
                recovery.diagnostics.push(ParseDiagnostic {
                    message: e.message,
                    line: e.line,
                    col: e.col,
                    dropped: "class".to_owned(),
                });
                p.recover_to_class(start);
            }
        }
    }
    recovery
}

/// Like [`parse_into_recovering`], recording the same parse metrics as
/// [`parse_into_traced`] plus a `jir.parse.recovered` counter and one
/// `diagnostics` record per dropped unit. Parsing is deterministic and
/// serial, so the counters land in the deterministic section.
pub fn parse_into_recovering_traced(
    src: &str,
    program: &mut Program,
    rec: &spo_obs::Recorder,
) -> Recovery {
    let size = |p: &Program| (p.class_count(), p.all_methods().count(), p.stmt_count());
    let _span = rec.span("jir.parse");
    let (classes0, methods0, stmts0) = size(program);
    let recovery = parse_into_recovering(src, program);
    let (classes1, methods1, stmts1) = size(program);
    rec.counter("jir.parse.bytes").add(src.len() as u64);
    rec.counter("jir.parse.classes")
        .add((classes1 - classes0) as u64);
    rec.counter("jir.parse.methods")
        .add((methods1 - methods0) as u64);
    rec.counter("jir.parse.stmts").add((stmts1 - stmts0) as u64);
    rec.counter("jir.parse.recovered")
        .add(recovery.diagnostics.len() as u64);
    for d in &recovery.diagnostics {
        rec.diagnostic(
            "error",
            "parse",
            &format!("{}:{}", d.line, d.col),
            "parse",
            &format!("{} (dropped {})", d.message, d.dropped),
        );
    }
    recovery
}

struct Parser<'p> {
    tokens: Vec<Spanned>,
    pos: usize,
    program: &'p mut Program,
}

struct LocalScope {
    by_name: HashMap<String, (LocalId, Type)>,
    decls: Vec<LocalDecl>,
}

impl LocalScope {
    fn new() -> Self {
        LocalScope {
            by_name: HashMap::new(),
            decls: Vec::new(),
        }
    }

    fn add(&mut self, name: &str, sym: crate::Symbol, ty: Type) -> Option<LocalId> {
        if self.by_name.contains_key(name) {
            return None;
        }
        let id = LocalId(self.decls.len() as u32);
        self.by_name.insert(name.to_owned(), (id, ty.clone()));
        self.decls.push(LocalDecl { name: sym, ty });
        Some(id)
    }

    fn get(&self, name: &str) -> Option<&(LocalId, Type)> {
        self.by_name.get(name)
    }
}

impl<'p> Parser<'p> {
    fn here(&self) -> (u32, u32) {
        let s = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (s.line, s.col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            message: msg.into(),
            line,
            col,
        })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// Dotted qualified name: `ident (. ident)*`.
    fn qname(&mut self) -> Result<String, ParseError> {
        let mut name = self.ident()?;
        while matches!(self.peek(), Tok::Dot) {
            self.bump();
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = match self.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "void" => {
                    self.bump();
                    Type::Void
                }
                "bool" | "boolean" => {
                    self.bump();
                    Type::Bool
                }
                "int" | "byte" | "short" | "char" => {
                    self.bump();
                    Type::Int
                }
                "long" => {
                    self.bump();
                    Type::Long
                }
                "float" => {
                    self.bump();
                    Type::Float
                }
                "double" => {
                    self.bump();
                    Type::Double
                }
                _ => {
                    let name = self.qname()?;
                    Type::Ref(self.program.intern(&name))
                }
            },
            other => return self.err(format!("expected type, found {other}")),
        };
        let mut ty = base;
        while matches!(self.peek(), Tok::LBracket) && matches!(self.peek2(), Tok::RBracket) {
            self.bump();
            self.bump();
            ty = Type::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_class(&mut self) -> Result<Class, ParseError> {
        self.parse_class_with(None)
    }

    /// Skips past a malformed class member, leaving the class's own closing
    /// `}` unconsumed. The member ends at a `;` at brace depth 0 (field or
    /// abstract method), or at the `}` that closes the member's first brace
    /// block (method body). Always consumes at least one token unless at
    /// end of input, so recovery makes progress on arbitrary garbage.
    fn skip_member(&mut self) {
        let mut depth = 0usize;
        let mut consumed = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                    consumed += 1;
                }
                Tok::RBrace => {
                    if depth == 0 {
                        // The class's closing brace; leave it for the
                        // member loop. `consumed` is always >= 1 here
                        // because the loop guard excludes `}` as a
                        // member's first token.
                        debug_assert!(consumed >= 1);
                        return;
                    }
                    depth -= 1;
                    self.bump();
                    consumed += 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                    consumed += 1;
                }
            }
        }
    }

    /// Resynchronizes after a failed class parse: rewinds to `start` and
    /// skips forward to the next top-level `class`/`interface` keyword
    /// (brace depth 0) or end of input, consuming at least one token.
    fn recover_to_class(&mut self, start: usize) {
        self.pos = start;
        let mut depth = 0usize;
        let mut first = true;
        loop {
            if self.at_eof() {
                return;
            }
            if !first && depth == 0 && (self.at_kw("class") || self.at_kw("interface")) {
                return;
            }
            match self.peek() {
                Tok::LBrace => depth += 1,
                Tok::RBrace => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.bump();
            first = false;
        }
    }

    /// Parses one class. With `recovery` set, a malformed member records a
    /// diagnostic and drops only that member (resynchronizing on `;` /
    /// balanced braces); header and class-assembly errors still propagate
    /// so the caller can drop the whole class.
    fn parse_class_with(
        &mut self,
        mut recovery: Option<&mut Recovery>,
    ) -> Result<Class, ParseError> {
        let is_interface = if self.at_kw("class") {
            self.bump();
            false
        } else if self.at_kw("interface") {
            self.bump();
            true
        } else {
            return self.err(format!(
                "expected `class` or `interface`, found {}",
                self.peek()
            ));
        };
        let mut flags = ClassFlags::PUBLIC;
        if is_interface {
            flags |= ClassFlags::INTERFACE | ClassFlags::ABSTRACT;
        }
        // Optional modifiers between keyword and name.
        loop {
            if self.at_kw("final") {
                self.bump();
                flags |= ClassFlags::FINAL;
            } else if self.at_kw("abstract") {
                self.bump();
                flags |= ClassFlags::ABSTRACT;
            } else {
                break;
            }
        }
        let name_str = self.qname()?;
        let name = self.program.intern(&name_str);
        let mut superclass = if is_interface || name_str == "java.lang.Object" {
            None
        } else {
            Some(self.program.intern("java.lang.Object"))
        };
        let mut interfaces = Vec::new();
        if self.at_kw("extends") {
            self.bump();
            if is_interface {
                loop {
                    let n = self.qname()?;
                    interfaces.push(self.program.intern(&n));
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else {
                let n = self.qname()?;
                superclass = Some(self.program.intern(&n));
            }
        }
        if self.at_kw("implements") {
            self.bump();
            loop {
                let n = self.qname()?;
                interfaces.push(self.program.intern(&n));
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            let member_start = self.pos;
            let outcome = if self.at_kw("field") {
                self.parse_field().map(|f| fields.push(f))
            } else if self.at_kw("method") {
                self.parse_method(name).map(|m| methods.push(m))
            } else {
                self.err(format!(
                    "expected `field` or `method`, found {}",
                    self.peek()
                ))
            };
            if let Err(e) = outcome {
                match recovery.as_deref_mut() {
                    Some(rec) => {
                        let dropped = match self.tokens[member_start].tok {
                            Tok::Ident(ref s) if s == "field" => "field",
                            Tok::Ident(ref s) if s == "method" => "method",
                            _ => "member",
                        };
                        rec.diagnostics.push(ParseDiagnostic {
                            message: e.message,
                            line: e.line,
                            col: e.col,
                            dropped: dropped.to_owned(),
                        });
                        self.pos = member_start;
                        self.skip_member();
                    }
                    None => return Err(e),
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(Class {
            name,
            superclass,
            interfaces,
            flags,
            fields,
            methods,
        })
    }

    #[allow(clippy::while_let_loop)] // the loop exits from two depths; while-let obscures that
    fn parse_field(&mut self) -> Result<Field, ParseError> {
        self.expect_kw("field")?;
        let mut flags = FieldFlags::empty();
        loop {
            match self.peek() {
                Tok::Ident(s) => match s.as_str() {
                    "public" => flags |= FieldFlags::PUBLIC,
                    "protected" => flags |= FieldFlags::PROTECTED,
                    "private" => flags |= FieldFlags::PRIVATE,
                    "static" => flags |= FieldFlags::STATIC,
                    "final" => flags |= FieldFlags::FINAL,
                    _ => break,
                },
                _ => break,
            }
            self.bump();
        }
        let ty = self.parse_type()?;
        let name = self.ident()?;
        let name = self.program.intern(&name);
        self.expect(&Tok::Semi)?;
        Ok(Field { name, ty, flags })
    }

    #[allow(clippy::while_let_loop)] // same shape as parse_field
    fn parse_method(&mut self, class_name: crate::Symbol) -> Result<Method, ParseError> {
        self.expect_kw("method")?;
        let mut flags = MethodFlags::empty();
        loop {
            match self.peek() {
                Tok::Ident(s) => match s.as_str() {
                    "public" => flags |= MethodFlags::PUBLIC,
                    "protected" => flags |= MethodFlags::PROTECTED,
                    "private" => flags |= MethodFlags::PRIVATE,
                    "static" => flags |= MethodFlags::STATIC,
                    "final" => flags |= MethodFlags::FINAL,
                    "native" => flags |= MethodFlags::NATIVE,
                    "abstract" => flags |= MethodFlags::ABSTRACT,
                    "synchronized" => flags |= MethodFlags::SYNCHRONIZED,
                    _ => break,
                },
                _ => break,
            }
            self.bump();
        }
        let ret = self.parse_type()?;
        let name = self.ident()?;
        let name = self.program.intern(&name);
        self.expect(&Tok::LParen)?;
        let mut scope = LocalScope::new();
        if !flags.contains(MethodFlags::STATIC) {
            let this = self.program.intern("this");
            scope.add("this", this, Type::Ref(class_name));
        }
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                let sym = self.program.intern(&pname);
                params.push(ty.clone());
                if scope.add(&pname, sym, ty).is_none() {
                    return self.err(format!("duplicate parameter `{pname}`"));
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let n_params = scope.decls.len();
        if matches!(self.peek(), Tok::Semi) {
            self.bump();
            if !flags.contains(MethodFlags::NATIVE) && !flags.contains(MethodFlags::ABSTRACT) {
                return self.err("body-less method must be `native` or `abstract`");
            }
            return Ok(Method {
                name,
                params,
                ret,
                flags,
                body: None,
            });
        }
        let body = self.parse_body(scope, n_params)?;
        Ok(Method {
            name,
            params,
            ret,
            flags,
            body: Some(body),
        })
    }

    fn parse_body(&mut self, mut scope: LocalScope, n_params: usize) -> Result<Body, ParseError> {
        self.expect(&Tok::LBrace)?;
        // Local declarations first.
        while self.at_kw("local") {
            self.bump();
            let ty = self.parse_type()?;
            loop {
                let lname = self.ident()?;
                let sym = self.program.intern(&lname);
                if scope.add(&lname, sym, ty.clone()).is_none() {
                    return self.err(format!("duplicate local `{lname}`"));
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Tok::Semi)?;
        }
        let mut st = StmtParser {
            stmts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        };
        while !matches!(self.peek(), Tok::RBrace) {
            self.parse_stmt(&scope, &mut st)?;
        }
        self.expect(&Tok::RBrace)?;
        // Resolve label fixups.
        for (idx, lname, line, col) in st.fixups {
            let Some(&target) = st.labels.get(&lname) else {
                return Err(ParseError {
                    message: format!("undefined label `{lname}`"),
                    line,
                    col,
                });
            };
            match &mut st.stmts[idx] {
                Stmt::If { target: t, .. } | Stmt::Goto { target: t } => *t = target,
                other => unreachable!("fixup on {other:?}"),
            }
        }
        // Pad for labels bound at end-of-body and for implicit void return.
        let end = st.stmts.len();
        let needs_pad = st.stmts.iter().any(
            |s| matches!(s, Stmt::If { target, .. } | Stmt::Goto { target } if *target == end),
        ) || st.stmts.last().is_none_or(|s| !s.is_terminator());
        if needs_pad {
            st.stmts.push(Stmt::Return { value: None });
        }
        Ok(Body {
            locals: scope.decls,
            n_params,
            stmts: st.stmts,
        })
    }

    fn parse_stmt(&mut self, scope: &LocalScope, st: &mut StmtParser) -> Result<(), ParseError> {
        // Label binding: IDENT ':'
        if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek2(), Tok::Colon) {
            let lname = self.ident()?;
            self.bump(); // colon
            if st.labels.insert(lname.clone(), st.stmts.len()).is_some() {
                return self.err(format!("label `{lname}` bound twice"));
            }
            return Ok(());
        }
        if self.at_kw("privileged") {
            self.bump();
            self.expect(&Tok::LBrace)?;
            st.stmts.push(Stmt::EnterPriv);
            while !matches!(self.peek(), Tok::RBrace) {
                self.parse_stmt(scope, st)?;
            }
            self.expect(&Tok::RBrace)?;
            st.stmts.push(Stmt::ExitPriv);
            return Ok(());
        }
        if self.at_kw("nop") {
            self.bump();
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::Nop);
            return Ok(());
        }
        if self.at_kw("enterpriv") {
            self.bump();
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::EnterPriv);
            return Ok(());
        }
        if self.at_kw("exitpriv") {
            self.bump();
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::ExitPriv);
            return Ok(());
        }
        if self.at_kw("goto") {
            self.bump();
            let lname = self.ident()?;
            let (line, col) = self.here();
            st.fixups.push((st.stmts.len(), lname, line, col));
            st.stmts.push(Stmt::Goto { target: usize::MAX });
            self.expect(&Tok::Semi)?;
            return Ok(());
        }
        if self.at_kw("return") {
            self.bump();
            let value = if matches!(self.peek(), Tok::Semi) {
                None
            } else {
                Some(self.parse_operand(scope)?)
            };
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::Return { value });
            return Ok(());
        }
        if self.at_kw("throw") {
            self.bump();
            let value = self.parse_operand(scope)?;
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::Throw { value });
            return Ok(());
        }
        if self.at_kw("if") {
            self.bump();
            let cond = self.parse_cond(scope)?;
            self.expect_kw("goto")?;
            let lname = self.ident()?;
            let (line, col) = self.here();
            st.fixups.push((st.stmts.len(), lname, line, col));
            st.stmts.push(Stmt::If {
                cond,
                target: usize::MAX,
            });
            self.expect(&Tok::Semi)?;
            return Ok(());
        }
        if self.at_invoke_kw() {
            let (dst, call) = (None, self.parse_invoke(scope)?);
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::Invoke { dst, call });
            return Ok(());
        }
        // Remaining forms start with an identifier chain:
        //   x = expr;              (x local)
        //   recv.f = op;           (recv local)
        //   pkg.Class.f = op;      (static store)
        //   x[i] = op;             (array store)
        let first = self.ident()?;
        if matches!(self.peek(), Tok::LBracket) {
            // array store
            let Some(&(array, _)) = scope.get(&first) else {
                return self.err(format!("unknown local `{first}`"));
            };
            self.bump();
            let index = self.parse_operand(scope)?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::Assign)?;
            let value = self.parse_operand(scope)?;
            self.expect(&Tok::Semi)?;
            st.stmts.push(Stmt::ArrayStore {
                array,
                index,
                value,
            });
            return Ok(());
        }
        if matches!(self.peek(), Tok::Assign) {
            // simple assignment to local
            let Some(&(dst, _)) = scope.get(&first) else {
                return self.err(format!("unknown local `{first}`"));
            };
            self.bump();
            let value = self.parse_expr(scope)?;
            self.expect(&Tok::Semi)?;
            match value {
                ParsedExpr::Plain(e) => st.stmts.push(Stmt::Assign { dst, value: e }),
                ParsedExpr::Invoke(call) => st.stmts.push(Stmt::Invoke {
                    dst: Some(dst),
                    call,
                }),
            }
            return Ok(());
        }
        if matches!(self.peek(), Tok::Dot) {
            // field store (instance or static)
            let mut segs = vec![first];
            while matches!(self.peek(), Tok::Dot) {
                self.bump();
                segs.push(self.ident()?);
            }
            self.expect(&Tok::Assign)?;
            let value = self.parse_operand(scope)?;
            self.expect(&Tok::Semi)?;
            let target = self.field_target(scope, &segs)?;
            st.stmts.push(Stmt::FieldStore { target, value });
            return Ok(());
        }
        self.err(format!("unexpected token {} in statement", self.peek()))
    }

    /// Builds a [`FieldTarget`] from a dotted segment chain.
    fn field_target(
        &mut self,
        scope: &LocalScope,
        segs: &[String],
    ) -> Result<FieldTarget, ParseError> {
        if segs.len() == 2 {
            if let Some((recv, ty)) = scope.get(&segs[0]) {
                let Some(class) = ty.class_name() else {
                    return self.err(format!(
                        "field access on local `{}` of non-class type",
                        segs[0]
                    ));
                };
                let name = self.program.intern(&segs[1]);
                return Ok(FieldTarget::Instance(*recv, FieldRef { class, name }));
            }
        }
        if segs.len() >= 2 && scope.get(&segs[0]).is_none() {
            let class_str = segs[..segs.len() - 1].join(".");
            let class = self.program.intern(&class_str);
            let name = self.program.intern(&segs[segs.len() - 1]);
            return Ok(FieldTarget::Static(FieldRef { class, name }));
        }
        self.err(format!("cannot resolve field access `{}`", segs.join(".")))
    }

    fn at_invoke_kw(&self) -> bool {
        self.at_kw("virtualinvoke")
            || self.at_kw("specialinvoke")
            || self.at_kw("staticinvoke")
            || self.at_kw("interfaceinvoke")
    }

    fn parse_invoke(&mut self, scope: &LocalScope) -> Result<Call, ParseError> {
        let kind = match self.ident()?.as_str() {
            "virtualinvoke" => InvokeKind::Virtual,
            "specialinvoke" => InvokeKind::Special,
            "staticinvoke" => InvokeKind::Static,
            "interfaceinvoke" => InvokeKind::Interface,
            other => return self.err(format!("unknown invoke kind `{other}`")),
        };
        if kind == InvokeKind::Static {
            // staticinvoke pkg.Class.name(args)
            let qn = self.qname()?;
            let Some(dot) = qn.rfind('.') else {
                return self.err("static invoke needs `Class.method`");
            };
            let class = self.program.intern(&qn[..dot]);
            let name = self.program.intern(&qn[dot + 1..]);
            let args = self.parse_args(scope)?;
            return Ok(Call {
                kind,
                receiver: None,
                callee: MethodRef {
                    class,
                    name,
                    argc: args.len() as u32,
                },
                args,
            });
        }
        // recv.name(args); callee class = receiver's declared type.
        let recv_name = self.ident()?;
        let Some((recv, ty)) = scope.get(&recv_name).map(|(l, t)| (*l, t.clone())) else {
            return self.err(format!("unknown receiver local `{recv_name}`"));
        };
        let Some(class) = ty.class_name() else {
            return self.err(format!("receiver `{recv_name}` has non-class type"));
        };
        self.expect(&Tok::Dot)?;
        let mname = self.ident()?;
        let name = self.program.intern(&mname);
        let args = self.parse_args(scope)?;
        Ok(Call {
            kind,
            receiver: Some(recv),
            callee: MethodRef {
                class,
                name,
                argc: args.len() as u32,
            },
            args,
        })
    }

    fn parse_args(&mut self, scope: &LocalScope) -> Result<Vec<Operand>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                args.push(self.parse_operand(scope)?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn parse_operand(&mut self, scope: &LocalScope) -> Result<Operand, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Operand::Const(Const::Int(v)))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(v) => {
                        self.bump();
                        Ok(Operand::Const(Const::Int(-v)))
                    }
                    other => self.err(format!("expected integer after `-`, found {other}")),
                }
            }
            Tok::Str(s) => {
                self.bump();
                let sym = self.program.intern(&s);
                Ok(Operand::Const(Const::Str(sym)))
            }
            Tok::Ident(s) => match s.as_str() {
                "null" => {
                    self.bump();
                    Ok(Operand::Const(Const::Null))
                }
                "true" => {
                    self.bump();
                    Ok(Operand::Const(Const::Bool(true)))
                }
                "false" => {
                    self.bump();
                    Ok(Operand::Const(Const::Bool(false)))
                }
                _ => {
                    // Could be a local or a class literal `pkg.Class.class`.
                    // A local followed by a dot is still consumed as the
                    // local; the caller errors on the stray dot.
                    if let Some(&(id, _)) = scope.get(&s) {
                        self.bump();
                        return Ok(Operand::Local(id));
                    }
                    let qn = self.qname()?;
                    if let Some(stripped) = qn.strip_suffix(".class") {
                        let sym = self.program.intern(stripped);
                        Ok(Operand::Const(Const::Class(sym)))
                    } else {
                        self.err(format!("unknown operand `{qn}`"))
                    }
                }
            },
            other => self.err(format!("expected operand, found {other}")),
        }
    }

    fn parse_cond(&mut self, scope: &LocalScope) -> Result<Cond, ParseError> {
        if matches!(self.peek(), Tok::Bang) {
            self.bump();
            let op = self.parse_operand(scope)?;
            return Ok(Cond::Falsy(op));
        }
        let lhs = self.parse_operand(scope)?;
        let cmp = match self.peek() {
            Tok::EqEq => Some(CmpOp::Eq),
            Tok::NotEq => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        match cmp {
            Some(op) => {
                self.bump();
                let rhs = self.parse_operand(scope)?;
                Ok(Cond::Cmp { op, lhs, rhs })
            }
            None => Ok(Cond::Truthy(lhs)),
        }
    }

    fn parse_expr(&mut self, scope: &LocalScope) -> Result<ParsedExpr, ParseError> {
        if self.at_invoke_kw() {
            return Ok(ParsedExpr::Invoke(self.parse_invoke(scope)?));
        }
        if self.at_kw("new") {
            self.bump();
            let qn = self.qname()?;
            let sym = self.program.intern(&qn);
            return Ok(ParsedExpr::Plain(Expr::New(sym)));
        }
        if self.at_kw("newarray") {
            self.bump();
            let elem = self.parse_type()?;
            self.expect(&Tok::LBracket)?;
            let len = self.parse_operand(scope)?;
            self.expect(&Tok::RBracket)?;
            return Ok(ParsedExpr::Plain(Expr::NewArray { elem, len }));
        }
        if matches!(self.peek(), Tok::LParen) {
            // cast: (type) operand
            self.bump();
            let ty = self.parse_type()?;
            self.expect(&Tok::RParen)?;
            let operand = self.parse_operand(scope)?;
            return Ok(ParsedExpr::Plain(Expr::Cast { ty, operand }));
        }
        if matches!(self.peek(), Tok::Bang) {
            self.bump();
            let operand = self.parse_operand(scope)?;
            return Ok(ParsedExpr::Plain(Expr::Unary {
                op: crate::UnOp::Not,
                operand,
            }));
        }
        if matches!(self.peek(), Tok::Minus) && matches!(self.peek2(), Tok::Ident(_)) {
            self.bump();
            let operand = self.parse_operand(scope)?;
            return Ok(ParsedExpr::Plain(Expr::Unary {
                op: crate::UnOp::Neg,
                operand,
            }));
        }
        // Identifier chains: field load / array load / plain operand ± binop.
        if let Tok::Ident(first) = self.peek().clone() {
            let is_local = scope.get(&first).is_some();
            let next_is_dot = matches!(self.peek2(), Tok::Dot);
            let keyword_const = matches!(first.as_str(), "null" | "true" | "false");
            if !keyword_const && next_is_dot && (is_local || scope.get(&first).is_none()) {
                // Dotted chain: instance or static field load, or class literal.
                let mut segs = vec![self.ident()?];
                while matches!(self.peek(), Tok::Dot) {
                    self.bump();
                    segs.push(self.ident()?);
                }
                if segs.last().map(String::as_str) == Some("class") {
                    let cls = segs[..segs.len() - 1].join(".");
                    let sym = self.program.intern(&cls);
                    return self
                        .finish_binary(scope, Expr::Operand(Operand::Const(Const::Class(sym))));
                }
                let target = self.field_target(scope, &segs)?;
                return Ok(ParsedExpr::Plain(Expr::FieldLoad(target)));
            }
            if matches!(self.peek2(), Tok::LBracket) {
                if let Some(&(array, _)) = scope.get(&first) {
                    self.bump(); // ident
                    self.bump(); // [
                    let index = self.parse_operand(scope)?;
                    self.expect(&Tok::RBracket)?;
                    return Ok(ParsedExpr::Plain(Expr::ArrayLoad { array, index }));
                }
            }
        }
        let lhs = self.parse_operand(scope)?;
        if self.at_kw("instanceof") {
            self.bump();
            let ty = self.parse_type()?;
            return Ok(ParsedExpr::Plain(Expr::InstanceOf { ty, operand: lhs }));
        }
        self.finish_binary(scope, Expr::Operand(lhs))
    }

    /// After a leading operand expression, parse an optional binary operator
    /// and right operand.
    fn finish_binary(
        &mut self,
        scope: &LocalScope,
        lhs_expr: Expr,
    ) -> Result<ParsedExpr, ParseError> {
        let op = match self.peek() {
            Tok::Plus => Some(crate::BinOp::Add),
            Tok::Minus => Some(crate::BinOp::Sub),
            Tok::Star => Some(crate::BinOp::Mul),
            Tok::Slash => Some(crate::BinOp::Div),
            Tok::Percent => Some(crate::BinOp::Rem),
            Tok::Amp => Some(crate::BinOp::And),
            Tok::Pipe => Some(crate::BinOp::Or),
            Tok::Caret => Some(crate::BinOp::Xor),
            _ => None,
        };
        let Some(op) = op else {
            return Ok(ParsedExpr::Plain(lhs_expr));
        };
        let Expr::Operand(lhs) = lhs_expr else {
            return self.err("binary operators require simple operands (three-address form)");
        };
        self.bump();
        let rhs = self.parse_operand(scope)?;
        Ok(ParsedExpr::Plain(Expr::Binary { op, lhs, rhs }))
    }
}

enum ParsedExpr {
    Plain(Expr),
    Invoke(Call),
}

struct StmtParser {
    stmts: Vec<Stmt>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, u32, u32)>,
}
