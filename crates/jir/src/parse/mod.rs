//! The `.jir` textual frontend: lexer and parser.

mod lexer;
mod parser;

pub use lexer::{lex, LexError, Spanned, Tok};
pub use parser::{
    parse_into, parse_into_recovering, parse_into_recovering_traced, parse_into_traced,
    parse_program, ParseDiagnostic, ParseError, Recovery,
};
