//! Lexer for the `.jir` textual format.

use std::fmt;

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Percent => f.write_str("`%`"),
            Tok::Amp => f.write_str("`&`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Caret => f.write_str("`^`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus its source position.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexical error with position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a `.jir` source string.
///
/// Supports `//` line comments and `/* ... */` block comments. The output
/// always ends with a [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings/comments, malformed escape
/// sequences, integer overflow, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! err {
        ($l:expr, $c:expr, $($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line: $l, col: $c })
        };
    }
    while i < bytes.len() {
        let (tl, tc) = (line, col);
        let b = bytes[i];
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32| {
            if bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => advance(&mut i, &mut line, &mut col),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance(&mut i, &mut line, &mut col);
                        advance(&mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    advance(&mut i, &mut line, &mut col);
                }
                if !closed {
                    err!(tl, tc, "unterminated block comment");
                }
            }
            b'"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'"' => {
                            advance(&mut i, &mut line, &mut col);
                            closed = true;
                            break;
                        }
                        b'\\' => {
                            advance(&mut i, &mut line, &mut col);
                            if i >= bytes.len() {
                                break;
                            }
                            match bytes[i] {
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'\\' => s.push('\\'),
                                b'"' => s.push('"'),
                                other => err!(line, col, "bad escape `\\{}`", other as char),
                            }
                            advance(&mut i, &mut line, &mut col);
                        }
                        b'\n' => err!(tl, tc, "unterminated string literal"),
                        _ => {
                            // Copy a full UTF-8 scalar.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).map_err(
                                |_| LexError {
                                    message: "invalid UTF-8 in string".into(),
                                    line,
                                    col,
                                },
                            )?);
                            for _ in 0..ch_len {
                                advance(&mut i, &mut line, &mut col);
                            }
                        }
                    }
                }
                if !closed {
                    err!(tl, tc, "unterminated string literal");
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col);
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer `{text}` out of range"),
                    line: tl,
                    col: tc,
                })?;
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line: tl,
                    col: tc,
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    advance(&mut i, &mut line, &mut col);
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_owned()),
                    line: tl,
                    col: tc,
                });
            }
            _ => {
                let two = |a: u8, b2: u8| i + 1 < bytes.len() && a == b && bytes[i + 1] == b2;
                let (tok, len) = if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::NotEq, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else {
                    let t = match b {
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b':' => Tok::Colon,
                        b',' => Tok::Comma,
                        b'.' => Tok::Dot,
                        b'=' => Tok::Assign,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'!' => Tok::Bang,
                        other => err!(tl, tc, "unexpected character `{}`", other as char),
                    };
                    (t, 1)
                };
                for _ in 0..len {
                    advance(&mut i, &mut line, &mut col);
                }
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("class Foo { }"),
            vec![
                Tok::Ident("class".into()),
                Tok::Ident("Foo".into()),
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != <= >= < > = ! + - * / % & | ^"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Bang,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\n spanning */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\nb\"c\\""#),
            vec![Tok::Str("a\nb\"c\\".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers_and_idents_with_dollar() {
        assert_eq!(
            toks("x1 $tmp 42"),
            vec![
                Tok::Ident("x1".into()),
                Tok::Ident("$tmp".into()),
                Tok::Int(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn bad_escape_errors() {
        assert!(lex(r#""\q""#).is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("#").is_err());
    }

    #[test]
    fn huge_integer_errors() {
        assert!(lex("999999999999999999999999999").is_err());
    }
}
