//! Method bodies and control-flow graphs.

use crate::intern::Symbol;
use crate::stmt::{LocalId, Stmt};
use crate::types::Type;

/// Declaration of a local variable (or parameter) in a [`Body`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LocalDecl {
    /// Interned variable name.
    pub name: Symbol,
    /// Declared static type.
    pub ty: Type,
}

/// The body of a non-abstract, non-native method: a flat vector of
/// three-address statements with index-based branch targets.
///
/// Locals are laid out parameters-first; for instance methods local 0 is the
/// implicit `this`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Body {
    /// All locals; the first [`Body::n_params`] entries are parameters.
    pub locals: Vec<LocalDecl>,
    /// Number of parameter locals (including `this` for instance methods).
    pub n_params: usize,
    /// The statements. Branch targets index into this vector.
    pub stmts: Vec<Stmt>,
}

impl Body {
    /// Iterates over the parameter locals.
    pub fn params(&self) -> &[LocalDecl] {
        &self.locals[..self.n_params]
    }

    /// Looks up a local's declaration.
    pub fn local(&self, id: LocalId) -> &LocalDecl {
        &self.locals[id.index()]
    }

    /// Validates structural invariants: branch targets in range, locals in
    /// range. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.stmts.len();
        if n == 0 {
            return Err("empty body: a body must end with a terminator".to_owned());
        }
        if !self.stmts[n - 1].is_terminator() {
            return Err(format!(
                "body falls off the end: last statement {:?} is not a terminator",
                self.stmts[n - 1]
            ));
        }
        if self.n_params > self.locals.len() {
            return Err(format!(
                "n_params {} exceeds locals {}",
                self.n_params,
                self.locals.len()
            ));
        }
        for (i, s) in self.stmts.iter().enumerate() {
            let check_target = |t: usize| {
                if t >= n {
                    Err(format!(
                        "stmt {i}: branch target {t} out of range ({n} stmts)"
                    ))
                } else {
                    Ok(())
                }
            };
            match s {
                Stmt::If { target, .. } | Stmt::Goto { target } => check_target(*target)?,
                _ => {}
            }
            for l in s.read_locals().into_iter().chain(s.def_local()) {
                if l.index() >= self.locals.len() {
                    return Err(format!("stmt {i}: local {:?} out of range", l));
                }
            }
        }
        Ok(())
    }

    /// Builds the control-flow graph for this body.
    pub fn cfg(&self) -> Cfg {
        Cfg::new(self)
    }

    /// Builds the control-flow graph, recording construction metrics into
    /// `rec`: the `jir.cfg` duration span plus `jir.cfg.built` /
    /// `jir.cfg.edges` work counters (raw builds — an analysis may build
    /// the same body's CFG more than once, so these are scheduling-
    /// dependent work, not deterministic program size).
    pub fn cfg_traced(&self, rec: &spo_obs::Recorder) -> Cfg {
        if !rec.is_enabled() {
            return Cfg::new(self);
        }
        let _span = rec.span("jir.cfg");
        let cfg = Cfg::new(self);
        rec.work_counter("jir.cfg.built").incr();
        rec.work_counter("jir.cfg.edges")
            .add(cfg.edge_count() as u64);
        cfg
    }
}

/// Per-statement successor/predecessor control-flow graph.
///
/// The entry node is statement 0. `Return` and `Throw` have no successors.
///
/// # Examples
///
/// ```
/// use spo_jir::{Body, LocalDecl, Stmt, Cfg};
///
/// let body = Body {
///     locals: vec![],
///     n_params: 0,
///     stmts: vec![Stmt::Nop, Stmt::Return { value: None }],
/// };
/// let cfg = body.cfg();
/// assert_eq!(cfg.succs(0), &[1]);
/// assert_eq!(cfg.preds(1), &[0]);
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Computes the CFG of `body`.
    pub fn new(body: &Body) -> Self {
        let n = body.stmts.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, s) in body.stmts.iter().enumerate() {
            let mut out: Vec<usize> = Vec::with_capacity(2);
            match s {
                Stmt::Goto { target } => out.push(*target),
                Stmt::Return { .. } | Stmt::Throw { .. } => {}
                Stmt::If { target, .. } => {
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                    if !out.contains(target) {
                        out.push(*target);
                    }
                }
                _ => {
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                }
            }
            for &t in &out {
                preds[t].push(i);
            }
            succs[i] = out;
        }
        Cfg { succs, preds }
    }

    /// Successor statement indices of statement `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Predecessor statement indices of statement `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` for an empty body.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Total number of control-flow edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Statement indices in reverse post-order from the entry — the optimal
    /// iteration order for forward dataflow (the paper's SPDA converges in
    /// two passes over structured control flow).
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.succs[node].len() {
                let s = self.succs[node][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Statements unreachable from the entry.
    pub fn unreachable(&self) -> Vec<usize> {
        let mut reach = vec![false; self.len()];
        for i in self.reverse_post_order() {
            reach[i] = true;
        }
        reach
            .iter()
            .enumerate()
            .filter(|(_, r)| !**r)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{Cond, Const, Operand};

    fn body(stmts: Vec<Stmt>) -> Body {
        Body {
            locals: vec![],
            n_params: 0,
            stmts,
        }
    }

    #[test]
    fn straight_line_cfg() {
        let b = body(vec![Stmt::Nop, Stmt::Nop, Stmt::Return { value: None }]);
        let cfg = b.cfg();
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(2), &[1]);
    }

    #[test]
    fn diamond_cfg_and_rpo() {
        // 0: if true goto 3
        // 1: nop
        // 2: goto 4
        // 3: nop
        // 4: return
        let b = body(vec![
            Stmt::If {
                cond: Cond::Truthy(Operand::Const(Const::Bool(true))),
                target: 3,
            },
            Stmt::Nop,
            Stmt::Goto { target: 4 },
            Stmt::Nop,
            Stmt::Return { value: None },
        ]);
        let cfg = b.cfg();
        assert_eq!(cfg.succs(0), &[1, 3]);
        assert_eq!(cfg.preds(4), &[2, 3]);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        // Join node 4 comes after both arms.
        let pos = |i: usize| rpo.iter().position(|&x| x == i).unwrap();
        assert!(pos(4) > pos(1));
        assert!(pos(4) > pos(3));
        assert!(cfg.unreachable().is_empty());
    }

    #[test]
    fn unreachable_after_return() {
        let b = body(vec![Stmt::Return { value: None }, Stmt::Nop]);
        let cfg = b.cfg();
        assert_eq!(cfg.unreachable(), vec![1]);
    }

    #[test]
    fn self_loop() {
        let b = body(vec![Stmt::Goto { target: 0 }]);
        let cfg = b.cfg();
        assert_eq!(cfg.succs(0), &[0]);
        assert_eq!(cfg.preds(0), &[0]);
        assert_eq!(cfg.reverse_post_order(), vec![0]);
    }

    #[test]
    fn if_to_next_statement_no_duplicate_edge() {
        let b = body(vec![
            Stmt::If {
                cond: Cond::Truthy(Operand::Const(Const::Bool(true))),
                target: 1,
            },
            Stmt::Return { value: None },
        ]);
        let cfg = b.cfg();
        assert_eq!(cfg.succs(0), &[1]);
    }

    #[test]
    fn validate_rejects_bad_target() {
        let b = body(vec![Stmt::Goto { target: 9 }]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_local() {
        let b = body(vec![Stmt::Return {
            value: Some(Operand::Local(LocalId(5))),
        }]);
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_ok() {
        let b = body(vec![Stmt::Return { value: None }]);
        assert!(b.validate().is_ok());
    }
}
