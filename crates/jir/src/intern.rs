//! String interning.
//!
//! Every identifier in a [`Program`](crate::Program) — class names, method
//! names, field names, local names, string literals — is interned into a
//! compact [`Symbol`] so that the analysis layers can compare and hash names
//! in O(1) and store them in dense tables.

use std::collections::HashMap;
use std::fmt;

/// An interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] (and therefore
/// the [`Program`](crate::Program)) that produced them. Comparing symbols
/// from different interners is a logic error, though not memory-unsafe.
///
/// # Examples
///
/// ```
/// use spo_jir::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("java.lang.Object");
/// let b = interner.intern("java.lang.Object");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "java.lang.Object");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the dense index of this symbol, suitable for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A deduplicating string table mapping strings to [`Symbol`]s and back.
///
/// Interning the same string twice returns the same symbol. Resolution is
/// O(1). The interner never forgets a string.
#[derive(Clone, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Returns the symbol for `s` if it has been interned before.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.strings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(b), "bar");
    }

    #[test]
    fn get_without_interning() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn empty_string_interns() {
        let mut i = Interner::new();
        let s = i.intern("");
        assert_eq!(i.resolve(s), "");
    }
}
