//! Statements, expressions, and operands of the three-address JIR.

use crate::intern::Symbol;
use crate::types::Type;

/// Index of a local variable within a [`Body`](crate::Body).
///
/// Parameters occupy the first indices; for instance methods, local 0 is the
/// implicit `this`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalId(pub u32);

impl LocalId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to a method by declaring-class name, method name, and arity.
///
/// JIR resolves overloads by `(name, arity)`; declaring two methods with the
/// same name and arity in one class is rejected at program-construction time.
/// `argc` excludes the receiver.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MethodRef {
    /// Interned fully-qualified name of the statically named class.
    pub class: Symbol,
    /// Interned method name.
    pub name: Symbol,
    /// Number of explicit arguments (receiver excluded).
    pub argc: u32,
}

/// A reference to a field by declaring-class name and field name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FieldRef {
    /// Interned fully-qualified name of the statically named class.
    pub class: Symbol,
    /// Interned field name.
    pub name: Symbol,
}

/// A compile-time constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Const {
    /// Integer constant (models all Java integral types).
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Interned string literal.
    Str(Symbol),
    /// The `null` reference.
    Null,
    /// A class literal, `C.class`.
    Class(Symbol),
}

/// An operand: either a local variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Read of a local.
    Local(LocalId),
    /// A constant value.
    Const(Const),
}

impl Operand {
    /// The local read by this operand, if any.
    pub fn as_local(self) -> Option<LocalId> {
        match self {
            Operand::Local(l) => Some(l),
            Operand::Const(_) => None,
        }
    }
}

impl From<LocalId> for Operand {
    fn from(l: LocalId) -> Self {
        Operand::Local(l)
    }
}

impl From<Const> for Operand {
    fn from(c: Const) -> Self {
        Operand::Const(c)
    }
}

/// Binary arithmetic/logical operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Comparison operators used in conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two integers.
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// The condition of an `if` statement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Branch if the operand is true / non-zero / non-null.
    Truthy(Operand),
    /// Branch if the operand is false / zero / null.
    Falsy(Operand),
    /// Branch if the comparison holds.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
}

/// How a call site dispatches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvokeKind {
    /// Virtual dispatch on the receiver's dynamic type.
    Virtual,
    /// Direct dispatch (constructors, private and super calls).
    Special,
    /// Static method call; no receiver.
    Static,
    /// Interface dispatch.
    Interface,
}

/// A call site.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Call {
    /// Dispatch kind.
    pub kind: InvokeKind,
    /// Receiver local for instance calls; `None` for static calls.
    pub receiver: Option<LocalId>,
    /// Statically named callee.
    pub callee: MethodRef,
    /// Explicit arguments.
    pub args: Vec<Operand>,
}

/// A field access target: instance or static.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldTarget {
    /// Instance field on the given receiver local.
    Instance(LocalId, FieldRef),
    /// Static field.
    Static(FieldRef),
}

impl FieldTarget {
    /// The referenced field, regardless of instance/static.
    pub fn field(&self) -> FieldRef {
        match *self {
            FieldTarget::Instance(_, f) | FieldTarget::Static(f) => f,
        }
    }
}

/// A right-hand-side expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Copy of an operand.
    Operand(Operand),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Operand,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Field read.
    FieldLoad(FieldTarget),
    /// Object allocation `new C` (constructor invoked separately via
    /// [`InvokeKind::Special`], as in Jimple).
    New(Symbol),
    /// Array allocation.
    NewArray {
        /// Element type.
        elem: Type,
        /// Length operand.
        len: Operand,
    },
    /// Array element read.
    ArrayLoad {
        /// Array local.
        array: LocalId,
        /// Index operand.
        index: Operand,
    },
    /// Checked cast.
    Cast {
        /// Target type.
        ty: Type,
        /// Value being cast.
        operand: Operand,
    },
    /// `instanceof` test producing a boolean.
    InstanceOf {
        /// Tested type.
        ty: Type,
        /// Value being tested.
        operand: Operand,
    },
}

/// A three-address statement. Branch targets are indices into the enclosing
/// body's statement vector.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `dst = expr`.
    Assign {
        /// Destination local.
        dst: LocalId,
        /// Right-hand side.
        value: Expr,
    },
    /// Field write `target = value`.
    FieldStore {
        /// Written field (instance or static).
        target: FieldTarget,
        /// Stored value.
        value: Operand,
    },
    /// Array element write `array[index] = value`.
    ArrayStore {
        /// Array local.
        array: LocalId,
        /// Index operand.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// Method invocation, optionally capturing the return value.
    Invoke {
        /// Destination local for the return value, if captured.
        dst: Option<LocalId>,
        /// The call.
        call: Call,
    },
    /// Conditional branch to `target` when `cond` holds; falls through
    /// otherwise.
    If {
        /// Branch condition.
        cond: Cond,
        /// Statement index of the branch target.
        target: usize,
    },
    /// Unconditional branch.
    Goto {
        /// Statement index of the target.
        target: usize,
    },
    /// Method return.
    Return {
        /// Returned operand for non-`void` methods.
        value: Option<Operand>,
    },
    /// Exception throw; terminates the path (JIR has no catch edges, matching
    /// the paper's analysis which tracks normal control flow).
    Throw {
        /// Thrown operand.
        value: Operand,
    },
    /// Start of a privileged region (`AccessController.doPrivileged`).
    /// Security checks performed inside always succeed and are semantic
    /// no-ops for policy purposes.
    EnterPriv,
    /// End of a privileged region.
    ExitPriv,
    /// No operation (used as a label anchor).
    Nop,
}

impl Stmt {
    /// Returns `true` if control cannot fall through to the next statement.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Stmt::Goto { .. } | Stmt::Return { .. } | Stmt::Throw { .. }
        )
    }

    /// The call, if this statement is an invocation.
    pub fn as_call(&self) -> Option<&Call> {
        match self {
            Stmt::Invoke { call, .. } => Some(call),
            _ => None,
        }
    }

    /// All operands read by this statement (not including array/receiver
    /// locals, which are exposed separately by [`Stmt::read_locals`]).
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Stmt::Assign { value, .. } => match value {
                Expr::Operand(o) => vec![*o],
                Expr::Unary { operand, .. } => vec![*operand],
                Expr::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
                Expr::FieldLoad(_) | Expr::New(_) => vec![],
                Expr::NewArray { len, .. } => vec![*len],
                Expr::ArrayLoad { index, .. } => vec![*index],
                Expr::Cast { operand, .. } | Expr::InstanceOf { operand, .. } => vec![*operand],
            },
            Stmt::FieldStore { value, .. } => vec![*value],
            Stmt::ArrayStore { index, value, .. } => vec![*index, *value],
            Stmt::Invoke { call, .. } => call.args.clone(),
            Stmt::If { cond, .. } => match cond {
                Cond::Truthy(o) | Cond::Falsy(o) => vec![*o],
                Cond::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            },
            Stmt::Return { value } => value.iter().copied().collect(),
            Stmt::Throw { value } => vec![*value],
            Stmt::Goto { .. } | Stmt::EnterPriv | Stmt::ExitPriv | Stmt::Nop => vec![],
        }
    }

    /// All locals read by this statement, including receivers and arrays.
    pub fn read_locals(&self) -> Vec<LocalId> {
        let mut out: Vec<LocalId> = self
            .operands()
            .iter()
            .filter_map(|o| o.as_local())
            .collect();
        match self {
            Stmt::Assign {
                value: Expr::FieldLoad(FieldTarget::Instance(l, _)),
                ..
            } => out.push(*l),
            Stmt::Assign {
                value: Expr::ArrayLoad { array, .. },
                ..
            } => out.push(*array),
            Stmt::FieldStore {
                target: FieldTarget::Instance(l, _),
                ..
            } => out.push(*l),
            Stmt::ArrayStore { array, .. } => out.push(*array),
            Stmt::Invoke { call, .. } => {
                if let Some(r) = call.receiver {
                    out.push(r);
                }
            }
            _ => {}
        }
        out
    }

    /// The local written by this statement, if any.
    pub fn def_local(&self) -> Option<LocalId> {
        match self {
            Stmt::Assign { dst, .. } => Some(*dst),
            Stmt::Invoke { dst, .. } => *dst,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocalId {
        LocalId(i)
    }

    #[test]
    fn terminators() {
        assert!(Stmt::Goto { target: 0 }.is_terminator());
        assert!(Stmt::Return { value: None }.is_terminator());
        assert!(Stmt::Throw {
            value: Operand::Const(Const::Null)
        }
        .is_terminator());
        assert!(!Stmt::Nop.is_terminator());
        assert!(!Stmt::If {
            cond: Cond::Truthy(l(0).into()),
            target: 3
        }
        .is_terminator());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_int(1, 2));
        assert!(!CmpOp::Gt.eval_int(1, 2));
        assert!(CmpOp::Eq.eval_int(5, 5));
        assert!(CmpOp::Ne.eval_int(5, 6));
        assert!(CmpOp::Le.eval_int(5, 5));
        assert!(CmpOp::Ge.eval_int(5, 5));
    }

    #[test]
    fn def_and_reads() {
        let s = Stmt::Assign {
            dst: l(2),
            value: Expr::Binary {
                op: BinOp::Add,
                lhs: l(0).into(),
                rhs: l(1).into(),
            },
        };
        assert_eq!(s.def_local(), Some(l(2)));
        assert_eq!(s.read_locals(), vec![l(0), l(1)]);
    }

    #[test]
    fn invoke_reads_receiver() {
        let mut i = crate::Interner::new();
        let call = Call {
            kind: InvokeKind::Virtual,
            receiver: Some(l(0)),
            callee: MethodRef {
                class: i.intern("C"),
                name: i.intern("m"),
                argc: 1,
            },
            args: vec![l(1).into()],
        };
        let s = Stmt::Invoke {
            dst: Some(l(2)),
            call,
        };
        let reads = s.read_locals();
        assert!(reads.contains(&l(0)));
        assert!(reads.contains(&l(1)));
        assert_eq!(s.def_local(), Some(l(2)));
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = l(3).into();
        assert_eq!(o.as_local(), Some(l(3)));
        let c: Operand = Const::Int(7).into();
        assert_eq!(c.as_local(), None);
    }
}
