//! The JIR type system: Java-like primitive, reference, and array types.

use crate::intern::{Interner, Symbol};
use std::fmt;

/// A JIR type.
///
/// JIR mirrors the JVM type system at the granularity the security analysis
/// needs: primitives, class references (interned names), and arrays.
///
/// # Examples
///
/// ```
/// use spo_jir::{Interner, Type};
///
/// let mut i = Interner::new();
/// let obj = Type::Ref(i.intern("java.lang.Object"));
/// assert!(obj.is_ref());
/// assert_eq!(Type::Int.display(&i).to_string(), "int");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The `void` return type.
    Void,
    /// The `boolean` primitive.
    Bool,
    /// 32-bit (and smaller) integers; JIR folds `byte`/`short`/`char`/`int`.
    Int,
    /// The `long` primitive.
    Long,
    /// The `float` primitive.
    Float,
    /// The `double` primitive.
    Double,
    /// A class or interface reference, by interned fully-qualified name.
    Ref(Symbol),
    /// An array of an element type.
    Array(Box<Type>),
}

impl Type {
    /// Returns `true` for class/interface references and arrays.
    pub fn is_ref(&self) -> bool {
        matches!(self, Type::Ref(_) | Type::Array(_))
    }

    /// Returns `true` for primitive value types (not `void`).
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Type::Bool | Type::Int | Type::Long | Type::Float | Type::Double
        )
    }

    /// The class name if this is a direct class reference.
    pub fn class_name(&self) -> Option<Symbol> {
        match self {
            Type::Ref(s) => Some(*s),
            _ => None,
        }
    }

    /// For arrays, the ultimate element type; otherwise `self`.
    pub fn base_element(&self) -> &Type {
        match self {
            Type::Array(inner) => inner.base_element(),
            other => other,
        }
    }

    /// Renders the type against an interner (needed to print `Ref` names).
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TypeDisplay<'a> {
        TypeDisplay { ty: self, interner }
    }
}

/// Helper returned by [`Type::display`]; implements [`fmt::Display`].
pub struct TypeDisplay<'a> {
    ty: &'a Type,
    interner: &'a Interner,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::Void => f.write_str("void"),
            Type::Bool => f.write_str("bool"),
            Type::Int => f.write_str("int"),
            Type::Long => f.write_str("long"),
            Type::Float => f.write_str("float"),
            Type::Double => f.write_str("double"),
            Type::Ref(s) => f.write_str(self.interner.resolve(*s)),
            Type::Array(inner) => write!(f, "{}[]", inner.display(self.interner)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_predicates() {
        assert!(Type::Int.is_primitive());
        assert!(!Type::Void.is_primitive());
        assert!(!Type::Int.is_ref());
    }

    #[test]
    fn array_display_and_base() {
        let mut i = Interner::new();
        let s = i.intern("java.lang.String");
        let arr = Type::Array(Box::new(Type::Array(Box::new(Type::Ref(s)))));
        assert_eq!(arr.display(&i).to_string(), "java.lang.String[][]");
        assert_eq!(arr.base_element(), &Type::Ref(s));
        assert!(arr.is_ref());
    }

    #[test]
    fn class_name_only_for_refs() {
        let mut i = Interner::new();
        let s = i.intern("C");
        assert_eq!(Type::Ref(s).class_name(), Some(s));
        assert_eq!(Type::Int.class_name(), None);
        assert_eq!(Type::Array(Box::new(Type::Ref(s))).class_name(), None);
    }
}
