//! Access and attribute flags for classes, methods, and fields.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

macro_rules! flag_type {
    ($(#[$meta:meta])* $name:ident { $($(#[$fmeta:meta])* $flag:ident = $bit:expr => $word:literal),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(u16);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($bit); )+

            /// The empty flag set.
            pub const fn empty() -> Self {
                $name(0)
            }

            /// Returns `true` if all bits of `other` are set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Returns the union of the two flag sets.
            pub const fn union(self, other: $name) -> Self {
                $name(self.0 | other.0)
            }

            /// The raw bit pattern (stable across versions — bits are part
            /// of the persistent-cache key derivation).
            pub const fn bits(self) -> u16 {
                self.0
            }

            /// Iterates over `(flag, keyword)` pairs in declaration order.
            pub fn words(self) -> impl Iterator<Item = &'static str> {
                [$((Self::$flag, $word)),+]
                    .into_iter()
                    .filter(move |(f, _)| self.contains(*f))
                    .map(|(_, w)| w)
            }
        }

        impl BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name {
                self.union(rhs)
            }
        }

        impl BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) {
                self.0 |= rhs.0;
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "("))?;
                let mut first = true;
                for w in self.words() {
                    if !first {
                        f.write_str("|")?;
                    }
                    f.write_str(w)?;
                    first = false;
                }
                if first {
                    f.write_str("-")?;
                }
                f.write_str(")")
            }
        }
    };
}

flag_type! {
    /// Flags on a class or interface declaration.
    ClassFlags {
        /// `public` visibility.
        PUBLIC = 1 => "public",
        /// `final`: cannot be subclassed; aids devirtualization.
        FINAL = 2 => "final",
        /// `abstract`: cannot be instantiated.
        ABSTRACT = 4 => "abstract",
        /// Declared with `interface` rather than `class`.
        INTERFACE = 8 => "interface",
    }
}

flag_type! {
    /// Flags on a method declaration.
    MethodFlags {
        /// `public`: an API entry point candidate.
        PUBLIC = 1 => "public",
        /// `protected`: also an entry point (callable via subclassing).
        PROTECTED = 2 => "protected",
        /// `private`: internal only.
        PRIVATE = 4 => "private",
        /// `static`: no `this` receiver.
        STATIC = 8 => "static",
        /// `final`: cannot be overridden; aids devirtualization.
        FINAL = 16 => "final",
        /// `native`: a JNI method — a security-sensitive event when called.
        NATIVE = 32 => "native",
        /// `abstract`: no body; resolved via subclasses.
        ABSTRACT = 64 => "abstract",
        /// `synchronized`: no analysis impact, kept for fidelity.
        SYNCHRONIZED = 128 => "synchronized",
    }
}

flag_type! {
    /// Flags on a field declaration.
    FieldFlags {
        /// `public` visibility.
        PUBLIC = 1 => "public",
        /// `protected` visibility.
        PROTECTED = 2 => "protected",
        /// `private`: reads/writes are broad security-sensitive events.
        PRIVATE = 4 => "private",
        /// `static`: class-level storage.
        STATIC = 8 => "static",
        /// `final`: single assignment.
        FINAL = 16 => "final",
    }
}

impl MethodFlags {
    /// Returns `true` if the method is an API entry point per the paper:
    /// public or protected (clients can reach protected methods by
    /// subclassing).
    pub fn is_entry_visible(self) -> bool {
        self.contains(MethodFlags::PUBLIC) || self.contains(MethodFlags::PROTECTED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_contains() {
        let f = MethodFlags::PUBLIC | MethodFlags::NATIVE;
        assert!(f.contains(MethodFlags::PUBLIC));
        assert!(f.contains(MethodFlags::NATIVE));
        assert!(!f.contains(MethodFlags::STATIC));
        assert!(f.contains(MethodFlags::empty()));
    }

    #[test]
    fn entry_visibility() {
        assert!(MethodFlags::PUBLIC.is_entry_visible());
        assert!(MethodFlags::PROTECTED.is_entry_visible());
        assert!(!MethodFlags::PRIVATE.is_entry_visible());
        assert!(!MethodFlags::empty().is_entry_visible());
    }

    #[test]
    fn words_roundtrip() {
        let f = ClassFlags::PUBLIC | ClassFlags::FINAL;
        let words: Vec<_> = f.words().collect();
        assert_eq!(words, vec!["public", "final"]);
    }

    #[test]
    fn debug_nonempty_even_when_empty() {
        let s = format!("{:?}", FieldFlags::empty());
        assert!(!s.is_empty());
        assert!(s.contains('-'));
    }

    #[test]
    fn bitor_assign() {
        let mut f = MethodFlags::empty();
        f |= MethodFlags::FINAL;
        assert!(f.contains(MethodFlags::FINAL));
    }
}
