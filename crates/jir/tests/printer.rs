//! Direct assertions on the printer's concrete output, complementing the
//! round-trip property tests.

use spo_jir::{parse_program, print_program};

fn reprint(src: &str) -> String {
    print_program(&parse_program(src).unwrap())
}

#[test]
fn prints_class_header_with_extends_and_implements() {
    let out = reprint("interface I { } class Base { } class C extends Base implements I { }");
    assert!(out.contains("interface I {"));
    assert!(out.contains("class C extends Base implements I {"));
    // Default superclass is elided.
    assert!(out.contains("class Base {\n"));
}

#[test]
fn prints_fields_with_modifiers() {
    let out = reprint("class C { field private static final int counter; }");
    assert!(
        out.contains("field private static final int counter;"),
        "{out}"
    );
}

#[test]
fn prints_native_method_signature() {
    let out = reprint("class C { method public native int read0(java.lang.String f, int n); }");
    assert!(
        out.contains("method public native int read0(java.lang.String p0, int p1);"),
        "{out}"
    );
}

#[test]
fn prints_labels_only_at_branch_targets() {
    let out = reprint(
        "class C { method public static void m(bool c) {
           if c goto end;
           nop;
         end:
           return;
         } }",
    );
    assert!(out.contains("if c goto L0;"), "{out}");
    assert!(out.contains("L0:"), "{out}");
    // Exactly one label emitted.
    assert_eq!(out.matches("L0:").count(), 1);
    assert!(!out.contains("L1"));
}

#[test]
fn prints_all_invoke_kinds() {
    let out = reprint(
        "interface I { method public abstract void run(); }
         class C implements I {
           method public void run() { return; }
           method public static void m(C c, I i) {
             local int r;
             virtualinvoke c.run();
             interfaceinvoke i.run();
             specialinvoke c.run();
             staticinvoke C.m(c, i);
             return;
           }
         }",
    );
    assert!(out.contains("virtualinvoke c.run();"));
    assert!(out.contains("interfaceinvoke i.run();"));
    assert!(out.contains("specialinvoke c.run();"));
    assert!(out.contains("staticinvoke C.m(c, i);"));
}

#[test]
fn prints_operand_and_expr_forms() {
    let out = reprint(
        r#"class C {
           field static int g;
           method public static int m(int a, C o) {
             local int x;
             local int[] arr;
             local bool b;
             local java.lang.String s;
             x = -7;
             x = a + 3;
             x = a % 2;
             b = !b;
             s = "hi\n";
             x = (int) a;
             b = s instanceof java.lang.String;
             C.g = x;
             x = C.g;
             arr = newarray int [4];
             arr[0] = x;
             x = arr[0];
             return x;
           }
         }"#,
    );
    for needle in [
        "x = -7;",
        "x = a + 3;",
        "x = a % 2;",
        "b = !b;",
        "s = \"hi\\n\";",
        "x = (int) a;",
        "b = s instanceof java.lang.String;",
        "C.g = x;",
        "x = C.g;",
        "arr = newarray int [4];",
        "arr[0] = x;",
        "x = arr[0];",
        "return x;",
    ] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
}

#[test]
fn prints_privileged_as_flat_markers() {
    let out = reprint(
        "class C { method public static void m() {
           privileged {
             nop;
           }
           return;
         } }",
    );
    assert!(out.contains("enterpriv;"), "{out}");
    assert!(out.contains("exitpriv;"), "{out}");
}

#[test]
fn groups_locals_by_type() {
    let out = reprint(
        "class C { method public static void m() {
           local int a;
           local int b;
           local bool c;
           return;
         } }",
    );
    assert!(out.contains("local int a, b;"), "{out}");
    assert!(out.contains("local bool c;"), "{out}");
}

#[test]
fn string_escapes_survive_printing() {
    let out = reprint(
        r#"class C { method public static void m(java.lang.String s) {
        local java.lang.String t;
        t = "a\"b\\c\td";
        return;
    } }"#,
    );
    assert!(out.contains(r#"t = "a\"b\\c\td";"#), "{out}");
}

#[test]
fn this_receiver_prints_by_name() {
    let out = reprint(
        "class C {
           field private int f;
           method public int m() {
             local int v;
             v = this.f;
             this.f = v;
             return v;
           }
         }",
    );
    assert!(out.contains("v = this.f;"));
    assert!(out.contains("this.f = v;"));
}
