//! Robustness: the lexer and parser must never panic, on any input.

use proptest::prelude::*;
use spo_jir::{lex, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode strings: lexing and parsing return Ok or Err,
    /// never panic.
    #[test]
    fn parser_total_on_arbitrary_strings(s in "\\PC{0,200}") {
        let _ = lex(&s);
        let _ = parse_program(&s);
    }

    /// Near-miss inputs: plausible token soup assembled from the grammar's
    /// own vocabulary stresses deeper parser paths than pure noise.
    #[test]
    fn parser_total_on_token_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("class"), Just("interface"), Just("method"), Just("field"),
            Just("local"), Just("if"), Just("goto"), Just("return"),
            Just("throw"), Just("new"), Just("privileged"), Just("public"),
            Just("static"), Just("native"), Just("virtualinvoke"),
            Just("staticinvoke"), Just("int"), Just("bool"), Just("void"),
            Just("{"), Just("}"), Just("("), Just(")"), Just(";"), Just(":"),
            Just(","), Just("."), Just("="), Just("=="), Just("x"), Just("C"),
            Just("a.b.C"), Just("42"), Just("null"), Just("true"),
        ],
        0..60,
    )) {
        let src = words.join(" ");
        let _ = parse_program(&src);
    }

    /// Valid programs with trailing garbage fail cleanly.
    #[test]
    fn trailing_garbage_is_an_error_not_a_panic(tail in "\\PC{0,40}") {
        let src = format!("class C {{ }} {tail}");
        let _ = parse_program(&src);
    }
}
