//! Robustness: the lexer and parser must never panic, on any input.
//!
//! Randomized over fixed seeds via the in-tree `spo-rng` PRNG.

use spo_jir::{lex, parse_program};
use spo_rng::SmallRng;

/// Random printable-ish unicode strings, including multi-byte code points.
fn arbitrary_string(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| match rng.gen_range(0..4u32) {
            0 => rng.gen_range(0x20..0x7fu32),       // ASCII printable
            1 => rng.gen_range(0..0x20u32),          // control chars
            2 => rng.gen_range(0xa0..0x2500u32),     // BMP letters/symbols
            _ => rng.gen_range(0x1f300..0x1f600u32), // astral (emoji block)
        })
        .filter_map(char::from_u32)
        .collect()
}

/// Arbitrary unicode strings: lexing and parsing return Ok or Err,
/// never panic.
#[test]
fn parser_total_on_arbitrary_strings() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0xab5e_0000 + seed);
        let s = arbitrary_string(&mut rng, 200);
        let _ = lex(&s);
        let _ = parse_program(&s);
    }
}

/// Near-miss inputs: plausible token soup assembled from the grammar's
/// own vocabulary stresses deeper parser paths than pure noise.
#[test]
fn parser_total_on_token_soup() {
    const WORDS: &[&str] = &[
        "class",
        "interface",
        "method",
        "field",
        "local",
        "if",
        "goto",
        "return",
        "throw",
        "new",
        "privileged",
        "public",
        "static",
        "native",
        "virtualinvoke",
        "staticinvoke",
        "int",
        "bool",
        "void",
        "{",
        "}",
        "(",
        ")",
        ";",
        ":",
        ",",
        ".",
        "=",
        "==",
        "x",
        "C",
        "a.b.C",
        "42",
        "null",
        "true",
    ];
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x50f7_0000 + seed);
        let len = rng.gen_range(0..60usize);
        let src: Vec<&str> = (0..len).map(|_| *rng.choose(WORDS).unwrap()).collect();
        let _ = parse_program(&src.join(" "));
    }
}

/// Valid programs with trailing garbage fail cleanly.
#[test]
fn trailing_garbage_is_an_error_not_a_panic() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x7a11_0000 + seed);
        let tail = arbitrary_string(&mut rng, 40);
        let src = format!("class C {{ }} {tail}");
        let _ = parse_program(&src);
    }
}
