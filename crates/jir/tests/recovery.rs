//! Error recovery: `parse_into_recovering` collects diagnostics and drops
//! only the malformed unit instead of bailing on the first error.

use spo_jir::{parse_into_recovering, parse_program, Program};
use spo_rng::SmallRng;

const GOOD_TWO_METHODS: &str = r#"
class demo.A {
  field private int x;
  method public int good() {
    local int a;
    a = 1;
    return a;
  }
  method public int alsoGood() {
    local int b;
    b = 2;
    return b;
  }
}
"#;

#[test]
fn clean_input_is_clean_and_matches_strict_parse() {
    let mut p = Program::new();
    let rec = parse_into_recovering(GOOD_TWO_METHODS, &mut p);
    assert!(rec.is_clean(), "{:?}", rec.diagnostics);
    let strict = parse_program(GOOD_TWO_METHODS).unwrap();
    assert_eq!(p.class_count(), strict.class_count());
    assert_eq!(p.all_methods().count(), strict.all_methods().count());
}

#[test]
fn malformed_method_body_drops_only_that_method() {
    let src = r#"
class demo.A {
  method public int good() {
    local int a;
    a = 1;
    return a;
  }
  method public int bad() {
    local int b;
    b = = = nonsense;
    return b;
  }
  method public int alsoGood() {
    local int c;
    c = 3;
    return c;
  }
}
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "method");
    let c = p.class_by_str("demo.A").unwrap();
    let names: Vec<&str> = p.class(c).methods.iter().map(|m| p.str(m.name)).collect();
    assert_eq!(names, ["good", "alsoGood"]);
}

#[test]
fn malformed_field_drops_only_that_field() {
    let src = r#"
class demo.A {
  field private int ok;
  field private ;
  field private int alsoOk;
  method public void m() {
    return;
  }
}
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "field");
    let c = p.class_by_str("demo.A").unwrap();
    assert_eq!(p.class(c).fields.len(), 2);
    assert_eq!(p.class(c).methods.len(), 1);
}

#[test]
fn garbage_member_token_is_skipped() {
    let src = r#"
class demo.A {
  42;
  method public void m() {
    return;
  }
}
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "member");
    let c = p.class_by_str("demo.A").unwrap();
    assert_eq!(p.class(c).methods.len(), 1);
}

#[test]
fn malformed_class_header_drops_class_but_not_neighbors() {
    let src = r#"
class demo.A {
  method public void m() {
    return;
  }
}
class 123bogus {
  method public void n() {
    return;
  }
}
class demo.B {
  method public void o() {
    return;
  }
}
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "class");
    assert!(p.class_by_str("demo.A").is_some());
    assert!(p.class_by_str("demo.B").is_some());
    assert_eq!(p.class_count(), 2);
}

#[test]
fn duplicate_class_reports_and_keeps_first() {
    let src = r#"
class demo.A {
  method public void first() {
    return;
  }
}
class demo.A {
  method public void second() {
    return;
  }
}
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "class `demo.A`");
    let c = p.class_by_str("demo.A").unwrap();
    assert_eq!(p.str(p.class(c).methods[0].name), "first");
}

#[test]
fn lex_error_drops_file() {
    let src = "class demo.A { \u{0} }";
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "file");
    assert_eq!(p.class_count(), 0);
}

#[test]
fn truncated_class_is_dropped_without_hanging() {
    let src = r#"
class demo.A {
  method public void m() {
    return;
  }
"#;
    let mut p = Program::new();
    let rec = parse_into_recovering(src, &mut p);
    assert_eq!(rec.diagnostics.len(), 1, "{:?}", rec.diagnostics);
    assert_eq!(rec.diagnostics[0].dropped, "class");
    assert_eq!(p.class_count(), 0);
}

/// Mutated real fixtures: the recovering parser terminates and never
/// panics, whatever we throw at it, and any class it keeps is well-formed.
#[test]
fn recovery_total_on_mutated_fixture() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xec0_4000 + seed);
        let mut bytes = GOOD_TWO_METHODS.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..8usize) {
            let i = rng.gen_range(0..bytes.len() as u32) as usize;
            match rng.gen_range(0..3u32) {
                0 => bytes[i] = rng.gen_range(0..256u32) as u8,
                1 => bytes.truncate(i),
                _ => {
                    let j = rng.gen_range(0..bytes.len() as u32) as usize;
                    bytes.swap(i, j);
                }
            }
            if bytes.is_empty() {
                break;
            }
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let mut p = Program::new();
        let _ = parse_into_recovering(&src, &mut p);
        for (_, m) in p.all_methods() {
            if let Some(body) = &m.body {
                assert!(body.validate().is_ok());
            }
        }
    }
}
