//! Integration tests for the `.jir` parser against realistic sources.

use spo_jir::{
    parse_program, Cond, Const, Expr, FieldTarget, InvokeKind, MethodFlags, Operand, Stmt, Type,
};

const DATAGRAM_SOCKET: &str = r#"
// Transliteration of the paper's Figure 1(a): JDK DatagramSocket.connect.
class java.net.DatagramSocket {
  field private java.net.InetAddress connectedAddress;
  field private int connectedPort;
  field private java.net.DatagramSocketImpl impl;

  method public synchronized void connect(java.net.InetAddress address, int port) {
    local bool multicast;
    local java.lang.SecurityManager sm;
    local java.net.DatagramSocketImpl i;
    local java.lang.String host;
    multicast = virtualinvoke address.isMulticastAddress();
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto connectit;
    if multicast goto mcast;
    host = virtualinvoke address.getHostAddress();
    virtualinvoke sm.checkConnect(host, port);
    virtualinvoke sm.checkAccept(host, port);
    goto connectit;
  mcast:
    virtualinvoke sm.checkMulticast(address);
  connectit:
    i = this.impl;
    virtualinvoke i.connect(address, port);
    this.connectedAddress = address;
    this.connectedPort = port;
    return;
  }
}
"#;

#[test]
fn parses_datagram_socket_connect() {
    let p = parse_program(DATAGRAM_SOCKET).unwrap();
    let c = p.class_by_str("java.net.DatagramSocket").unwrap();
    let class = p.class(c);
    assert_eq!(class.fields.len(), 3);
    assert_eq!(class.methods.len(), 1);
    let m = &class.methods[0];
    assert!(m.flags.contains(MethodFlags::PUBLIC));
    assert!(m.flags.contains(MethodFlags::SYNCHRONIZED));
    assert_eq!(
        m.params,
        vec![
            Type::Ref(p.interner().get("java.net.InetAddress").unwrap()),
            Type::Int
        ]
    );
    let body = m.body.as_ref().unwrap();
    assert!(body.validate().is_ok());
    // `this` + 2 params.
    assert_eq!(body.n_params, 3);
    // The two checkConnect/checkAccept calls exist on the non-multicast arm.
    let check_calls: Vec<_> = body
        .stmts
        .iter()
        .filter_map(|s| s.as_call())
        .filter(|call| p.str(call.callee.class) == "java.lang.SecurityManager")
        .map(|call| p.str(call.callee.name).to_owned())
        .collect();
    assert_eq!(
        check_calls,
        vec!["checkConnect", "checkAccept", "checkMulticast"]
    );
}

#[test]
fn parses_native_and_abstract_methods() {
    let src = r#"
class java.lang.Runtime {
  method private native void halt0(int status);
  method public abstract int size();
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("java.lang.Runtime").unwrap();
    let methods = &p.class(c).methods;
    assert!(methods[0].is_native());
    assert!(methods[0].body.is_none());
    assert!(methods[1].flags.contains(MethodFlags::ABSTRACT));
}

#[test]
fn rejects_bodyless_non_native() {
    let src = "class C { method public void m(); }";
    assert!(parse_program(src).is_err());
}

#[test]
fn parses_interface() {
    let src = r#"
interface java.util.List extends java.util.Collection {
  method public abstract int size();
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("java.util.List").unwrap();
    let class = p.class(c);
    assert!(class.is_interface());
    assert!(class.superclass.is_none());
    assert_eq!(class.interfaces.len(), 1);
}

#[test]
fn parses_static_field_access() {
    let src = r#"
class C {
  method public static void m() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    java.lang.System.security = sm;
    return;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        &body.stmts[0],
        Stmt::Assign { value: Expr::FieldLoad(FieldTarget::Static(f)), .. }
            if p.str(f.class) == "java.lang.System" && p.str(f.name) == "security"
    ));
    assert!(matches!(
        &body.stmts[1],
        Stmt::FieldStore {
            target: FieldTarget::Static(_),
            ..
        }
    ));
}

#[test]
fn parses_privileged_block() {
    let src = r#"
class C {
  method public void m() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    privileged {
      virtualinvoke sm.checkRead("f");
    }
    return;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(body.stmts[1], Stmt::EnterPriv));
    assert!(matches!(body.stmts[3], Stmt::ExitPriv));
}

#[test]
fn parses_operand_forms() {
    let src = r#"
class C {
  method public static int m(int a) {
    local int x;
    local bool b;
    local java.lang.String s;
    x = -5;
    x = a + 3;
    x = a % 2;
    b = !b;
    s = "hello\nworld";
    x = (int) a;
    b = s instanceof java.lang.String;
    if a >= 10 goto big;
    return x;
  big:
    return a;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        body.stmts[0],
        Stmt::Assign {
            value: Expr::Operand(Operand::Const(Const::Int(-5))),
            ..
        }
    ));
    assert!(matches!(
        body.stmts[7],
        Stmt::If {
            cond: Cond::Cmp { .. },
            ..
        }
    ));
}

#[test]
fn parses_arrays() {
    let src = r#"
class C {
  method public static int m() {
    local int[] arr;
    local int x;
    arr = newarray int [10];
    arr[0] = 42;
    x = arr[0];
    return x;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        body.stmts[0],
        Stmt::Assign {
            value: Expr::NewArray { .. },
            ..
        }
    ));
    assert!(matches!(body.stmts[1], Stmt::ArrayStore { .. }));
    assert!(matches!(
        body.stmts[2],
        Stmt::Assign {
            value: Expr::ArrayLoad { .. },
            ..
        }
    ));
}

#[test]
fn parses_new_and_special_invoke() {
    let src = r#"
class C {
  method public static C make() {
    local C c;
    c = new C;
    specialinvoke c.init();
    return c;
  }
  method public void init() {
    return;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        &body.stmts[0],
        Stmt::Assign {
            value: Expr::New(_),
            ..
        }
    ));
    assert!(matches!(
        &body.stmts[1],
        Stmt::Invoke { call, .. } if call.kind == InvokeKind::Special
    ));
}

#[test]
fn error_on_unknown_local() {
    let src = "class C { method public static void m() { x = 1; return; } }";
    let err = parse_program(src).unwrap_err();
    assert!(err.message.contains("unknown local"), "{}", err.message);
}

#[test]
fn error_on_undefined_label() {
    let src = "class C { method public static void m() { goto nowhere; } }";
    let err = parse_program(src).unwrap_err();
    assert!(err.message.contains("undefined label"), "{}", err.message);
}

#[test]
fn error_on_duplicate_label() {
    let src = r#"
class C {
  method public static void m() {
  a:
    nop;
  a:
    return;
  }
}
"#;
    let err = parse_program(src).unwrap_err();
    assert!(err.message.contains("bound twice"), "{}", err.message);
}

#[test]
fn error_on_duplicate_local() {
    let src = r#"
class C {
  method public static void m() {
    local int x;
    local bool x;
    return;
  }
}
"#;
    assert!(parse_program(src).is_err());
}

#[test]
fn error_on_duplicate_class() {
    let src = "class C { } class C { }";
    let err = parse_program(src).unwrap_err();
    assert!(err.message.contains("duplicate class"), "{}", err.message);
}

#[test]
fn error_positions_are_useful() {
    let src = "class C {\n  method public static void m() {\n    ??\n  }\n}";
    let err = parse_program(src).unwrap_err();
    assert_eq!(err.line, 3);
}

#[test]
fn implicit_void_return_added() {
    let src = r#"
class C {
  method public static void m() {
    nop;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        body.stmts.last(),
        Some(Stmt::Return { value: None })
    ));
}

#[test]
fn label_at_end_of_body() {
    let src = r#"
class C {
  method public static void m(bool b) {
    if b goto end;
    nop;
  end:
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(body.validate().is_ok());
}

#[test]
fn class_literal_operand() {
    let src = r#"
class C {
  method public static void m() {
    local java.lang.Class k;
    k = java.lang.String.class;
    return;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let c = p.class_by_str("C").unwrap();
    let body = p.class(c).methods[0].body.as_ref().unwrap();
    assert!(matches!(
        body.stmts[0],
        Stmt::Assign {
            value: Expr::Operand(Operand::Const(Const::Class(_))),
            ..
        }
    ));
}

#[test]
fn parse_into_layers_classes() {
    let mut p = parse_program("class A { }").unwrap();
    spo_jir::parse_into("class B extends A { }", &mut p).unwrap();
    assert_eq!(p.class_count(), 2);
    let b = p.class_by_str("B").unwrap();
    let sup = p.class(b).superclass.unwrap();
    assert_eq!(p.str(sup), "A");
}
