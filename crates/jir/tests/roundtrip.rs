//! Property tests: printer output re-parses, and print∘parse is a fixpoint.
//!
//! Randomized over a fixed set of seeds via the in-tree `spo-rng` PRNG so
//! the suite is fully deterministic and needs no external crates.

use spo_jir::{parse_program, print_program, Const, MethodFlags, Operand, ProgramBuilder, Type};
use spo_rng::SmallRng;

/// A miniature statement language used to drive the builder randomly while
/// guaranteeing structurally valid bodies.
#[derive(Clone, Debug)]
enum GenStmt {
    AssignInt(u8, i64),
    AssignBool(u8, bool),
    AssignStr(u8, String),
    Add(u8, u8, i64),
    Copy(u8, u8),
    Nop,
    CallStatic {
        class: u8,
        method: u8,
        args: Vec<i64>,
        capture: Option<u8>,
    },
    Diamond {
        cond_local: u8,
        then_len: u8,
        else_len: u8,
    },
    Privileged(u8),
    SecurityCheck(u8),
    StoreStaticField {
        class: u8,
        field: u8,
        src: u8,
    },
}

const CHECKS: &[&str] = &["checkRead", "checkWrite", "checkConnect", "checkExit"];

/// Characters allowed in generated string constants: exercises escaping of
/// backslash, quote, newline and tab in the printer/lexer round trip.
const STR_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', ' ', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', '\\',
    '"', '\n', '\t',
];

fn gen_string(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..13usize);
    (0..len).map(|_| *rng.choose(STR_CHARS).unwrap()).collect()
}

fn gen_stmt(rng: &mut SmallRng) -> GenStmt {
    match rng.gen_range(0..11u32) {
        0 => GenStmt::AssignInt(rng.gen_range(0..4u8), rng.next_u64() as i64),
        1 => GenStmt::AssignBool(rng.gen_range(0..4u8), rng.gen_bool(0.5)),
        2 => GenStmt::AssignStr(rng.gen_range(0..4u8), gen_string(rng)),
        3 => GenStmt::Add(
            rng.gen_range(0..4u8),
            rng.gen_range(0..4u8),
            rng.gen_range(-100..100i64),
        ),
        4 => GenStmt::Copy(rng.gen_range(0..4u8), rng.gen_range(0..4u8)),
        5 => GenStmt::Nop,
        6 => {
            let nargs = rng.gen_range(0..3usize);
            GenStmt::CallStatic {
                class: rng.gen_range(0..3u8),
                method: rng.gen_range(0..3u8),
                args: (0..nargs).map(|_| rng.gen_range(-5..5i64)).collect(),
                capture: if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..4u8))
                } else {
                    None
                },
            }
        }
        7 => GenStmt::Diamond {
            cond_local: rng.gen_range(0..4u8),
            then_len: rng.gen_range(1..3u8),
            else_len: rng.gen_range(1..3u8),
        },
        8 => GenStmt::Privileged(rng.gen_range(0..4u8)),
        9 => GenStmt::SecurityCheck(rng.gen_range(0..CHECKS.len() as u8)),
        _ => GenStmt::StoreStaticField {
            class: rng.gen_range(0..3u8),
            field: rng.gen_range(0..3u8),
            src: rng.gen_range(0..4u8),
        },
    }
}

fn gen_method(rng: &mut SmallRng) -> Vec<GenStmt> {
    let len = rng.gen_range(0..12usize);
    (0..len).map(|_| gen_stmt(rng)).collect()
}

fn gen_program(rng: &mut SmallRng) -> Vec<Vec<Vec<GenStmt>>> {
    // classes -> methods -> stmts
    let nclasses = rng.gen_range(1..4usize);
    (0..nclasses)
        .map(|_| {
            let nmethods = rng.gen_range(1..3usize);
            (0..nmethods).map(|_| gen_method(rng)).collect()
        })
        .collect()
}

fn build(spec: &[Vec<Vec<GenStmt>>]) -> String {
    let mut pb = ProgramBuilder::new();
    for (ci, methods) in spec.iter().enumerate() {
        let mut cb = pb.class(&format!("gen.C{ci}"));
        // Static int fields f0..f2 so StoreStaticField always refers to
        // something printable.
        for f in 0..3 {
            cb.field(&format!("f{f}"), Type::Int, spo_jir::FieldFlags::STATIC);
        }
        for (mi, stmts) in methods.iter().enumerate() {
            let mut mb = cb.method(
                &format!("m{mi}"),
                MethodFlags::PUBLIC | MethodFlags::STATIC,
                Type::Void,
            );
            let ints: Vec<_> = (0..4)
                .map(|i| mb.local(&format!("x{i}"), Type::Int))
                .collect();
            let bools: Vec<_> = (0..4)
                .map(|i| mb.local(&format!("b{i}"), Type::Bool))
                .collect();
            let strs: Vec<_> = {
                let string_ty = mb.ref_ty("java.lang.String");
                (0..4)
                    .map(|i| mb.local(&format!("s{i}"), string_ty.clone()))
                    .collect()
            };
            for s in stmts {
                match s {
                    GenStmt::AssignInt(l, v) => {
                        mb.assign_const(ints[*l as usize], Const::Int(*v));
                    }
                    GenStmt::AssignBool(l, v) => {
                        mb.assign_const(bools[*l as usize], Const::Bool(*v));
                    }
                    GenStmt::AssignStr(l, v) => {
                        let sym = mb.intern(v);
                        mb.assign_const(strs[*l as usize], Const::Str(sym));
                    }
                    GenStmt::Add(d, s2, v) => {
                        mb.assign(
                            ints[*d as usize],
                            spo_jir::Expr::Binary {
                                op: spo_jir::BinOp::Add,
                                lhs: ints[*s2 as usize].into(),
                                rhs: Const::Int(*v).into(),
                            },
                        );
                    }
                    GenStmt::Copy(d, s2) => mb.copy(ints[*d as usize], ints[*s2 as usize]),
                    GenStmt::Nop => mb.push(spo_jir::Stmt::Nop),
                    GenStmt::CallStatic {
                        class,
                        method,
                        args,
                        capture,
                    } => {
                        let argv: Vec<Operand> =
                            args.iter().map(|v| Const::Int(*v).into()).collect();
                        mb.invoke_static(
                            capture.map(|c| ints[c as usize]),
                            &format!("gen.C{}", *class as usize % spec.len()),
                            &format!("m{method}"),
                            argv,
                        );
                    }
                    GenStmt::Diamond {
                        cond_local,
                        then_len,
                        else_len,
                    } => {
                        let then_l = mb.fresh_label();
                        let join = mb.fresh_label();
                        mb.if_truthy(bools[*cond_local as usize], then_l);
                        for _ in 0..*else_len {
                            mb.assign_const(ints[0], Const::Int(0));
                        }
                        mb.goto(join);
                        mb.bind(then_l);
                        for _ in 0..*then_len {
                            mb.assign_const(ints[1], Const::Int(1));
                        }
                        mb.bind(join);
                        mb.push(spo_jir::Stmt::Nop);
                    }
                    GenStmt::Privileged(l) => {
                        let dst = ints[*l as usize];
                        mb.privileged(|mb| {
                            mb.assign_const(dst, Const::Int(7));
                        });
                    }
                    GenStmt::SecurityCheck(i) => {
                        mb.security_check(CHECKS[*i as usize], vec![Const::Int(0).into()]);
                    }
                    GenStmt::StoreStaticField { class, field, src } => {
                        mb.store_static(
                            &format!("gen.C{}", *class as usize % spec.len()),
                            &format!("f{field}"),
                            ints[*src as usize],
                        );
                    }
                }
            }
            mb.ret();
            mb.finish();
        }
        cb.finish().unwrap();
    }
    print_program(&pb.finish())
}

const CASES: u64 = 64;

/// Printed programs must re-parse, and printing the re-parsed program
/// must reproduce the exact same text (print∘parse fixpoint).
#[test]
fn print_parse_print_fixpoint() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0000 + seed);
        let spec = gen_program(&mut rng);
        let text1 = build(&spec);
        let program2 = parse_program(&text1).unwrap_or_else(|e| {
            panic!("reparse failed (seed {seed}): {e}\n--- source ---\n{text1}")
        });
        let text2 = print_program(&program2);
        assert_eq!(
            &text1, &text2,
            "print-parse-print not a fixpoint (seed {seed})"
        );
    }
}

/// Reparsed bodies keep the same statement counts and validate.
#[test]
fn reparsed_bodies_validate() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xface_0000 + seed);
        let spec = gen_program(&mut rng);
        let text = build(&spec);
        let program = parse_program(&text).unwrap();
        for (_, m) in program.all_methods() {
            if let Some(body) = &m.body {
                assert!(body.validate().is_ok(), "seed {seed}");
                // Every body's CFG must have a reachable exit.
                let cfg = body.cfg();
                assert!(cfg.reverse_post_order().contains(&0), "seed {seed}");
            }
        }
    }
}
