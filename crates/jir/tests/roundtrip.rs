//! Property tests: printer output re-parses, and print∘parse is a fixpoint.

use proptest::prelude::*;
use spo_jir::{
    parse_program, print_program, Const, MethodFlags, Operand, ProgramBuilder, Type,
};

/// A miniature statement language used to drive the builder randomly while
/// guaranteeing structurally valid bodies.
#[derive(Clone, Debug)]
enum GenStmt {
    AssignInt(u8, i64),
    AssignBool(u8, bool),
    AssignStr(u8, String),
    Add(u8, u8, i64),
    Copy(u8, u8),
    Nop,
    CallStatic { class: u8, method: u8, args: Vec<i64>, capture: Option<u8> },
    Diamond { cond_local: u8, then_len: u8, else_len: u8 },
    Privileged(u8),
    SecurityCheck(u8),
    StoreStaticField { class: u8, field: u8, src: u8 },
}

const CHECKS: &[&str] = &["checkRead", "checkWrite", "checkConnect", "checkExit"];

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (0..4u8, any::<i64>()).prop_map(|(l, v)| GenStmt::AssignInt(l, v)),
        (0..4u8, any::<bool>()).prop_map(|(l, v)| GenStmt::AssignBool(l, v)),
        (0..4u8, "[a-z 0-9\\\\\"\n\t]{0,12}").prop_map(|(l, s)| GenStmt::AssignStr(l, s)),
        (0..4u8, 0..4u8, -100..100i64).prop_map(|(d, s, v)| GenStmt::Add(d, s, v)),
        (0..4u8, 0..4u8).prop_map(|(d, s)| GenStmt::Copy(d, s)),
        Just(GenStmt::Nop),
        (0..3u8, 0..3u8, proptest::collection::vec(-5..5i64, 0..3), proptest::option::of(0..4u8))
            .prop_map(|(class, method, args, capture)| GenStmt::CallStatic {
                class,
                method,
                args,
                capture
            }),
        (0..4u8, 1..3u8, 1..3u8).prop_map(|(c, t, e)| GenStmt::Diamond {
            cond_local: c,
            then_len: t,
            else_len: e
        }),
        (0..4u8).prop_map(GenStmt::Privileged),
        (0..4u8).prop_map(|i| GenStmt::SecurityCheck(i % CHECKS.len() as u8)),
        (0..3u8, 0..3u8, 0..4u8)
            .prop_map(|(class, field, src)| GenStmt::StoreStaticField { class, field, src }),
    ]
}

fn gen_method() -> impl Strategy<Value = Vec<GenStmt>> {
    proptest::collection::vec(gen_stmt(), 0..12)
}

fn gen_program() -> impl Strategy<Value = Vec<Vec<Vec<GenStmt>>>> {
    // classes -> methods -> stmts
    proptest::collection::vec(proptest::collection::vec(gen_method(), 1..3), 1..4)
}

fn build(spec: &[Vec<Vec<GenStmt>>]) -> String {
    let mut pb = ProgramBuilder::new();
    for (ci, methods) in spec.iter().enumerate() {
        let mut cb = pb.class(&format!("gen.C{ci}"));
        // Static int fields f0..f2 so StoreStaticField always refers to
        // something printable.
        for f in 0..3 {
            cb.field(&format!("f{f}"), Type::Int, spo_jir::FieldFlags::STATIC);
        }
        for (mi, stmts) in methods.iter().enumerate() {
            let mut mb = cb.method(
                &format!("m{mi}"),
                MethodFlags::PUBLIC | MethodFlags::STATIC,
                Type::Void,
            );
            let ints: Vec<_> = (0..4).map(|i| mb.local(&format!("x{i}"), Type::Int)).collect();
            let bools: Vec<_> = (0..4).map(|i| mb.local(&format!("b{i}"), Type::Bool)).collect();
            let strs: Vec<_> = {
                let string_ty = mb.ref_ty("java.lang.String");
                (0..4).map(|i| mb.local(&format!("s{i}"), string_ty.clone())).collect()
            };
            for s in stmts {
                match s {
                    GenStmt::AssignInt(l, v) => {
                        mb.assign_const(ints[*l as usize], Const::Int(*v));
                    }
                    GenStmt::AssignBool(l, v) => {
                        mb.assign_const(bools[*l as usize], Const::Bool(*v));
                    }
                    GenStmt::AssignStr(l, v) => {
                        let sym = mb.intern(v);
                        mb.assign_const(strs[*l as usize], Const::Str(sym));
                    }
                    GenStmt::Add(d, s2, v) => {
                        mb.assign(
                            ints[*d as usize],
                            spo_jir::Expr::Binary {
                                op: spo_jir::BinOp::Add,
                                lhs: ints[*s2 as usize].into(),
                                rhs: Const::Int(*v).into(),
                            },
                        );
                    }
                    GenStmt::Copy(d, s2) => mb.copy(ints[*d as usize], ints[*s2 as usize]),
                    GenStmt::Nop => mb.push(spo_jir::Stmt::Nop),
                    GenStmt::CallStatic { class, method, args, capture } => {
                        let argv: Vec<Operand> =
                            args.iter().map(|v| Const::Int(*v).into()).collect();
                        mb.invoke_static(
                            capture.map(|c| ints[c as usize]),
                            &format!("gen.C{}", *class as usize % spec.len()),
                            &format!("m{method}"),
                            argv,
                        );
                    }
                    GenStmt::Diamond { cond_local, then_len, else_len } => {
                        let then_l = mb.fresh_label();
                        let join = mb.fresh_label();
                        mb.if_truthy(bools[*cond_local as usize], then_l);
                        for _ in 0..*else_len {
                            mb.assign_const(ints[0], Const::Int(0));
                        }
                        mb.goto(join);
                        mb.bind(then_l);
                        for _ in 0..*then_len {
                            mb.assign_const(ints[1], Const::Int(1));
                        }
                        mb.bind(join);
                        mb.push(spo_jir::Stmt::Nop);
                    }
                    GenStmt::Privileged(l) => {
                        let dst = ints[*l as usize];
                        mb.privileged(|mb| {
                            mb.assign_const(dst, Const::Int(7));
                        });
                    }
                    GenStmt::SecurityCheck(i) => {
                        mb.security_check(CHECKS[*i as usize], vec![Const::Int(0).into()]);
                    }
                    GenStmt::StoreStaticField { class, field, src } => {
                        mb.store_static(
                            &format!("gen.C{}", *class as usize % spec.len()),
                            &format!("f{field}"),
                            ints[*src as usize],
                        );
                    }
                }
            }
            mb.ret();
            mb.finish();
        }
        cb.finish().unwrap();
    }
    print_program(&pb.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printed programs must re-parse, and printing the re-parsed program
    /// must reproduce the exact same text (print∘parse fixpoint).
    #[test]
    fn print_parse_print_fixpoint(spec in gen_program()) {
        let text1 = build(&spec);
        let program2 = parse_program(&text1)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- source ---\n{text1}"));
        let text2 = print_program(&program2);
        prop_assert_eq!(&text1, &text2, "print-parse-print not a fixpoint");
    }

    /// Reparsed bodies keep the same statement counts and validate.
    #[test]
    fn reparsed_bodies_validate(spec in gen_program()) {
        let text = build(&spec);
        let program = parse_program(&text).unwrap();
        for (_, m) in program.all_methods() {
            if let Some(body) = &m.body {
                prop_assert!(body.validate().is_ok());
                // Every body's CFG must have a reachable exit.
                let cfg = body.cfg();
                prop_assert!(cfg.reverse_post_order().contains(&0));
            }
        }
    }
}
