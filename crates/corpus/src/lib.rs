//! # spo-corpus — subjects for the security policy oracle
//!
//! The paper evaluates on three independent implementations of the Java
//! Class Library (Sun JDK, Apache Harmony, GNU Classpath — ~2.5 MLoC). This
//! crate supplies the reproduction's subjects:
//!
//! * [`prelude_source`]/[`prelude_program`] — the shared `java.lang`
//!   runtime core, including all 31 `SecurityManager` checks;
//! * [`figures`] — faithful JIR transliterations of every code example in
//!   the paper (Figures 1, 3, 4, 5, 6, 7, 8 and the §6.4 false-positive
//!   pattern);
//! * [`generate`] — a deterministic synthetic generator emitting three
//!   interoperable library implementations with thousands of entry points
//!   and a ground-truth-labelled [`BugCatalog`] whose per-pairing counts
//!   reproduce Table 3.
//!
//! # Examples
//!
//! ```
//! use spo_corpus::{generate, CorpusConfig, Lib};
//!
//! let corpus = generate(&CorpusConfig::test_sized());
//! let jdk = corpus.program(Lib::Jdk);
//! assert!(jdk.class_count() > 50);
//! assert_eq!(corpus.catalog.total_vulnerabilities(Lib::Harmony), 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
pub mod figures;
mod generator;
mod lib_id;
mod prelude;

pub use catalog::{BugCatalog, BugCategory, BugKind, BugRecord, PairingExpectation};
pub use generator::{generate, Corpus, CorpusConfig};
pub use lib_id::{Group, Lib};
pub use prelude::{prelude_program, prelude_source};
