//! Library and visibility-group identifiers.

use std::fmt;

/// One of the three independent library implementations, named after the
/// paper's subjects.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lib {
    /// Sun JDK-like implementation.
    Jdk,
    /// Apache Harmony-like implementation.
    Harmony,
    /// GNU Classpath-like implementation.
    Classpath,
}

impl Lib {
    /// All three libraries.
    pub const ALL: [Lib; 3] = [Lib::Jdk, Lib::Harmony, Lib::Classpath];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Lib::Jdk => "jdk",
            Lib::Harmony => "harmony",
            Lib::Classpath => "classpath",
        }
    }
}

impl fmt::Display for Lib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which implementations expose a given API entry point. The paper's
/// implementations differ in coverage (6,008 / 5,835 / 4,563 entry points;
/// ~4,100–4,758 matching per pairing); the generator reproduces that by
/// assigning each synthetic API to a visibility group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Group {
    /// Present in all three implementations.
    All,
    /// JDK and Harmony only.
    JdkHarmony,
    /// JDK and Classpath only.
    JdkClasspath,
    /// Classpath and Harmony only.
    ClasspathHarmony,
    /// JDK only.
    JdkOnly,
    /// Harmony only.
    HarmonyOnly,
    /// Classpath only.
    ClasspathOnly,
}

impl Group {
    /// All groups.
    pub const ALL_GROUPS: [Group; 7] = [
        Group::All,
        Group::JdkHarmony,
        Group::JdkClasspath,
        Group::ClasspathHarmony,
        Group::JdkOnly,
        Group::HarmonyOnly,
        Group::ClasspathOnly,
    ];

    /// Does `lib` implement APIs in this group?
    pub fn contains(self, lib: Lib) -> bool {
        matches!(
            (self, lib),
            (Group::All, _)
                | (Group::JdkHarmony, Lib::Jdk | Lib::Harmony)
                | (Group::JdkClasspath, Lib::Jdk | Lib::Classpath)
                | (Group::ClasspathHarmony, Lib::Classpath | Lib::Harmony)
                | (Group::JdkOnly, Lib::Jdk)
                | (Group::HarmonyOnly, Lib::Harmony)
                | (Group::ClasspathOnly, Lib::Classpath)
        )
    }

    /// Is this group visible to a pairwise comparison of `a` and `b`?
    pub fn in_pairing(self, a: Lib, b: Lib) -> bool {
        self.contains(a) && self.contains(b)
    }

    /// Short tag used in generated package names.
    pub fn tag(self) -> &'static str {
        match self {
            Group::All => "all",
            Group::JdkHarmony => "jh",
            Group::JdkClasspath => "jc",
            Group::ClasspathHarmony => "ch",
            Group::JdkOnly => "j",
            Group::HarmonyOnly => "h",
            Group::ClasspathOnly => "c",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_membership() {
        assert!(Group::All.contains(Lib::Jdk));
        assert!(Group::JdkHarmony.contains(Lib::Harmony));
        assert!(!Group::JdkHarmony.contains(Lib::Classpath));
        assert!(Group::ClasspathOnly.contains(Lib::Classpath));
        assert!(!Group::ClasspathOnly.contains(Lib::Jdk));
    }

    #[test]
    fn pairing_visibility() {
        assert!(Group::All.in_pairing(Lib::Jdk, Lib::Harmony));
        assert!(Group::JdkHarmony.in_pairing(Lib::Jdk, Lib::Harmony));
        assert!(!Group::JdkClasspath.in_pairing(Lib::Jdk, Lib::Harmony));
        assert!(!Group::JdkOnly.in_pairing(Lib::Jdk, Lib::Harmony));
    }

    #[test]
    fn tags_unique() {
        let mut tags: Vec<_> = Group::ALL_GROUPS.iter().map(|g| g.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
    }
}
