//! Faithful JIR transliterations of every code example in the paper.
//!
//! Each figure provides per-implementation sources; a library that does not
//! implement the API in the paper's narrative (e.g. Harmony for Figure 5)
//! has no source. Tests and examples layer these on the
//! [`prelude`](crate::prelude_source) and run the oracle over them.

use crate::lib_id::Lib;

/// One paper figure: per-implementation `.jir` sources.
#[derive(Clone, Copy, Debug)]
pub struct Figure {
    /// Figure identifier, e.g. `"figure1"`.
    pub name: &'static str,
    /// What the figure demonstrates.
    pub description: &'static str,
    /// Source per library (`None` = not implemented by that library).
    jdk: Option<&'static str>,
    harmony: Option<&'static str>,
    classpath: Option<&'static str>,
}

impl Figure {
    /// The source for one implementation, if it implements this API.
    pub fn source(&self, lib: Lib) -> Option<&'static str> {
        match lib {
            Lib::Jdk => self.jdk,
            Lib::Harmony => self.harmony,
            Lib::Classpath => self.classpath,
        }
    }

    /// Builds a program containing the prelude plus this figure's code for
    /// `lib`.
    ///
    /// # Panics
    ///
    /// Panics if `lib` does not implement this figure (check
    /// [`Figure::source`] first) or on a parse error in this crate's
    /// sources (covered by tests).
    pub fn program(&self, lib: Lib) -> spo_jir::Program {
        let src = self.source(lib).expect("library implements this figure");
        let mut p = crate::prelude_program();
        spo_jir::parse_into(src, &mut p)
            .unwrap_or_else(|e| panic!("{} {lib:?} source: {e}", self.name));
        p
    }
}

/// Figure 1: `DatagramSocket.connect` — Harmony misses `checkAccept` on the
/// non-multicast path. The correct policy is unique to this method and
/// disjunctive (Figure 2), the paper's motivating example.
pub const FIGURE1: Figure = Figure {
    name: "figure1",
    description: "DatagramSocket.connect: Harmony missing checkAccept (unique disjunctive policy)",
    jdk: Some(FIG1_CORRECT),
    harmony: Some(FIG1_HARMONY),
    classpath: Some(FIG1_CORRECT),
};

const FIG1_CORRECT: &str = r#"
class java.net.DatagramSocketImpl {
  method public void connect(java.net.InetAddress addr, int port) {
    staticinvoke java.net.DatagramSocketImpl.connect0(addr, port);
    return;
  }
  method private static native void connect0(java.net.InetAddress addr, int port);
}
class java.net.DatagramSocket {
  field private java.net.InetAddress connectedAddress;
  field private int connectedPort;
  field private java.net.DatagramSocketImpl impl;

  method public void connect(java.net.InetAddress address, int port) {
    local java.net.DatagramSocket self;
    self = this;
    virtualinvoke self.connectInternal(address, port);
    return;
  }

  method private synchronized void connectInternal(java.net.InetAddress address, int port) {
    local java.lang.SecurityManager sm;
    local bool multicast;
    local java.lang.String host;
    local java.net.DatagramSocketImpl i;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto doconnect;
    multicast = virtualinvoke address.isMulticastAddress();
    if multicast goto mcast;
    host = virtualinvoke address.getHostAddress();
    virtualinvoke sm.checkConnect(host, port);
    virtualinvoke sm.checkAccept(host, port);
    goto doconnect;
  mcast:
    virtualinvoke sm.checkMulticast(address);
  doconnect:
    i = this.impl;
    virtualinvoke i.connect(address, port);
    this.connectedAddress = address;
    this.connectedPort = port;
    return;
  }
}
"#;

const FIG1_HARMONY: &str = r#"
class java.net.DatagramSocketImpl {
  method public void connect(java.net.InetAddress addr, int port) {
    staticinvoke java.net.DatagramSocketImpl.connect0(addr, port);
    return;
  }
  method private static native void connect0(java.net.InetAddress addr, int port);
}
class java.net.DatagramSocket {
  field private java.net.InetAddress address;
  field private int port;
  field private java.net.DatagramSocketImpl impl;

  method public void connect(java.net.InetAddress anAddr, int aPort) {
    local java.lang.SecurityManager sm;
    local bool multicast;
    local java.lang.String host;
    local java.net.DatagramSocketImpl i;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto doconnect;
    multicast = virtualinvoke anAddr.isMulticastAddress();
    if multicast goto mcast;
    host = virtualinvoke anAddr.getHostName();
    // BUG (Figure 1): checkAccept is missing on this path.
    virtualinvoke sm.checkConnect(host, aPort);
    goto doconnect;
  mcast:
    virtualinvoke sm.checkMulticast(anAddr);
  doconnect:
    i = this.impl;
    virtualinvoke i.connect(anAddr, aPort);
    this.address = anAddr;
    this.port = aPort;
    return;
  }
}
"#;

/// Figure 3: the hypothetical bug visible only with the broad definition of
/// security-sensitive events. Narrowly, both implementations have identical
/// `{checkRead}` may policies for the API return; broadly, the read of
/// `data1` is guarded in one implementation and unguarded in the other.
pub const FIGURE3: Figure = Figure {
    name: "figure3",
    description: "broad-events-only inconsistency on private data reads",
    jdk: Some(FIG3_IMPL1),
    harmony: Some(FIG3_IMPL2),
    classpath: Some(FIG3_IMPL1),
};

const FIG3_IMPL1: &str = r#"
class hypo.Holder {
  field private java.lang.Object data1;
  field private java.lang.Object data2;

  method public java.lang.Object a(bool condition) {
    local java.lang.SecurityManager sm;
    local java.lang.Object o;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if condition goto second;
    virtualinvoke sm.checkRead(o);
    o = this.data1;
    return o;
  second:
    o = this.data2;
    return o;
  }
}
"#;

const FIG3_IMPL2: &str = r#"
class hypo.Holder {
  field private java.lang.Object data1;
  field private java.lang.Object data2;

  method public java.lang.Object a(bool condition) {
    local java.lang.SecurityManager sm;
    local java.lang.Object o;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if condition goto second;
    // BUG (Figure 3): data1 is read without the checkRead guard.
    o = this.data1;
    return o;
  second:
    virtualinvoke sm.checkRead(o);
    o = this.data2;
    return o;
  }
}
"#;

/// Figure 4: the context-sensitive may policy in the URL constructors.
/// `URL(String)` passes a `null` handler to `URL(URL, String,
/// URLStreamHandler)`, which checks a permission only when the handler is
/// non-null. Interprocedural constant propagation is required to see that
/// the one-argument constructor performs no check in any implementation —
/// without it, the oracle reports a spurious difference against an
/// implementation that writes the constructors independently.
pub const FIGURE4: Figure = Figure {
    name: "figure4",
    description: "URL constructors: ICP needed to kill a false positive",
    jdk: Some(FIG4_DIRECT),
    harmony: Some(FIG4_DELEGATING),
    classpath: Some(FIG4_DIRECT),
};

const FIG4_DIRECT: &str = r#"
class java.net.URLStreamHandler { }
class java.net.URL {
  field private java.net.URLStreamHandler strmHandler;

  method public void init(java.lang.String spec) {
    staticinvoke java.net.URL.parse0(spec);
    return;
  }

  method public void initFull(java.net.URL context, java.lang.String spec, java.net.URLStreamHandler handler) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto parse;
    if handler == null goto parse;
    virtualinvoke sm.checkPermission(handler);
    this.strmHandler = handler;
  parse:
    staticinvoke java.net.URL.parse0(spec);
    return;
  }

  method private static native void parse0(java.lang.String spec);
}
"#;

const FIG4_DELEGATING: &str = r#"
class java.net.URLStreamHandler { }
class java.net.URL {
  field private java.net.URLStreamHandler strmHandler;

  method public void init(java.lang.String spec) {
    local java.net.URL self;
    self = this;
    // Passes null context and null handler (Figure 4, lines 2-5).
    virtualinvoke self.initFull(null, spec, null);
    return;
  }

  method public void initFull(java.net.URL context, java.lang.String spec, java.net.URLStreamHandler handler) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto parse;
    if handler == null goto parse;
    virtualinvoke sm.checkPermission(handler);
    this.strmHandler = handler;
  parse:
    staticinvoke java.net.URL.parse0(spec);
    return;
  }

  method private static native void parse0(java.lang.String spec);
}
"#;

/// Figure 5: `Runtime.loadLibrary` — JDK calls only `checkLink`, while
/// Classpath also calls `checkRead` before loading the library. Detecting
/// the vulnerability requires interprocedural analysis. Harmony does not
/// participate in this comparison.
pub const FIGURE5: Figure = Figure {
    name: "figure5",
    description: "Runtime.loadLibrary: JDK missing checkRead (interprocedural)",
    jdk: Some(FIG5_JDK),
    harmony: None,
    classpath: Some(FIG5_CLASSPATH),
};

const FIG5_JDK: &str = r#"
class java.lang.NativeLibrary {
  method public void load(java.lang.String name) {
    staticinvoke java.lang.NativeLibrary.load0(name);
    return;
  }
  method private static native void load0(java.lang.String name);
}
class java.lang.ClassLoader {
  method public static void loadLibrary(java.lang.Class fromClass, java.lang.String name, bool isAbsolute) {
    staticinvoke java.lang.ClassLoader.loadLibrary0(fromClass, name);
    return;
  }
  method private static void loadLibrary0(java.lang.Class fromClass, java.lang.String file) {
    local java.lang.NativeLibrary lib;
    lib = new java.lang.NativeLibrary;
    virtualinvoke lib.load(file);
    return;
  }
}
class java.lang.RuntimeLib {
  method public void loadLibrary(java.lang.String libname) {
    local java.lang.RuntimeLib self;
    self = this;
    virtualinvoke self.loadLibrary0(null, libname);
    return;
  }
  method private synchronized void loadLibrary0(java.lang.Class fromClass, java.lang.String libname) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto load;
    // BUG (Figure 5): only checkLink; Classpath also performs checkRead.
    virtualinvoke sm.checkLink(libname);
  load:
    staticinvoke java.lang.ClassLoader.loadLibrary(fromClass, libname, false);
    return;
  }
}
"#;

const FIG5_CLASSPATH: &str = r#"
class java.lang.VMRuntime {
  method public static int nativeLoad(java.lang.String filename, java.lang.Object loader) {
    local int r;
    r = staticinvoke java.lang.VMRuntime.nativeLoad0(filename, loader);
    return r;
  }
  method private static native int nativeLoad0(java.lang.String filename, java.lang.Object loader);
}
class java.lang.RuntimeLib {
  method public void loadLibrary(java.lang.String libname) {
    local java.lang.RuntimeLib self;
    self = this;
    virtualinvoke self.loadLibraryLoader(libname, null);
    return;
  }
  method public void loadLibraryLoader(java.lang.String libname, java.lang.Object loader) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto load;
    virtualinvoke sm.checkLink(libname);
  load:
    staticinvoke java.lang.RuntimeLib.loadLib(libname, loader);
    return;
  }
  method private static int loadLib(java.lang.String filename, java.lang.Object loader) {
    local java.lang.SecurityManager sm;
    local int r;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto load;
    virtualinvoke sm.checkRead(filename);
  load:
    r = staticinvoke java.lang.VMRuntime.nativeLoad(filename, loader);
    return r;
  }
}
"#;

/// Figure 6: `URLConnection.openConnection(Proxy)` — Harmony returns
/// internal state without any check, JDK conditionally performs
/// `checkConnect`. Finding this requires API returns as security-sensitive
/// events: no JNI call is involved.
pub const FIGURE6: Figure = Figure {
    name: "figure6",
    description: "URLConnection.openConnection: Harmony missing checkConnect (API-return event)",
    jdk: Some(FIG6_JDK),
    harmony: Some(FIG6_HARMONY),
    classpath: None,
};

const FIG6_JDK: &str = r#"
class java.net.URLConnection {
  field private java.lang.Object handler;

  method public java.lang.Object openConnection(java.net.Proxy proxy) {
    local java.lang.SecurityManager sm;
    local bool direct;
    local java.lang.Object h;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto open;
    direct = virtualinvoke proxy.isDirect();
    if direct goto open;
    virtualinvoke sm.checkConnect(proxy, 0);
  open:
    h = this.handler;
    return h;
  }
}
"#;

const FIG6_HARMONY: &str = r#"
class java.net.URLConnection {
  field private java.lang.Object strmHandler;

  method public java.lang.Object openConnection(java.net.Proxy proxy) {
    local java.lang.Object h;
    // BUG (Figure 6): internal state returned without any check.
    h = this.strmHandler;
    return h;
  }
}
"#;

/// Figure 7: `Socket.connect` — Classpath omits all security checks, a
/// case-2 (missing policy) difference that is directly exploitable.
pub const FIGURE7: Figure = Figure {
    name: "figure7",
    description: "Socket.connect: Classpath missing all checks (case 2)",
    jdk: Some(FIG7_CORRECT),
    harmony: Some(FIG7_CORRECT),
    classpath: Some(FIG7_CLASSPATH),
};

const FIG7_CORRECT: &str = r#"
class java.net.SocketImpl {
  method public void connect(java.net.SocketAddress endpoint, int timeout) {
    staticinvoke java.net.SocketImpl.connect0(endpoint, timeout);
    return;
  }
  method private static native void connect0(java.net.SocketAddress endpoint, int timeout);
}
class java.net.Socket {
  field private java.net.SocketImpl impl;
  method public void connect(java.net.SocketAddress endpoint, int timeout) {
    local java.lang.SecurityManager sm;
    local java.net.SocketImpl i;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto doconnect;
    virtualinvoke sm.checkConnect(endpoint, timeout);
  doconnect:
    i = this.impl;
    virtualinvoke i.connect(endpoint, timeout);
    return;
  }
}
"#;

const FIG7_CLASSPATH: &str = r#"
class java.net.SocketImpl {
  method public void connect(java.net.SocketAddress endpoint, int timeout) {
    staticinvoke java.net.SocketImpl.connect0(endpoint, timeout);
    return;
  }
  method private static native void connect0(java.net.SocketAddress endpoint, int timeout);
}
class java.net.Socket {
  field private java.net.SocketImpl impl;
  method public void connect(java.net.SocketAddress endpoint, int timeout) {
    local java.net.SocketImpl i;
    // BUG (Figure 7): no security checks at all.
    i = this.impl;
    virtualinvoke i.connect(endpoint, timeout);
    return;
  }
}
"#;

/// Figure 8: `String.getBytes` — when the default charset is missing, JDK
/// calls `System.exit(1)` (requiring `checkExit` permission and reaching
/// the native halt), while Harmony throws an exception. An
/// interoperability bug surfacing as a security-policy difference.
pub const FIGURE8: Figure = Figure {
    name: "figure8",
    description: "String.getBytes: JDK exits (checkExit) where Harmony throws",
    jdk: Some(FIG8_JDK),
    harmony: Some(FIG8_HARMONY),
    classpath: Some(FIG8_HARMONY),
};

const FIG8_JDK: &str = r#"
class java.lang.StringCoding {
  method static java.lang.Object encode(java.lang.String charset, bool ok) {
    local java.lang.Object r;
    if ok goto done;
    // Unsupported encoding: JDK terminates the VM.
    staticinvoke java.lang.System.exit(1);
    r = null;
    return r;
  done:
    r = staticinvoke java.lang.StringCoding.encode0(charset);
    return r;
  }
  method private static native java.lang.Object encode0(java.lang.String charset);
}
class java.lang.StringOps {
  method public java.lang.Object getBytes(bool ok) {
    local java.lang.Object r;
    r = staticinvoke java.lang.StringCoding.encode("ISO-8859-1", ok);
    return r;
  }
}
"#;

const FIG8_HARMONY: &str = r#"
class java.lang.StringCoding {
  method static java.lang.Object encode(java.lang.String charset, bool ok) {
    local java.lang.Object r;
    local java.lang.Throwable t;
    if ok goto done;
    // Unsupported encoding: throw instead of exiting.
    t = new java.lang.UnsupportedOperationException;
    throw t;
  done:
    r = staticinvoke java.lang.StringCoding.encode0(charset);
    return r;
  }
  method private static native java.lang.Object encode0(java.lang.String charset);
}
class java.lang.StringOps {
  method public java.lang.Object getBytes(bool ok) {
    local java.lang.Object r;
    r = staticinvoke java.lang.StringCoding.encode("ISO-8859-1", ok);
    return r;
  }
}
"#;

/// The paper's false-positive patterns (§6.4): Harmony uses a different but
/// equivalent check. `Security.getProperty` uses `checkSecurityAccess`
/// where JDK uses `checkPermission`.
pub const FP_GET_PROPERTY: Figure = Figure {
    name: "fp_get_property",
    description: "Security.getProperty: equivalent but different checks (false positive)",
    jdk: Some(FP_GP_JDK),
    harmony: Some(FP_GP_HARMONY),
    classpath: Some(FP_GP_JDK),
};

const FP_GP_JDK: &str = r#"
class java.security.Security {
  field private static java.lang.String props;
  method public static java.lang.String getProperty(java.lang.String key) {
    local java.lang.SecurityManager sm;
    local java.lang.String v;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto get;
    virtualinvoke sm.checkPermission(key);
  get:
    v = java.security.Security.props;
    return v;
  }
}
"#;

const FP_GP_HARMONY: &str = r#"
class java.security.Security {
  field private static java.lang.String props;
  method public static java.lang.String getProperty(java.lang.String key) {
    local java.lang.SecurityManager sm;
    local java.lang.String v;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto get;
    // Equivalent goal, different check: a benign difference the oracle
    // cannot distinguish (one of the paper's 3 false positives).
    virtualinvoke sm.checkSecurityAccess(key);
  get:
    v = java.security.Security.props;
    return v;
  }
}
"#;

/// §6.3's charset-provider interoperability difference: Classpath loads
/// `CharsetProvider` dynamically (guarded by
/// `checkPermission(new RuntimePermission("charsetProvider"))`), whereas
/// JDK and Harmony load it statically at boot and perform no check.
pub const INTEROP_CHARSET: Figure = Figure {
    name: "interop_charset",
    description:
        "CharsetProvider: Classpath's dynamic loading needs a permission the others never check",
    jdk: Some(CHARSET_STATIC),
    harmony: Some(CHARSET_STATIC),
    classpath: Some(CHARSET_DYNAMIC),
};

const CHARSET_STATIC: &str = r#"
class java.nio.charset.Charset {
  field private static java.lang.Object provider;
  method public static java.lang.Object providerForName(java.lang.String name) {
    local java.lang.Object p;
    // Provider installed statically at boot: plain field read.
    p = java.nio.charset.Charset.provider;
    return p;
  }
}
"#;

const CHARSET_DYNAMIC: &str = r#"
class java.nio.charset.Charset {
  method public static java.lang.Object providerForName(java.lang.String name) {
    local java.lang.Object p;
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto load;
    // Dynamic class loading requires the charsetProvider permission.
    virtualinvoke sm.checkPermission(name);
  load:
    p = staticinvoke java.nio.charset.Charset.loadProvider(name);
    return p;
  }
  method private static java.lang.Object loadProvider(java.lang.String name) {
    local java.lang.Object p;
    p = staticinvoke java.nio.charset.Charset.defineClass0(name);
    return p;
  }
  method private static native java.lang.Object defineClass0(java.lang.String name);
}
"#;

/// All figures, in paper order.
pub const ALL_FIGURES: [Figure; 7] = [
    FIGURE1, FIGURE3, FIGURE4, FIGURE5, FIGURE6, FIGURE7, FIGURE8,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_sources_parse() {
        for fig in ALL_FIGURES.iter().chain([&FP_GET_PROPERTY]) {
            for lib in Lib::ALL {
                if fig.source(lib).is_some() {
                    let p = fig.program(lib);
                    assert!(p.class_count() > 5, "{} {lib:?}", fig.name);
                }
            }
        }
    }

    #[test]
    fn figure5_sides() {
        assert!(FIGURE5.source(Lib::Jdk).is_some());
        assert!(FIGURE5.source(Lib::Harmony).is_none());
        assert!(FIGURE5.source(Lib::Classpath).is_some());
    }
}
