//! The shared runtime prelude: the `java.lang` core every library
//! implementation is layered on.
//!
//! Contains `java.lang.Object`, `java.lang.SecurityManager` with all 31
//! check methods (declared `native`; the analysis treats calls to them as
//! checks, never as events), `java.lang.System` with the standard
//! `getSecurityManager()` / `exit()` pair, and the small set of value
//! classes the figure scenarios reference.

use spo_core::ALL_CHECKS;
use std::fmt::Write as _;

/// Returns the prelude as `.jir` source text.
pub fn prelude_source() -> String {
    let mut out = String::from(
        r#"// ---- runtime prelude (shared by all implementations) ----
class java.lang.Object { }

class java.lang.String { }

class java.lang.Class { }

class java.lang.Throwable { }

class java.lang.RuntimeException extends java.lang.Throwable { }

class java.lang.UnsupportedOperationException extends java.lang.RuntimeException { }

class java.lang.Runtime {
  method public static native void halt0(int status);
}

class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
  method public static void exit(int status) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto halt;
    virtualinvoke sm.checkExit(status);
  halt:
    staticinvoke java.lang.Runtime.halt0(status);
    return;
  }
}

class java.net.InetAddress {
  field private bool multicast;
  field private java.lang.String host;
  method public bool isMulticastAddress() {
    local bool b;
    b = this.multicast;
    return b;
  }
  method public java.lang.String getHostAddress() {
    local java.lang.String s;
    s = this.host;
    return s;
  }
  method public java.lang.String getHostName() {
    local java.lang.String s;
    s = this.host;
    return s;
  }
}

class java.net.SocketAddress { }

class java.net.InetSocketAddress extends java.net.SocketAddress {
  field private java.lang.String host;
  field private int port;
  method public java.lang.String getHostName() {
    local java.lang.String s;
    s = this.host;
    return s;
  }
  method public int getPort() {
    local int p;
    p = this.port;
    return p;
  }
}

class java.net.Proxy {
  field private bool direct;
  method public bool isDirect() {
    local bool b;
    b = this.direct;
    return b;
  }
}
"#,
    );
    out.push_str("\nclass java.lang.SecurityManager {\n");
    for check in ALL_CHECKS {
        let params: Vec<String> = (0..check.argc())
            .map(|i| format!("java.lang.Object a{i}"))
            .collect();
        writeln!(
            out,
            "  method public native void {}({});",
            check.method_name(),
            params.join(", ")
        )
        .unwrap();
    }
    out.push_str("}\n");
    out
}

/// Parses the prelude into a fresh program.
///
/// # Panics
///
/// Panics if the prelude source is malformed — a bug in this crate, caught
/// by tests.
pub fn prelude_program() -> spo_jir::Program {
    spo_jir::parse_program(&prelude_source()).expect("prelude must parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_core::{Check, SECURITY_MANAGER_CLASS};

    #[test]
    fn prelude_parses() {
        let p = prelude_program();
        assert!(p.class_by_str(SECURITY_MANAGER_CLASS).is_some());
        assert!(p.class_by_str("java.lang.System").is_some());
    }

    #[test]
    fn all_31_checks_declared_with_matching_arity() {
        let p = prelude_program();
        let sm = p.class_by_str(SECURITY_MANAGER_CLASS).unwrap();
        for check in ALL_CHECKS {
            let name = p
                .interner()
                .get(check.method_name())
                .unwrap_or_else(|| panic!("check {} not in prelude", check.method_name()));
            let m = p
                .find_method(sm, name, check.argc())
                .unwrap_or_else(|| panic!("missing {}", check.method_name()));
            assert!(p.method(m).is_native());
        }
        assert_eq!(p.class(sm).methods.len(), 31);
    }

    #[test]
    fn exit_checks_then_halts() {
        // System.exit must produce a native halt0 event guarded by a may
        // checkExit — the Figure 8 ingredient.
        let p = prelude_program();
        let analyzer = spo_core::Analyzer::new(&p, spo_core::AnalysisOptions::default());
        let lib = analyzer.analyze_library("prelude");
        let e = &lib.entries["java.lang.System.exit(int)"];
        let ev = &e.events[&spo_core::EventKey::Native("halt0".into())];
        assert!(ev.may.contains(Check::Exit));
        assert!(!ev.must.contains(Check::Exit));
    }
}
