//! Ground-truth labels for every inconsistency injected into the corpus.
//!
//! The paper's authors triaged each reported difference by hand and with
//! the library developers; the synthetic corpus carries its labels with it,
//! letting the harness compute Table 3's categories (and precision/recall)
//! mechanically.

use crate::lib_id::{Group, Lib};
use spo_core::{Check, ReportGroup};
use std::collections::BTreeMap;

/// What a difference means, per the paper's triage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BugCategory {
    /// A missing/bypassed check: exploitable.
    Vulnerability,
    /// A semantic difference that breaks interoperability but is not (by
    /// itself) exploitable.
    Interop,
    /// Both implementations are equivalently safe; the oracle cannot tell
    /// (the paper's 3 false positives).
    FalsePositive,
    /// A benign structural difference that only a run *without*
    /// interprocedural constant propagation reports (Table 3's
    /// "FPs eliminated by ICP").
    IcpOnly,
}

/// How the buggy implementation's code differs from the correct one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugKind {
    /// One check of the correct set is omitted (Figure 1, Figure 5).
    DropCheck(Check),
    /// All checks are omitted (Figure 6, Figure 7).
    DropAllChecks,
    /// Checks are performed inside a privileged block, making them
    /// semantic no-ops (the five JDK vulnerabilities of §6.2).
    PrivilegedChecks,
    /// An additional check is required (Figure 8's `checkExit`).
    ExtraCheck(Check),
    /// A different but equivalent check is used (§6.4's false positives).
    WrongCheck {
        /// Check used by the other implementations.
        expected: Check,
        /// Check used by the buggy/differing implementation.
        actual: Check,
    },
    /// The check is performed conditionally where the others perform it
    /// unconditionally (case 3b, the paper's one MUST/MAY bug).
    MustMayDowngrade(Check),
    /// The implementation routes through a constant-guarded helper; only a
    /// non-ICP analysis sees a difference (Figure 4).
    IcpGuard(Check),
}

/// One injected inconsistency with its ground truth.
#[derive(Clone, Debug)]
pub struct BugRecord {
    /// Stable identifier, e.g. `"fig1"` or `"hv2"`.
    pub id: String,
    /// The implementation whose behaviour differs.
    pub buggy_lib: Lib,
    /// Triage category.
    pub category: BugCategory,
    /// Code-level difference.
    pub kind: BugKind,
    /// `Class.method` name of the method containing the error — the root
    /// cause the oracle's grouped reports should name.
    pub culprit: String,
    /// Manifesting entry points per visibility group (the culprit's own
    /// public entry, if any, is included as a wrapper of count 1).
    pub wrappers: Vec<(Group, usize)>,
    /// Only detectable under the broad event definition (Figure 3).
    pub broad_only: bool,
}

impl BugRecord {
    /// Number of manifesting entry points visible to the pairing `(a, b)`.
    pub fn manifestations_in(&self, a: Lib, b: Lib) -> usize {
        self.wrappers
            .iter()
            .filter(|(g, _)| g.in_pairing(a, b))
            .map(|(_, n)| n)
            .sum()
    }

    /// Is this bug detectable when comparing `a` and `b` (narrow events,
    /// ICP on)?
    pub fn visible_in(&self, a: Lib, b: Lib) -> bool {
        (self.buggy_lib == a || self.buggy_lib == b) && self.manifestations_in(a, b) > 0
    }
}

/// Expected Table 3 numbers for one pairing, derived from the catalog:
/// `(distinct, manifestations)` per category.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PairingExpectation {
    /// Vulnerabilities attributed to each library.
    pub vulns: BTreeMap<Lib, (usize, usize)>,
    /// Interoperability bugs.
    pub interop: (usize, usize),
    /// False positives.
    pub false_positives: (usize, usize),
    /// Differences that only appear with ICP disabled.
    pub icp_eliminated: (usize, usize),
}

impl PairingExpectation {
    /// Total distinct real differences (vulns + interop + FPs) the oracle
    /// should report with ICP on.
    pub fn total_distinct(&self) -> usize {
        self.vulns.values().map(|v| v.0).sum::<usize>() + self.interop.0 + self.false_positives.0
    }
}

/// Every injected bug of a generated corpus.
#[derive(Clone, Debug, Default)]
pub struct BugCatalog {
    /// All records.
    pub bugs: Vec<BugRecord>,
}

impl BugCatalog {
    /// Finds the bug whose culprit method is implicated by a grouped
    /// report (matching on the report's origin methods).
    pub fn classify(&self, group: &ReportGroup) -> Option<&BugRecord> {
        self.bugs.iter().find(|b| {
            group.representative.origins.contains(&b.culprit) || group.root_key.contains(&b.culprit)
        })
    }

    /// Expected Table 3 numbers for the pairing `(a, b)` under narrow
    /// events.
    pub fn expected(&self, a: Lib, b: Lib) -> PairingExpectation {
        let mut exp = PairingExpectation::default();
        for bug in &self.bugs {
            if bug.broad_only || !bug.visible_in(a, b) {
                continue;
            }
            let m = bug.manifestations_in(a, b);
            match bug.category {
                BugCategory::Vulnerability => {
                    let slot = exp.vulns.entry(bug.buggy_lib).or_default();
                    slot.0 += 1;
                    slot.1 += m;
                }
                BugCategory::Interop => {
                    exp.interop.0 += 1;
                    exp.interop.1 += m;
                }
                BugCategory::FalsePositive => {
                    exp.false_positives.0 += 1;
                    exp.false_positives.1 += m;
                }
                BugCategory::IcpOnly => {
                    exp.icp_eliminated.0 += 1;
                    exp.icp_eliminated.1 += m;
                }
            }
        }
        exp
    }

    /// Distinct vulnerabilities per library across all pairings (the
    /// paper's "Total security vulnerabilities" row).
    pub fn total_vulnerabilities(&self, lib: Lib) -> usize {
        self.bugs
            .iter()
            .filter(|b| {
                b.buggy_lib == lib && b.category == BugCategory::Vulnerability && !b.broad_only
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, lib: Lib, cat: BugCategory, wrappers: Vec<(Group, usize)>) -> BugRecord {
        BugRecord {
            id: id.into(),
            buggy_lib: lib,
            category: cat,
            kind: BugKind::DropAllChecks,
            culprit: format!("gen.bug.{id}.Impl.doWork"),
            wrappers,
            broad_only: false,
        }
    }

    #[test]
    fn manifestations_respect_pairing_visibility() {
        let b = record(
            "x",
            Lib::Harmony,
            BugCategory::Vulnerability,
            vec![(Group::All, 2), (Group::ClasspathHarmony, 3)],
        );
        assert_eq!(b.manifestations_in(Lib::Jdk, Lib::Harmony), 2);
        assert_eq!(b.manifestations_in(Lib::Classpath, Lib::Harmony), 5);
        assert!(b.visible_in(Lib::Jdk, Lib::Harmony));
        assert!(!b.visible_in(Lib::Jdk, Lib::Classpath)); // harmony not in pairing
    }

    #[test]
    fn expected_counts_by_category() {
        let catalog = BugCatalog {
            bugs: vec![
                record(
                    "v1",
                    Lib::Harmony,
                    BugCategory::Vulnerability,
                    vec![(Group::All, 2)],
                ),
                record("i1", Lib::Jdk, BugCategory::Interop, vec![(Group::All, 1)]),
                record(
                    "f1",
                    Lib::Harmony,
                    BugCategory::FalsePositive,
                    vec![(Group::All, 1)],
                ),
                record(
                    "c1",
                    Lib::Classpath,
                    BugCategory::Vulnerability,
                    vec![(Group::JdkClasspath, 4)],
                ),
            ],
        };
        let jh = catalog.expected(Lib::Jdk, Lib::Harmony);
        assert_eq!(jh.vulns[&Lib::Harmony], (1, 2));
        assert_eq!(jh.interop, (1, 1));
        assert_eq!(jh.false_positives, (1, 1));
        assert!(!jh.vulns.contains_key(&Lib::Classpath));
        let jc = catalog.expected(Lib::Jdk, Lib::Classpath);
        assert_eq!(jc.vulns[&Lib::Classpath], (1, 4));
        assert_eq!(jc.interop, (1, 1));
        assert_eq!(jc.false_positives, (0, 0));
        assert_eq!(catalog.total_vulnerabilities(Lib::Harmony), 1);
        assert_eq!(catalog.total_vulnerabilities(Lib::Classpath), 1);
    }
}
