//! The synthetic three-implementation library generator.
//!
//! Emits three interoperable "implementations" (`jdk`, `harmony`,
//! `classpath`) of a Java-class-library-like API as `.jir` text:
//!
//! * **background mass** — thousands of entry points per visibility group
//!   with realistic patterns (field getters/setters, shared utility call
//!   chains with fan-out that memoization collapses, native leaf calls, and
//!   a small fraction of security-checked entries), identical across the
//!   implementations that share them;
//! * **figure scenarios** — the paper's code examples
//!   ([`figures`](crate::figures));
//! * **injected inconsistencies** — a fixed plan of vulnerabilities,
//!   interoperability bugs, false positives, and ICP-only near-misses whose
//!   per-pairing distinct/manifestation counts reproduce Table 3
//!   (see `bug_plans`).
//!
//! Generation is deterministic for a given [`CorpusConfig`].

use crate::catalog::{BugCatalog, BugCategory, BugKind, BugRecord};
use crate::figures::{ALL_FIGURES, FP_GET_PROPERTY};
use crate::lib_id::{Group, Lib};
use spo_core::Check;
use spo_rng::SmallRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Corpus generation parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CorpusConfig {
    /// RNG seed; the corpus is a pure function of the config.
    pub seed: u64,
    /// Scale factor on the background entry-point counts. `1.0`
    /// approximates the paper's library sizes (≈6,000 entry points per
    /// implementation); tests use small fractions. Injected bugs are not
    /// scaled.
    pub scale: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5350_4f31,
            scale: 1.0,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for unit/integration tests (bugs intact, little
    /// background mass).
    pub fn test_sized() -> Self {
        CorpusConfig {
            scale: 0.02,
            ..Default::default()
        }
    }
}

/// A generated corpus: one program per implementation plus ground truth.
#[derive(Debug)]
pub struct Corpus {
    /// The configuration that produced this corpus.
    pub config: CorpusConfig,
    /// Generated `.jir` source per implementation (prelude and figures not
    /// included; useful for size metrics).
    pub sources: BTreeMap<Lib, String>,
    /// Parsed programs (prelude + figures + generated source).
    pub programs: BTreeMap<Lib, spo_jir::Program>,
    /// Ground-truth labels for every injected inconsistency.
    pub catalog: BugCatalog,
}

impl Corpus {
    /// The program for one implementation.
    pub fn program(&self, lib: Lib) -> &spo_jir::Program {
        &self.programs[&lib]
    }

    /// Non-comment, non-blank source lines per implementation (prelude and
    /// figure code included) — the corpus analogue of Table 1's
    /// "Non-comment lines of code".
    pub fn loc(&self, lib: Lib) -> usize {
        let mut total = count_loc(&crate::prelude_source());
        for fig in ALL_FIGURES.iter().chain([&FP_GET_PROPERTY]) {
            if let Some(src) = fig.source(lib) {
                total += count_loc(src);
            }
        }
        total + count_loc(&self.sources[&lib])
    }
}

fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Background entry-point targets per visibility group at scale 1.0,
/// chosen so per-implementation totals and per-pairing matching-API counts
/// land near Table 1/Table 3 (≈6,008 / 5,835 / 4,563 entries; ≈4,161–4,758
/// matching).
const GROUP_TARGETS: [(Group, usize); 7] = [
    (Group::All, 4100),
    (Group::JdkHarmony, 290),
    (Group::JdkClasspath, 420),
    (Group::ClasspathHarmony, 10),
    (Group::JdkOnly, 950),
    (Group::HarmonyOnly, 1370),
    (Group::ClasspathOnly, 10),
];

const PACKAGES: [&str; 8] = [
    "net", "io", "lang", "util", "security", "text", "nio", "crypto",
];

/// Checks drawn on by the background checked-entry patterns. Disjoint from
/// the checks the bug plan uses for deltas, so background noise cannot
/// collide with an injected bug's root key.
const BACKGROUND_CHECKS: [Check; 4] =
    [Check::Permission, Check::Read, Check::Write, Check::Connect];

/// Generates the corpus.
///
/// # Panics
///
/// Panics if generated sources fail to parse — a bug in this crate, caught
/// by its tests.
pub fn generate(config: &CorpusConfig) -> Corpus {
    let mut sources: BTreeMap<Lib, String> = Lib::ALL
        .iter()
        .map(|&l| (l, String::with_capacity(1 << 20)))
        .collect();

    // Background mass: identical text appended to every member of a group.
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let depth = util_depth(config.scale);
    for (group, target) in GROUP_TARGETS {
        let n = ((target as f64) * config.scale).round() as usize;
        let text = emit_background(group, n.max(1), depth, &mut rng);
        for lib in Lib::ALL {
            if group.contains(lib) {
                sources.get_mut(&lib).unwrap().push_str(&text);
            }
        }
    }

    // Injected inconsistencies.
    let mut catalog = BugCatalog::default();
    for plan in bug_plans() {
        emit_bug(&plan, &mut sources);
        catalog.bugs.push(plan.into_record());
    }
    catalog.bugs.extend(figure_records());
    emit_figure_wrappers(&mut sources);

    // Assemble programs: prelude + figures + generated text.
    let mut programs = BTreeMap::new();
    for lib in Lib::ALL {
        let mut p = crate::prelude_program();
        for fig in ALL_FIGURES.iter().chain([&FP_GET_PROPERTY]) {
            if let Some(src) = fig.source(lib) {
                spo_jir::parse_into(src, &mut p)
                    .unwrap_or_else(|e| panic!("{} {lib}: {e}", fig.name));
            }
        }
        spo_jir::parse_into(&sources[&lib], &mut p)
            .unwrap_or_else(|e| panic!("generated {lib} source: {e}"));
        programs.insert(lib, p);
    }

    Corpus {
        config: *config,
        sources,
        programs,
        catalog,
    }
}

// ---------------------------------------------------------------------------
// Background emission
// ---------------------------------------------------------------------------

/// Utility-chain depth as a function of scale. Scale ≤ 1 keeps the
/// historical depth of 8 (sources at those scales stay byte-identical);
/// above that, depth grows logarithmically so `SPO_SCALE=10` reaches
/// Table-1-order call-graph depth (~21) without quadratic source blowup.
fn util_depth(scale: f64) -> usize {
    if scale <= 1.0 {
        8
    } else {
        ((8.0 + 4.0 * scale.log2()).round() as usize).min(32)
    }
}

fn emit_background(group: Group, n: usize, depth: usize, rng: &mut SmallRng) -> String {
    let mut out = String::new();
    let tag = group.tag();
    // Shared per-package utility layer with call fan-out: u0 calls u1
    // twice, u1 calls u2 twice, ... — a diamond-rich call DAG whose
    // re-analysis cost memoization collapses (Table 2). Levels past the
    // diamond head (j ≥ 5) chain with fan-out 1 down to the leaf at
    // `depth - 1`, so deeper corpora cost linearly more frames per cone.
    for pkg in PACKAGES {
        writeln!(out, "class gen.{tag}.{pkg}.Util {{").unwrap();
        for j in 0..depth {
            writeln!(out, "  method public static int u{j}(int x) {{").unwrap();
            writeln!(out, "    local int a, b;").unwrap();
            writeln!(out, "    a = x + {j};").unwrap();
            if j < 5 {
                writeln!(
                    out,
                    "    b = staticinvoke gen.{tag}.{pkg}.Util.u{}(a);",
                    j + 1
                )
                .unwrap();
                writeln!(
                    out,
                    "    b = staticinvoke gen.{tag}.{pkg}.Util.u{}(a);",
                    j + 1
                )
                .unwrap();
            } else if j < depth - 1 {
                writeln!(
                    out,
                    "    b = staticinvoke gen.{tag}.{pkg}.Util.u{}(a);",
                    j + 1
                )
                .unwrap();
            } else {
                writeln!(out, "    b = a * 2;").unwrap();
            }
            writeln!(out, "    return b;").unwrap();
            writeln!(out, "  }}").unwrap();
        }
        writeln!(out, "}}").unwrap();
    }

    let mut entries_left = n;
    let mut class_idx = 0usize;
    while entries_left > 0 {
        let in_class = entries_left.min(8);
        entries_left -= in_class;
        let pkg = PACKAGES[class_idx % PACKAGES.len()];
        writeln!(out, "class gen.{tag}.{pkg}.C{class_idx} {{").unwrap();
        for f in 0..3 {
            writeln!(out, "  field private int f{f};").unwrap();
        }
        for k in 0..in_class {
            emit_background_entry(&mut out, tag, pkg, class_idx, k, rng);
        }
        writeln!(out, "}}").unwrap();
        class_idx += 1;
    }
    out
}

fn emit_background_entry(
    out: &mut String,
    tag: &str,
    pkg: &str,
    class_idx: usize,
    k: usize,
    rng: &mut SmallRng,
) {
    let roll: u32 = rng.gen_range(0..100);
    if roll < 50 {
        // Field getter/setter: API-return event touching private state.
        writeln!(out, "  method public int m{k}(int x) {{").unwrap();
        writeln!(out, "    local int v;").unwrap();
        writeln!(out, "    this.f{} = x;", k % 3).unwrap();
        writeln!(out, "    v = this.f{};", k % 3).unwrap();
        writeln!(out, "    return v;").unwrap();
        writeln!(out, "  }}").unwrap();
    } else if roll < 78 {
        // Utility chain: interprocedural mass.
        let u = rng.gen_range(0..3);
        writeln!(out, "  method public int m{k}(int x) {{").unwrap();
        writeln!(out, "    local int v;").unwrap();
        writeln!(out, "    v = staticinvoke gen.{tag}.{pkg}.Util.u{u}(x);").unwrap();
        writeln!(out, "    return v;").unwrap();
        writeln!(out, "  }}").unwrap();
    } else if roll < 89 {
        // Unchecked native leaf.
        writeln!(out, "  method public void m{k}() {{").unwrap();
        writeln!(
            out,
            "    staticinvoke gen.{tag}.{pkg}.C{class_idx}.nat{k}();"
        )
        .unwrap();
        writeln!(out, "    return;").unwrap();
        writeln!(out, "  }}").unwrap();
        writeln!(out, "  method private static native void nat{k}();").unwrap();
    } else if roll < 96 {
        // Protected helper-style entry (protected methods are entry points
        // too).
        writeln!(out, "  method protected int m{k}(int x, int y) {{").unwrap();
        writeln!(out, "    local int v;").unwrap();
        writeln!(out, "    v = x + y;").unwrap();
        writeln!(out, "    return v;").unwrap();
        writeln!(out, "  }}").unwrap();
    } else {
        // Security-checked entry; identical in every implementation that
        // has it, so it never produces a difference.
        let check = BACKGROUND_CHECKS[rng.gen_range(0..BACKGROUND_CHECKS.len())];
        let args = check_args(check);
        let shape: u32 = rng.gen_range(0..3);
        writeln!(out, "  method public void m{k}(bool c) {{").unwrap();
        writeln!(out, "    local java.lang.SecurityManager sm;").unwrap();
        writeln!(
            out,
            "    sm = staticinvoke java.lang.System.getSecurityManager();"
        )
        .unwrap();
        match shape {
            0 => {
                // Unconditional: a must policy.
                writeln!(out, "    virtualinvoke sm.{}({args});", check.method_name()).unwrap();
            }
            1 => {
                // Guarded: a may policy.
                writeln!(out, "    if sm == null goto go;").unwrap();
                writeln!(out, "    virtualinvoke sm.{}({args});", check.method_name()).unwrap();
                writeln!(out, "  go:").unwrap();
                writeln!(out, "    nop;").unwrap();
            }
            _ => {
                // Disjunctive: different checks on alternative paths.
                let other = BACKGROUND_CHECKS
                    [(rng.gen_range(0..BACKGROUND_CHECKS.len() - 1) + 1) % BACKGROUND_CHECKS.len()];
                writeln!(out, "    if c goto alt;").unwrap();
                writeln!(out, "    virtualinvoke sm.{}({args});", check.method_name()).unwrap();
                writeln!(out, "    goto go;").unwrap();
                writeln!(out, "  alt:").unwrap();
                writeln!(
                    out,
                    "    virtualinvoke sm.{}({});",
                    other.method_name(),
                    check_args(other)
                )
                .unwrap();
                writeln!(out, "  go:").unwrap();
                writeln!(out, "    nop;").unwrap();
            }
        }
        writeln!(
            out,
            "    staticinvoke gen.{tag}.{pkg}.C{class_idx}.nat{k}();"
        )
        .unwrap();
        writeln!(out, "    return;").unwrap();
        writeln!(out, "  }}").unwrap();
        writeln!(out, "  method private static native void nat{k}();").unwrap();
    }
}

fn check_args(check: Check) -> String {
    vec!["null"; check.argc() as usize].join(", ")
}

// ---------------------------------------------------------------------------
// Injected bugs
// ---------------------------------------------------------------------------

/// Whether a bug site is a shared internal method (interprocedural root
/// cause) or written directly inside its entry point (intraprocedural).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SiteStyle {
    Helper,
    Inline,
}

struct BugPlan {
    id: &'static str,
    buggy: Lib,
    category: BugCategory,
    kind: BugKind,
    base_checks: &'static [Check],
    wrappers: &'static [(Group, usize)],
    style: SiteStyle,
}

impl BugPlan {
    fn into_record(self) -> BugRecord {
        let culprit = match self.style {
            SiteStyle::Helper => format!("gen.bug.{}.Impl.{}", self.id, self.site_method()),
            SiteStyle::Inline => {
                let (group, _) = self.wrappers[0];
                format!("gen.bug.{}.W{}.w0", self.id, group.tag())
            }
        };
        BugRecord {
            id: self.id.to_owned(),
            buggy_lib: self.buggy,
            category: self.category,
            kind: self.kind,
            culprit,
            wrappers: self.wrappers.to_vec(),
            broad_only: false,
        }
    }

    fn site_method(&self) -> &'static str {
        if matches!(self.kind, BugKind::IcpGuard(_)) {
            "guarded"
        } else {
            "doWork"
        }
    }
}

/// The full injection plan. Distinct-bug and manifestation counts per
/// pairing reproduce Table 3; see DESIGN.md for the accounting.
#[allow(clippy::too_many_lines)]
fn bug_plans() -> Vec<BugPlan> {
    use BugCategory::{FalsePositive, IcpOnly, Interop, Vulnerability};
    use BugKind::{
        DropAllChecks, DropCheck, ExtraCheck, IcpGuard, MustMayDowngrade, PrivilegedChecks,
        WrongCheck,
    };
    use Check as C;
    use Group::{All, ClasspathHarmony as CH, JdkClasspath as JC, JdkHarmony as JH};
    use Lib::{Classpath, Harmony, Jdk};
    use SiteStyle::{Helper, Inline};

    let plan = |id, buggy, category, kind, base_checks, wrappers, style| BugPlan {
        id,
        buggy,
        category,
        kind,
        base_checks,
        wrappers,
        style,
    };
    vec![
        // --- JDK vulnerabilities: checks inside privileged blocks (§6.2).
        plan(
            "jv1",
            Jdk,
            Vulnerability,
            PrivilegedChecks,
            &[C::CreateClassLoader],
            &[(JC, 4)],
            Helper,
        ),
        plan(
            "jv2",
            Jdk,
            Vulnerability,
            PrivilegedChecks,
            &[C::SetFactory],
            &[(JC, 4)],
            Helper,
        ),
        plan(
            "jv3",
            Jdk,
            Vulnerability,
            PrivilegedChecks,
            &[C::PropertiesAccess],
            &[(JC, 5)],
            Helper,
        ),
        plan(
            "jv4",
            Jdk,
            Vulnerability,
            PrivilegedChecks,
            &[C::Delete],
            &[(JC, 5)],
            Helper,
        ),
        plan(
            "jv5",
            Jdk,
            Vulnerability,
            PrivilegedChecks,
            &[C::Exec],
            &[(JH, 2)],
            Helper,
        ),
        // --- Harmony vulnerabilities (plus Figures 1 and 6).
        plan(
            "hv1",
            Harmony,
            Vulnerability,
            DropCheck(C::Listen),
            &[C::Listen],
            &[(All, 2), (CH, 1)],
            Helper,
        ),
        plan(
            "hv2",
            Harmony,
            Vulnerability,
            DropCheck(C::PackageAccess),
            &[C::PackageAccess],
            &[(All, 2), (CH, 1)],
            Helper,
        ),
        plan(
            "hv3",
            Harmony,
            Vulnerability,
            DropCheck(C::Write),
            &[C::Write, C::Read],
            &[(All, 2), (CH, 2)],
            Helper,
        ),
        plan(
            "hv4",
            Harmony,
            Vulnerability,
            DropAllChecks,
            &[C::AccessGroup],
            &[(JH, 2)],
            Helper,
        ),
        // --- Classpath vulnerabilities (plus Figure 7).
        plan(
            "cv1",
            Classpath,
            Vulnerability,
            DropCheck(C::Read),
            &[C::Read],
            &[(All, 2)],
            Helper,
        ),
        plan(
            "cv2",
            Classpath,
            Vulnerability,
            DropCheck(C::Connect),
            &[C::Connect, C::Accept],
            &[(All, 2)],
            Helper,
        ),
        plan(
            "cv3",
            Classpath,
            Vulnerability,
            DropAllChecks,
            &[C::PropertyAccess],
            &[(All, 2)],
            Helper,
        ),
        plan(
            "cv4",
            Classpath,
            Vulnerability,
            PrivilegedChecks,
            &[C::MemberAccess],
            &[(All, 2)],
            Helper,
        ),
        plan(
            "cv5",
            Classpath,
            Vulnerability,
            DropCheck(C::Multicast),
            &[C::Multicast],
            &[(JC, 5)],
            Helper,
        ),
        plan(
            "cv6",
            Classpath,
            Vulnerability,
            DropAllChecks,
            &[C::Link],
            &[(JC, 6)],
            Helper,
        ),
        plan(
            "cv7",
            Classpath,
            Vulnerability,
            DropCheck(C::TopLevelWindow),
            &[C::TopLevelWindow],
            &[(JC, 1)],
            Inline,
        ),
        // --- Interoperability bugs (plus Figure 8).
        plan(
            "ji1",
            Jdk,
            Interop,
            ExtraCheck(C::AwtEventQueueAccess),
            &[C::Read],
            &[(All, 2)],
            Helper,
        ),
        plan(
            "ji2",
            Jdk,
            Interop,
            ExtraCheck(C::PrintJobAccess),
            &[C::Write],
            &[(All, 3)],
            Helper,
        ),
        plan(
            "hi1",
            Harmony,
            Interop,
            ExtraCheck(C::SystemClipboardAccess),
            &[C::Read],
            &[(All, 5), (CH, 35)],
            Helper,
        ),
        plan(
            "hi2",
            Harmony,
            Interop,
            ExtraCheck(C::PackageDefinition),
            &[C::Connect],
            &[(All, 5), (CH, 35)],
            Helper,
        ),
        plan(
            "hi3",
            Harmony,
            Interop,
            ExtraCheck(C::MulticastTtl),
            &[C::Multicast],
            &[(All, 5), (CH, 30)],
            Helper,
        ),
        plan(
            "hi4",
            Harmony,
            Interop,
            ExtraCheck(C::ReadFd),
            &[C::Read],
            &[(JH, 7)],
            Helper,
        ),
        plan(
            "hi5",
            Harmony,
            Interop,
            ExtraCheck(C::WriteFd),
            &[C::Write],
            &[(JH, 6)],
            Helper,
        ),
        plan(
            "hi6",
            Harmony,
            Interop,
            MustMayDowngrade(C::SecurityAccess),
            &[C::SecurityAccess],
            &[(JH, 5)],
            Helper,
        ),
        plan(
            "ci1",
            Classpath,
            Interop,
            ExtraCheck(C::ConnectContext),
            &[C::Connect],
            &[(JC, 108)],
            Helper,
        ),
        plan(
            "ci2",
            Classpath,
            Interop,
            ExtraCheck(C::ReadContext),
            &[C::Read],
            &[(JC, 108)],
            Helper,
        ),
        // --- False positives (plus the Security.getProperty figure).
        plan(
            "fp2",
            Harmony,
            FalsePositive,
            WrongCheck {
                expected: C::PropertyAccess,
                actual: C::PropertiesAccess,
            },
            &[C::PropertyAccess],
            &[(All, 1)],
            Helper,
        ),
        plan(
            "fp3",
            Harmony,
            FalsePositive,
            WrongCheck {
                expected: C::Access,
                actual: C::AccessGroup,
            },
            &[C::Access],
            &[(All, 1)],
            Helper,
        ),
        // --- ICP-only near-misses (plus Figure 4).
        plan(
            "icp1",
            Jdk,
            IcpOnly,
            IcpGuard(C::Permission),
            &[],
            &[(All, 8)],
            Helper,
        ),
        plan(
            "icp2",
            Harmony,
            IcpOnly,
            IcpGuard(C::PermissionContext),
            &[],
            &[(All, 12)],
            Helper,
        ),
        plan(
            "icp3",
            Classpath,
            IcpOnly,
            IcpGuard(C::MemberAccess),
            &[],
            &[(All, 25)],
            Helper,
        ),
        plan(
            "icp4",
            Jdk,
            IcpOnly,
            IcpGuard(C::Delete),
            &[],
            &[(All, 14)],
            Helper,
        ),
        plan(
            "icp5",
            Classpath,
            IcpOnly,
            IcpGuard(C::Exec),
            &[],
            &[(All, 25)],
            Helper,
        ),
    ]
}

/// Ground-truth records for the paper-figure scenarios (code lives in
/// [`figures`](crate::figures)).
fn figure_records() -> Vec<BugRecord> {
    use BugCategory::{FalsePositive, IcpOnly, Interop, Vulnerability};
    use Check as C;
    let rec = |id: &str,
               buggy,
               category,
               kind,
               culprit: &str,
               wrappers: Vec<(Group, usize)>,
               broad_only| BugRecord {
        id: id.to_owned(),
        buggy_lib: buggy,
        category,
        kind,
        culprit: culprit.to_owned(),
        wrappers,
        broad_only,
    };
    vec![
        rec(
            "fig1",
            Lib::Harmony,
            Vulnerability,
            BugKind::DropCheck(C::Accept),
            "java.net.DatagramSocket.connectInternal",
            vec![(Group::All, 1)],
            false,
        ),
        rec(
            "fig3",
            Lib::Harmony,
            Vulnerability,
            BugKind::DropCheck(C::Read),
            "hypo.Holder.a",
            vec![(Group::All, 1)],
            true,
        ),
        rec(
            "fig4",
            Lib::Harmony,
            IcpOnly,
            BugKind::IcpGuard(C::Permission),
            "java.net.URL.initFull",
            vec![(Group::All, 1)],
            false,
        ),
        rec(
            "fig5",
            Lib::Jdk,
            Vulnerability,
            BugKind::DropCheck(C::Read),
            "java.lang.RuntimeLib.loadLib",
            vec![(Group::JdkClasspath, 3)],
            false,
        ),
        rec(
            "fig6",
            Lib::Harmony,
            Vulnerability,
            BugKind::DropAllChecks,
            "java.net.URLConnection.openConnection",
            vec![(Group::JdkHarmony, 1)],
            false,
        ),
        rec(
            "fig7",
            Lib::Classpath,
            Vulnerability,
            BugKind::DropAllChecks,
            "java.net.Socket.connect",
            vec![(Group::All, 4), (Group::JdkClasspath, 36)],
            false,
        ),
        rec(
            "fig8",
            Lib::Jdk,
            Interop,
            BugKind::ExtraCheck(C::Exit),
            "java.lang.System.exit",
            vec![(Group::All, 1)],
            false,
        ),
        rec(
            "figfp",
            Lib::Harmony,
            FalsePositive,
            BugKind::WrongCheck {
                expected: C::Permission,
                actual: C::SecurityAccess,
            },
            "java.security.Security.getProperty",
            vec![(Group::All, 1)],
            false,
        ),
    ]
}

fn emit_bug(plan: &BugPlan, sources: &mut BTreeMap<Lib, String>) {
    let member_libs: Vec<Lib> = Lib::ALL
        .into_iter()
        .filter(|&l| plan.wrappers.iter().any(|(g, _)| g.contains(l)))
        .collect();
    // The site (shared internal method or inline body per wrapper).
    if plan.style == SiteStyle::Helper {
        for &lib in &member_libs {
            let text = render_impl_class(plan, lib == plan.buggy);
            sources.get_mut(&lib).unwrap().push_str(&text);
        }
    }
    // Wrappers.
    for &(group, count) in plan.wrappers {
        for &lib in &member_libs {
            if !group.contains(lib) {
                continue;
            }
            let text = match plan.style {
                SiteStyle::Helper => render_wrapper_class(plan, group, count),
                SiteStyle::Inline => render_inline_class(plan, group, count, lib == plan.buggy),
            };
            sources.get_mut(&lib).unwrap().push_str(&text);
        }
    }
}

/// Renders the shared internal site class for one implementation.
fn render_impl_class(plan: &BugPlan, buggy: bool) -> String {
    let id = plan.id;
    let mut out = String::new();
    writeln!(out, "class gen.bug.{id}.Impl {{").unwrap();
    if let BugKind::IcpGuard(check) = plan.kind {
        // Correct libs call the native directly; the differing lib routes
        // through a constant-null-guarded helper (Figure 4's shape).
        writeln!(out, "  method static void enter(int x) {{").unwrap();
        if buggy {
            writeln!(out, "    staticinvoke gen.bug.{id}.Impl.guarded(null, x);").unwrap();
        } else {
            writeln!(out, "    staticinvoke gen.bug.{id}.Impl.nat(x);").unwrap();
        }
        writeln!(out, "    return;").unwrap();
        writeln!(out, "  }}").unwrap();
        if buggy {
            writeln!(
                out,
                "  method static void guarded(java.lang.Object h, int x) {{"
            )
            .unwrap();
            writeln!(out, "    local java.lang.SecurityManager sm;").unwrap();
            writeln!(
                out,
                "    sm = staticinvoke java.lang.System.getSecurityManager();"
            )
            .unwrap();
            writeln!(out, "    if sm == null goto go;").unwrap();
            writeln!(out, "    if h == null goto go;").unwrap();
            writeln!(
                out,
                "    virtualinvoke sm.{}({});",
                check.method_name(),
                check_args(check)
            )
            .unwrap();
            writeln!(out, "  go:").unwrap();
            writeln!(out, "    staticinvoke gen.bug.{id}.Impl.nat(x);").unwrap();
            writeln!(out, "    return;").unwrap();
            writeln!(out, "  }}").unwrap();
        }
        writeln!(out, "  method private static native void nat(int x);").unwrap();
        writeln!(out, "}}").unwrap();
        return out;
    }

    writeln!(out, "  method static void doWork(int x) {{").unwrap();
    writeln!(out, "    local java.lang.SecurityManager sm;").unwrap();
    writeln!(
        out,
        "    sm = staticinvoke java.lang.System.getSecurityManager();"
    )
    .unwrap();
    render_check_block(&mut out, plan, buggy);
    writeln!(out, "    staticinvoke gen.bug.{id}.Impl.nat(x);").unwrap();
    writeln!(out, "    return;").unwrap();
    writeln!(out, "  }}").unwrap();
    writeln!(out, "  method private static native void nat(int x);").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Renders the check section of a bug site, applying the plan's mutation
/// for the buggy implementation.
fn render_check_block(out: &mut String, plan: &BugPlan, buggy: bool) {
    let line = |out: &mut String, c: Check| {
        writeln!(
            out,
            "    virtualinvoke sm.{}({});",
            c.method_name(),
            check_args(c)
        )
        .unwrap();
    };
    match (plan.kind, buggy) {
        (BugKind::MustMayDowngrade(c), false) => {
            // Correct: unconditional (a must policy).
            line(out, c);
        }
        (BugKind::MustMayDowngrade(c), true) => {
            // Buggy: conditional on a parameter (a may policy).
            writeln!(out, "    if x == 0 goto go;").unwrap();
            line(out, c);
            writeln!(out, "  go:").unwrap();
            writeln!(out, "    nop;").unwrap();
        }
        (BugKind::PrivilegedChecks, true) => {
            writeln!(out, "    privileged {{").unwrap();
            for &c in plan.base_checks {
                line(out, c);
            }
            writeln!(out, "    }}").unwrap();
        }
        (BugKind::DropAllChecks, true) => {}
        (BugKind::DropCheck(dropped), true) => {
            for &c in plan.base_checks {
                if c != dropped {
                    line(out, c);
                }
            }
        }
        (BugKind::ExtraCheck(extra), true) => {
            for &c in plan.base_checks {
                line(out, c);
            }
            line(out, extra);
        }
        (BugKind::WrongCheck { expected, actual }, true) => {
            for &c in plan.base_checks {
                if c == expected {
                    line(out, actual);
                } else {
                    line(out, c);
                }
            }
        }
        // The correct implementations all perform the base checks.
        (_, false) => {
            for &c in plan.base_checks {
                line(out, c);
            }
        }
        (BugKind::IcpGuard(_), true) => unreachable!("handled in render_impl_class"),
    }
}

fn render_wrapper_class(plan: &BugPlan, group: Group, count: usize) -> String {
    let id = plan.id;
    let entry = if matches!(plan.kind, BugKind::IcpGuard(_)) {
        "enter"
    } else {
        "doWork"
    };
    let mut out = String::new();
    writeln!(out, "class gen.bug.{id}.W{} {{", group.tag()).unwrap();
    for n in 0..count {
        writeln!(out, "  method public void w{n}(int x) {{").unwrap();
        writeln!(out, "    staticinvoke gen.bug.{id}.Impl.{entry}(x);").unwrap();
        writeln!(out, "    return;").unwrap();
        writeln!(out, "  }}").unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Renders an inline bug site: each wrapper method contains the pattern
/// directly (an intraprocedural root cause).
fn render_inline_class(plan: &BugPlan, group: Group, count: usize, buggy: bool) -> String {
    let id = plan.id;
    let mut out = String::new();
    writeln!(out, "class gen.bug.{id}.W{} {{", group.tag()).unwrap();
    for n in 0..count {
        writeln!(out, "  method public void w{n}(int x) {{").unwrap();
        writeln!(out, "    local java.lang.SecurityManager sm;").unwrap();
        writeln!(
            out,
            "    sm = staticinvoke java.lang.System.getSecurityManager();"
        )
        .unwrap();
        render_check_block(&mut out, plan, buggy);
        writeln!(
            out,
            "    staticinvoke gen.bug.{id}.W{}.nat(x);",
            group.tag()
        )
        .unwrap();
        writeln!(out, "    return;").unwrap();
        writeln!(out, "  }}").unwrap();
    }
    writeln!(out, "  method private static native void nat(int x);").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Extra wrapper entries that call into figure APIs, giving the figure bugs
/// their Table 3 manifestation counts.
fn emit_figure_wrappers(sources: &mut BTreeMap<Lib, String>) {
    // Figure 5: two additional JDK/Classpath entries reach
    // RuntimeLib.loadLibrary.
    let fig5 = r#"
class gen.bug.fig5.Wjc {
  method public void w0(java.lang.String name) {
    local java.lang.RuntimeLib r;
    r = new java.lang.RuntimeLib;
    virtualinvoke r.loadLibrary(name);
    return;
  }
  method public void w1(java.lang.String name) {
    local java.lang.RuntimeLib r;
    r = new java.lang.RuntimeLib;
    virtualinvoke r.loadLibrary(name);
    return;
  }
}
"#;
    for lib in [Lib::Jdk, Lib::Classpath] {
        sources.get_mut(&lib).unwrap().push_str(fig5);
    }
    // Figure 7: Socket.connect is reachable from many contexts — 3 extra
    // entries shared by all, 36 shared by JDK and Classpath only.
    let mut all = String::from("class gen.bug.fig7.Wall {\n");
    for n in 0..3 {
        write!(
            all,
            "  method public void w{n}(java.net.SocketAddress ep, int t) {{\n    local java.net.Socket s;\n    s = new java.net.Socket;\n    virtualinvoke s.connect(ep, t);\n    return;\n  }}\n"
        )
        .unwrap();
    }
    all.push_str("}\n");
    for lib in Lib::ALL {
        sources.get_mut(&lib).unwrap().push_str(&all);
    }
    let mut jc = String::from("class gen.bug.fig7.Wjc {\n");
    for n in 0..36 {
        write!(
            jc,
            "  method public void w{n}(java.net.SocketAddress ep, int t) {{\n    local java.net.Socket s;\n    s = new java.net.Socket;\n    virtualinvoke s.connect(ep, t);\n    return;\n  }}\n"
        )
        .unwrap();
    }
    jc.push_str("}\n");
    for lib in [Lib::Jdk, Lib::Classpath] {
        sources.get_mut(&lib).unwrap().push_str(&jc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generates_and_parses() {
        let corpus = generate(&CorpusConfig::test_sized());
        for lib in Lib::ALL {
            let p = corpus.program(lib);
            assert!(p.class_count() > 50, "{lib}: {}", p.class_count());
            assert!(corpus.loc(lib) > 500);
        }
        assert!(corpus.catalog.bugs.len() > 30);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusConfig::test_sized());
        let b = generate(&CorpusConfig::test_sized());
        for lib in Lib::ALL {
            assert_eq!(a.sources[&lib], b.sources[&lib]);
        }
    }

    #[test]
    fn scale_changes_background_size_only() {
        let small = generate(&CorpusConfig {
            scale: 0.01,
            ..Default::default()
        });
        let larger = generate(&CorpusConfig {
            scale: 0.05,
            ..Default::default()
        });
        assert!(larger.sources[&Lib::Jdk].len() > small.sources[&Lib::Jdk].len());
        assert_eq!(small.catalog.bugs.len(), larger.catalog.bugs.len());
    }

    #[test]
    fn util_depth_fixed_at_or_below_scale_one_and_grows_above() {
        assert_eq!(util_depth(0.02), 8);
        assert_eq!(util_depth(1.0), 8);
        assert_eq!(util_depth(3.0), 14);
        assert_eq!(util_depth(10.0), 21);
        // Bounded, however absurd the scale.
        assert_eq!(util_depth(1e9), 32);
    }

    #[test]
    fn deep_utility_chain_emits_and_parses() {
        let mut rng = SmallRng::seed_from_u64(7);
        let depth = util_depth(10.0);
        let text = emit_background(Group::All, 4, depth, &mut rng);
        assert!(text.contains("u20"), "deepest level present");
        assert!(!text.contains("u21"), "depth bounded");
        let mut p = crate::prelude_program();
        spo_jir::parse_into(&text, &mut p).expect("deep chain parses");
    }

    #[test]
    fn expected_pairing_counts_match_table_3() {
        let corpus = generate(&CorpusConfig::test_sized());
        let cat = &corpus.catalog;
        // Classpath vs Harmony column.
        let ch = cat.expected(Lib::Classpath, Lib::Harmony);
        assert_eq!(ch.vulns[&Lib::Classpath], (5, 12));
        assert_eq!(ch.vulns[&Lib::Harmony], (4, 11));
        assert_eq!(ch.interop, (3, 115));
        assert_eq!(ch.false_positives, (3, 3));
        assert_eq!(ch.icp_eliminated.0, 4);
        // JDK vs Harmony column.
        let jh = cat.expected(Lib::Jdk, Lib::Harmony);
        assert_eq!(jh.vulns[&Lib::Jdk], (1, 2));
        assert_eq!(jh.vulns[&Lib::Harmony], (6, 10));
        assert_eq!(jh.interop, (9, 39));
        assert_eq!(jh.false_positives, (3, 3));
        assert_eq!(jh.icp_eliminated.0, 4);
        // JDK vs Classpath column.
        let jc = cat.expected(Lib::Jdk, Lib::Classpath);
        assert_eq!(jc.vulns[&Lib::Jdk], (5, 21));
        assert_eq!(jc.vulns[&Lib::Classpath], (8, 60));
        assert_eq!(jc.interop, (5, 222));
        assert_eq!(jc.false_positives, (0, 0));
        assert_eq!(jc.icp_eliminated.0, 4);
        // Totals.
        assert_eq!(cat.total_vulnerabilities(Lib::Jdk), 6);
        assert_eq!(cat.total_vulnerabilities(Lib::Harmony), 6);
        assert_eq!(cat.total_vulnerabilities(Lib::Classpath), 8);
    }
}
