//! Cone-batched, SCC-aware root scheduling.
//!
//! Stealing single roots spreads a call-graph cone's memoizable interior
//! across workers: two roots that share most of their callees end up on
//! different threads, and the summaries they could have exchanged through
//! a worker-local buffer instead cross the sharded store (or are
//! recomputed when a write-behind buffer has not flushed yet). This module
//! groups the work list into **batches of cone-overlapping roots** so
//! those memo hits stay worker-local, and orders the batches **deepest
//! cone first** so the bottom of the call graph is computed, flushed, and
//! shared before the broad shallow tail arrives.
//!
//! The plan is a scheduling hint only: analysis results, report bytes, and
//! the deterministic stats sections are independent of batch shape (see
//! the crate-level determinism argument). The plan itself is nevertheless
//! a pure function of `(program, work, workers)` — built from ordered
//! maps, with explicit tie-breaks — so traces and work counters are
//! reproducible run to run.
//!
//! Formation pipeline:
//!
//! 1. Build the unique-target call graph over the work roots (the same
//!    [`CallGraph`] the cache keyer uses).
//! 2. Union roots through shared **connector** callees — body-bearing
//!    methods whose fan-in stays under a cap. The cap exists for hubs like
//!    `System.getSecurityManager`, which almost every root calls: without
//!    it every root collapses into one mega-cluster and the plan
//!    degenerates to a single batch.
//! 3. Split each cluster into batches of at most `work / (workers * 4)`
//!    roots (floor 1, cap 64) so every worker has several batches to
//!    steal.
//! 4. Compute each root's cone depth on the SCC condensation of the call
//!    graph (Tarjan; cycles collapse to one node so recursion does not
//!    inflate depth), order batches deepest-first, and deal them to the
//!    least-loaded worker in that order.

use spo_jir::{MethodId, Program};
use spo_resolve::{CallGraph, Hierarchy};
use std::collections::{HashMap, VecDeque};

/// Per-worker batch deques plus formation metadata.
pub(crate) struct SchedulePlan {
    /// One deque per worker; each batch is a list of root indices (the
    /// engine's `work` values). Workers pop their own front and steal
    /// whole batches from a victim's back.
    pub deques: Vec<VecDeque<Vec<usize>>>,
    /// Number of batches formed (the `batch.formed` work counter).
    pub formed: u64,
}

/// Largest batch the splitter will form, regardless of worker count: a
/// batch is also the write-behind flush granularity, and an unbounded one
/// would keep a giant cone's summaries invisible to other workers for the
/// whole batch.
const MAX_BATCH: usize = 64;

/// Builds the batch plan for `work` (indices into `roots`) over `workers`
/// deques.
pub(crate) fn plan(
    program: &Program,
    roots: &[MethodId],
    work: &[usize],
    workers: usize,
) -> SchedulePlan {
    if workers <= 1 || work.len() <= 1 {
        // One worker (or one root): a single batch, no graph to build.
        // The write-behind buffer still bounds flush latency through its
        // own capacity.
        let deques = vec![VecDeque::from(vec![work.to_vec()]); workers.max(1)];
        let formed = deques[0].len() as u64;
        return SchedulePlan { deques, formed };
    }

    let hierarchy = Hierarchy::new(program);
    let work_roots: Vec<MethodId> = work.iter().map(|&idx| roots[idx]).collect();
    let graph = CallGraph::build(&hierarchy, work_roots.clone());
    let depths = scc_depths(&graph);

    // Fan-in per callee over the whole graph, to identify connector
    // methods. A connector may join at most a quarter of the work list
    // into one cluster; anything broader is a hub whose sharing is global
    // anyway (its one summary serves every worker after the first flush).
    let mut fan_in: HashMap<MethodId, usize> = HashMap::new();
    for m in graph.reachable() {
        for &callee in graph.callees(m) {
            *fan_in.entry(callee).or_default() += 1;
        }
    }
    let fan_in_cap = (work.len() / 4).max(2);

    // Union-find over work positions, joined through connector callees.
    let mut uf = UnionFind::new(work.len());
    let mut owner: HashMap<MethodId, usize> = HashMap::new();
    for (pos, &root) in work_roots.iter().enumerate() {
        for &callee in graph.callees(root) {
            if program.method(callee).body.is_none() {
                continue;
            }
            if fan_in.get(&callee).copied().unwrap_or(0) > fan_in_cap {
                continue;
            }
            match owner.entry(callee) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    uf.union(*first.get(), pos);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(pos);
                }
            }
        }
    }

    // Collect clusters in ascending first-member order (positions are
    // ascending root indices, so this is deterministic), then split into
    // capped batches.
    // Floor 8 keeps small clusters intact on small work lists (splitting
    // a 4-root cone across 4 single-root batches would defeat the
    // grouping); the cap bounds flush latency at scale.
    let max_batch = (work.len() / (workers * 4)).clamp(8, MAX_BATCH);
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut cluster_of: HashMap<usize, usize> = HashMap::new();
    for pos in 0..work.len() {
        let class = uf.find(pos);
        let slot = *cluster_of.entry(class).or_insert_with(|| {
            clusters.push(Vec::new());
            clusters.len() - 1
        });
        clusters[slot].push(pos);
    }
    let mut batches: Vec<(u32, Vec<usize>)> = Vec::new();
    for cluster in clusters {
        for chunk in cluster.chunks(max_batch) {
            // Batch depth: the deepest cone among its members.
            let depth = chunk
                .iter()
                .map(|&pos| depths.get(&work_roots[pos]).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            batches.push((depth, chunk.iter().map(|&pos| work[pos]).collect()));
        }
    }

    // Deepest cones first (their flushed summaries seed the store bottom-
    // up); ties broken by first root index so the order is total.
    batches.sort_by(|(da, a), (db, b)| db.cmp(da).then(a.first().cmp(&b.first())));

    // Coalesce under-filled chunks of equal depth. Library corpora are
    // dominated by singleton cones (getters, native leaves), and leaving
    // each as its own batch would put deque traffic back on the per-root
    // path that batching exists to amortize. Merging only equal-depth
    // neighbors in the sorted order keeps the plan deterministic and the
    // deepest-first sweep intact.
    let mut coalesced: Vec<(u32, Vec<usize>)> = Vec::new();
    for (depth, batch) in batches {
        match coalesced.last_mut() {
            Some((d, roots)) if *d == depth && roots.len() + batch.len() <= max_batch => {
                roots.extend(batch);
            }
            _ => coalesced.push((depth, batch)),
        }
    }
    let batches = coalesced;

    // Deal to the least-loaded worker (by root count; ties to the lowest
    // worker id), appending to its deque so each worker sees its own
    // batches deepest-first too.
    let formed = batches.len() as u64;
    let mut deques: Vec<VecDeque<Vec<usize>>> = vec![VecDeque::new(); workers];
    let mut load = vec![0usize; workers];
    for (_, batch) in batches {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap_or(0);
        load[w] += batch.len();
        deques[w].push_back(batch);
    }
    SchedulePlan { deques, formed }
}

/// Cone depth per reachable method on the SCC condensation of the call
/// graph: leaves (and body-less methods) have depth 1; a method's depth is
/// one more than its deepest callee SCC; all members of a cycle share one
/// depth.
fn scc_depths(graph: &CallGraph) -> HashMap<MethodId, u32> {
    // Index the reachable methods (BTreeMap order: deterministic).
    let methods: Vec<MethodId> = graph.reachable().collect();
    let index: HashMap<MethodId, usize> =
        methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let succs: Vec<Vec<usize>> = methods
        .iter()
        .map(|&m| {
            graph
                .callees(m)
                .iter()
                .filter_map(|c| index.get(c).copied())
                .collect()
        })
        .collect();
    let n = methods.len();

    // Iterative Tarjan SCC.
    let mut scc_of = vec![usize::MAX; n];
    let mut low = vec![0u32; n];
    let mut disc = vec![u32::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_disc = 0u32;
    let mut scc_count = 0usize;
    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if disc[start] != u32::MAX {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            if *next == 0 {
                disc[v] = next_disc;
                low[v] = next_disc;
                next_disc += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*next) {
                *next += 1;
                if disc[w] == u32::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(disc[w]);
                }
                continue;
            }
            // All successors explored: close the frame.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == disc[v] {
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    scc_of[w] = scc_count;
                    if w == v {
                        break;
                    }
                }
                scc_count += 1;
            }
        }
    }

    // Condensation depth, bottom-up. Tarjan emits SCCs in reverse
    // topological order (callees before callers), so a single ascending
    // sweep over SCC ids sees every successor's depth first.
    let mut scc_depth = vec![1u32; scc_count];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); scc_count];
    for (v, &s) in scc_of.iter().enumerate() {
        members[s].push(v);
    }
    for s in 0..scc_count {
        let mut depth = 1u32;
        for &v in &members[s] {
            for &w in &succs[v] {
                let t = scc_of[w];
                if t != s {
                    depth = depth.max(scc_depth[t].saturating_add(1));
                }
            }
        }
        scc_depth[s] = depth;
    }

    methods
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, scc_depth[scc_of[i]]))
        .collect()
}

/// Path-halving union-find over work positions.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins so cluster identity follows the earliest
            // member — deterministic regardless of union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        spo_jir::parse_program(
            r#"
class t.C {
  method public void a() { staticinvoke t.C.u0(); return; }
  method public void b() { staticinvoke t.C.u0(); return; }
  method public void c() { staticinvoke t.C.v0(); return; }
  method public void d() { return; }
  method private static void u0() { staticinvoke t.C.u1(); return; }
  method private static void u1() { staticinvoke t.C.u2(); return; }
  method private static void u2() { return; }
  method private static void v0() { staticinvoke t.C.v0(); return; }
}
"#,
        )
        .unwrap()
    }

    fn roots(p: &Program) -> Vec<MethodId> {
        spo_resolve::entry_points(p)
    }

    #[test]
    fn single_worker_takes_one_batch_without_graph_work() {
        let p = program();
        let r = roots(&p);
        let work: Vec<usize> = (0..r.len()).collect();
        let plan = plan(&p, &r, &work, 1);
        assert_eq!(plan.deques.len(), 1);
        assert_eq!(plan.formed, 1);
        assert_eq!(plan.deques[0][0], work);
    }

    #[test]
    fn cone_overlapping_roots_share_a_batch() {
        let p = program();
        let r = roots(&p);
        let work: Vec<usize> = (0..r.len()).collect();
        let plan = plan(&p, &r, &work, 2);
        assert_eq!(
            plan.formed as usize,
            plan.deques.iter().map(VecDeque::len).sum::<usize>()
        );
        // `a` and `b` both call u0 (fan-in 2 ≤ cap): same batch.
        let sig_of = |idx: usize| p.method_signature(r[idx]);
        let batch_of = |idx: usize| {
            plan.deques
                .iter()
                .flat_map(|d| d.iter())
                .position(|b| b.contains(&idx))
        };
        let (a, b_) = (
            (0..r.len()).find(|&i| sig_of(i) == "t.C.a()").unwrap(),
            (0..r.len()).find(|&i| sig_of(i) == "t.C.b()").unwrap(),
        );
        assert_eq!(batch_of(a), batch_of(b_), "a and b share their cone");
        // Every root lands in exactly one batch.
        let mut seen: Vec<usize> = plan
            .deques
            .iter()
            .flat_map(|d| d.iter())
            .flatten()
            .copied()
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, work);
    }

    #[test]
    fn plan_is_deterministic() {
        let p = program();
        let r = roots(&p);
        let work: Vec<usize> = (0..r.len()).collect();
        let a = plan(&p, &r, &work, 3);
        let b = plan(&p, &r, &work, 3);
        assert_eq!(a.deques, b.deques);
        assert_eq!(a.formed, b.formed);
    }

    #[test]
    fn scc_depths_collapse_cycles_and_order_chains() {
        let p = program();
        let r = roots(&p);
        let hierarchy = Hierarchy::new(&p);
        let graph = CallGraph::build(&hierarchy, r.clone());
        let depths = scc_depths(&graph);
        let d = |sig: &str| {
            let (id, _) = p
                .all_methods()
                .find(|(id, _)| p.method_signature(*id) == sig)
                .unwrap();
            depths.get(&id).copied().unwrap()
        };
        // Chain: u2 (leaf) < u1 < u0 < a.
        assert!(d("t.C.u2()") < d("t.C.u1()"));
        assert!(d("t.C.u1()") < d("t.C.u0()"));
        assert!(d("t.C.u0()") < d("t.C.a()"));
        // Self-recursive v0 is one SCC: finite depth, caller one deeper.
        assert_eq!(d("t.C.c()"), d("t.C.v0()") + 1);
    }
}
