//! # spo-engine — the parallel analysis driver
//!
//! The policy analysis is embarrassingly parallel across API entry points:
//! each root's MAY/MUST passes only read the program and the shared memo
//! table. This crate drives one library's entry points across N
//! work-stealing workers backed by a sharded concurrent
//! [`SharedStore`], then merges the per-root policies **in root order** so
//! the result is byte-identical to the serial analyzer no matter the
//! thread count.
//!
//! ## Why parallel results equal serial results
//!
//! * Only *clean* summaries — whose subtree was not cut by recursion — are
//!   memoized, and a clean summary is a pure function of its memo key
//!   `(method, in-policy, const-params, privileged)`. A memo hit therefore
//!   returns exactly what recomputation would have produced, regardless of
//!   which worker (or run) inserted it.
//! * Per-root analysis state (the call stack, the recursion taint floor)
//!   lives in the worker, never in the shared store.
//! * The serial analyzer resolves signature collisions between roots
//!   first-root-wins in program order; the engine merges per-root results
//!   by ascending root index, reproducing that exactly.
//!
//! ```
//! use spo_engine::AnalysisEngine;
//! use spo_core::{AnalysisOptions, Analyzer};
//!
//! let program = spo_jir::parse_program(r#"
//! class t.A {
//!   method public void m() {
//!     staticinvoke t.A.op0();
//!     return;
//!   }
//!   method private static native void op0();
//! }
//! "#).unwrap();
//! let options = AnalysisOptions::default();
//! let serial = Analyzer::new(&program, options).analyze_library("t");
//! let (parallel, stats) = AnalysisEngine::new(4).analyze_library(&program, "t", options);
//! assert_eq!(serial.entries, parallel.entries);
//! assert_eq!(stats.entry_points, 1);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod schedule;

use spo_cache::{CacheKeyer, ContentTable, PolicyCache};
use spo_core::{
    diff_libraries, group_differences, root_keys, AnalysisOptions, AnalysisStats, Analyzer,
    DiffResult, EntryPolicy, LibraryPolicies, LocalStore, MemoScope, ReportGroup, ShardStats,
    SharedStore, WriteBehind, DEFAULT_SHARDS,
};
use spo_dataflow::{Dnf, MustSet};
use spo_guard::{quarantine, Diagnostic, Fault, GuardConfig};
use spo_jir::{method_identity_hash, MethodId, Program};
use spo_obs::trace::{self, TraceLane, Tracer};
use spo_obs::{HistSnapshot, Recorder};
use spo_resolve::entry_points;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-run statistics of one engine invocation.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Entry points analyzed.
    pub entry_points: usize,
    /// Analysis counters summed over all workers (frames, memo hits and
    /// misses, unresolved calls, per-pass CPU time).
    pub analysis: AnalysisStats,
    /// Roots taken from another worker's deque (every root of a stolen
    /// batch counts).
    pub steals: u64,
    /// Whole batches taken from another worker's deque — the steal
    /// granularity, alongside the per-root `steals`.
    pub batches_stolen: u64,
    /// Cone-overlap batches formed by the scheduler for this run.
    pub batches_formed: u64,
    /// Shard-grouped write-behind publications performed across all
    /// workers (0 with direct publication or non-global memo scopes).
    pub writeback_flushes: u64,
    /// Lookups served from a worker-local write-behind buffer without
    /// touching a shard lock.
    pub writeback_deferred_hits: u64,
    /// Per-shard counters of the MAY-pass summary store (empty unless the
    /// memo scope was [`MemoScope::Global`]).
    pub may_shards: Vec<ShardStats>,
    /// Per-shard counters of the MUST-pass summary store.
    pub must_shards: Vec<ShardStats>,
    /// Wall-clock time of the whole run, in nanoseconds.
    pub wall_nanos: u128,
    /// Roots quarantined by the guard layer (panic, budget exhaustion, or
    /// cancellation) instead of producing a policy.
    pub roots_degraded: u64,
    /// Roots warm-started from the persistent summary cache (0 unless a
    /// cache is attached).
    pub cache_hits: u64,
    /// Roots analyzed cold because the cache had no usable entry (miss or
    /// invalidated). 0 unless a cache is attached.
    pub cache_misses: u64,
}

impl EngineStats {
    /// Total contended lock acquisitions across both stores' shards.
    pub fn contended(&self) -> u64 {
        self.may_shards
            .iter()
            .chain(&self.must_shards)
            .map(|s| s.contended)
            .sum()
    }

    /// All shard lock-wait observations of both stores merged into one
    /// histogram (nanoseconds blocked per contended acquisition) — the
    /// bench tables' contention-summary source.
    pub fn lock_wait(&self) -> HistSnapshot {
        let mut merged = HistSnapshot::default();
        for s in self.may_shards.iter().chain(&self.must_shards) {
            merged.merge(&s.lock_wait);
        }
        merged
    }

    /// Accumulates another run's counters (used when one logical operation
    /// spans several engine invocations).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.workers = self.workers.max(other.workers);
        self.entry_points += other.entry_points;
        self.analysis.absorb(&other.analysis);
        self.steals += other.steals;
        self.batches_stolen += other.batches_stolen;
        self.batches_formed += other.batches_formed;
        self.writeback_flushes += other.writeback_flushes;
        self.writeback_deferred_hits += other.writeback_deferred_hits;
        self.wall_nanos += other.wall_nanos;
        self.roots_degraded += other.roots_degraded;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        absorb_shards(&mut self.may_shards, &other.may_shards);
        absorb_shards(&mut self.must_shards, &other.must_shards);
    }
}

fn absorb_shards(into: &mut Vec<ShardStats>, from: &[ShardStats]) {
    if into.len() < from.len() {
        into.resize(from.len(), ShardStats::default());
    }
    for (a, b) in into.iter_mut().zip(from) {
        a.hits += b.hits;
        a.misses += b.misses;
        a.contended += b.contended;
        a.entries += b.entries;
        a.lock_wait.merge(&b.lock_wait);
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers, {} entry points, {} frames, {} memo hits, {} steals, \
             {} contended, wall {:.1}ms",
            self.workers,
            self.entry_points,
            self.analysis.frames_analyzed,
            self.analysis.memo_hits,
            self.steals,
            self.contended(),
            self.wall_nanos as f64 / 1e6,
        )
    }
}

/// One pairwise comparison produced by [`AnalysisEngine::compare_all`].
#[derive(Debug)]
pub struct Comparison {
    /// Indices of the two compared implementations in the input slice.
    pub pair: (usize, usize),
    /// Raw differencing output.
    pub diff: DiffResult,
    /// Differences grouped by root cause.
    pub groups: Vec<ReportGroup>,
}

/// The output of [`AnalysisEngine::compare_all`]: every implementation
/// analyzed once, compared pairwise.
#[derive(Debug)]
pub struct ComparisonSet {
    /// Full analyses, in input order.
    pub libraries: Vec<LibraryPolicies>,
    /// Intraprocedural-ablation analyses (for root-cause classification),
    /// in input order.
    pub intra: Vec<LibraryPolicies>,
    /// All unordered pairings `(i, j)` with `i < j`, in lexicographic
    /// order.
    pub comparisons: Vec<Comparison>,
    /// Statistics accumulated over all the analyses.
    pub stats: EngineStats,
}

/// The parallel per-entry-point analysis driver.
///
/// See the crate-level documentation for the determinism argument; the
/// engine's contract is that its output equals
/// [`Analyzer::analyze_library`]'s for any worker count.
#[derive(Clone, Debug)]
pub struct AnalysisEngine {
    jobs: usize,
    shards: usize,
    publication: Publication,
    recorder: Recorder,
    tracer: Tracer,
    guard: GuardConfig,
    cache: Option<Arc<PolicyCache>>,
    resident: Option<Arc<ResidentStore>>,
    chaos: spo_chaos::FaultPlan,
}

/// How workers publish freshly computed summaries to the shared store
/// (global memo scope only; other scopes never share).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Publication {
    /// Every clean summary is inserted into its shard as it is computed —
    /// one lock acquisition per summary. The pre-batching behavior, kept
    /// as the bench baseline for the write-behind lock-wait comparison.
    Direct,
    /// Workers buffer summaries locally and publish in shard-grouped
    /// batches at batch boundaries (one lock acquisition per touched
    /// shard per flush), reading through the local buffer first. Results
    /// and deterministic stats are byte-identical to [`Direct`] — see
    /// [`WriteBehind`].
    #[default]
    WriteBehind,
}

/// The error [`AnalysisEngine::with_shards`] returns when the requested
/// shard count disagrees with an attached [`ResidentStore`]'s: the
/// resident pair was already built with its own stripe count, so silently
/// keeping either value would make the engine's stats and the store's
/// layout lie about each other.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardMismatch {
    /// The shard count passed to `with_shards`.
    pub requested: usize,
    /// The attached resident store's shard count.
    pub resident: usize,
}

impl std::fmt::Display for ShardMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} summary-store shards but the attached resident store has {}; \
             drop the resident store or build it with the matching shard count",
            self.requested, self.resident
        )
    }
}

impl std::error::Error for ShardMismatch {}

/// A MAY/MUST summary-store pair that outlives a single engine run, so a
/// resident process (the `spo serve` daemon) can re-enter the analysis
/// with its memo tables already warm instead of building a fresh pair per
/// run.
///
/// Reuse is sound because only *clean* summaries are memoized and a clean
/// summary is a pure function of its memo key — but that key names methods
/// by program-local [`MethodId`] and the summaries depend on the
/// [`AnalysisOptions`]. A resident store must therefore only ever be
/// attached for **one (program, options) pairing** and dropped when the
/// program is reloaded; the serving layer enforces this by keying stores
/// on both.
pub struct ResidentStore {
    may: SharedStore<Dnf>,
    must: SharedStore<MustSet>,
}

impl std::fmt::Debug for ResidentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentStore")
            .field("summaries", &self.summaries())
            .finish()
    }
}

impl ResidentStore {
    /// A fresh, empty resident pair with `shards` shards per store.
    pub fn new(shards: usize) -> ResidentStore {
        let shards = shards.max(1);
        ResidentStore {
            may: SharedStore::new(shards),
            must: SharedStore::new(shards),
        }
    }

    /// Number of memoized summaries currently held (both passes).
    pub fn summaries(&self) -> usize {
        use spo_core::SummaryStore as _;
        self.may.len() + self.must.len()
    }

    /// Lock stripes per store.
    pub fn shard_count(&self) -> usize {
        self.may.shard_count()
    }
}

impl Default for ResidentStore {
    /// Matches the engine's default shard count ([`DEFAULT_SHARDS`] —
    /// one constant, shared with [`SharedStore::default`]).
    fn default() -> ResidentStore {
        ResidentStore::new(DEFAULT_SHARDS)
    }
}

impl Default for AnalysisEngine {
    /// One worker per available CPU.
    fn default() -> Self {
        AnalysisEngine::new(0)
    }
}

impl AnalysisEngine {
    /// Creates an engine with `jobs` workers; `0` means one per available
    /// CPU.
    pub fn new(jobs: usize) -> Self {
        AnalysisEngine {
            jobs,
            shards: DEFAULT_SHARDS,
            publication: Publication::default(),
            recorder: Recorder::disabled(),
            tracer: Tracer::disabled(),
            guard: GuardConfig::default(),
            cache: None,
            resident: None,
            // Captured once at construction: worker probes must all draw
            // from the same plan even if the global is swapped mid-run.
            chaos: spo_chaos::current(),
        }
    }

    /// Replaces the fault plan captured from the process-wide `spo-chaos`
    /// plan at construction (tests arm a plan without touching the
    /// global). Worker-loop fault sites are keyed by root signature, so
    /// which roots fail is independent of work-stealing order.
    pub fn with_fault_plan(mut self, plan: spo_chaos::FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Attaches a [`ResidentStore`]: runs with [`MemoScope::Global`]
    /// borrow it instead of building a store pair per run, so repeat
    /// analyses in a long-lived process start with every previously proven
    /// clean summary already memoized. The caller owns the keying
    /// discipline documented on [`ResidentStore`] — one store per
    /// (program, options) pairing. Other memo scopes ignore it.
    pub fn with_resident(mut self, resident: Arc<ResidentStore>) -> Self {
        // The resident pair's layout is fixed at its construction; the
        // engine adopts it so the two can never drift apart. A later
        // `with_shards` with a different count is a validated error.
        self.shards = resident.shard_count();
        self.resident = Some(resident);
        self
    }

    /// The attached resident store, if any.
    pub fn resident(&self) -> Option<&Arc<ResidentStore>> {
        self.resident.as_ref()
    }

    /// Attaches a persistent summary cache: roots whose cone key has a
    /// usable on-disk entry skip analysis and warm-start from it; every
    /// cleanly analyzed root is written back. Results stay byte-identical
    /// to a cold run — an unusable cache entry only means a cold root plus
    /// a warning [`Diagnostic`] (drain via
    /// [`PolicyCache::take_diagnostics`]).
    pub fn with_cache(mut self, cache: Arc<PolicyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached persistent cache, if any.
    pub fn cache(&self) -> Option<&Arc<PolicyCache>> {
        self.cache.as_ref()
    }

    /// Attaches a guard configuration: per-root budgets, the shared cancel
    /// token, and (in tests) the fault-injection plan. Roots that exhaust
    /// the budget, observe cancellation, or panic are quarantined into
    /// [`LibraryPolicies::degraded`] diagnostics instead of killing the
    /// run; the surviving entries are byte-identical to a clean run
    /// restricted to them.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// The attached guard configuration (inert unless set).
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// Overrides the number of summary-store shards (default
    /// [`DEFAULT_SHARDS`]). With a [`ResidentStore`] attached the store
    /// layout is already fixed, so any *different* count is a
    /// [`ShardMismatch`] error instead of a silent disagreement between
    /// the engine's bookkeeping and the store it actually uses.
    pub fn with_shards(mut self, shards: usize) -> Result<Self, ShardMismatch> {
        let shards = shards.max(1);
        if let Some(resident) = &self.resident {
            if resident.shard_count() != shards {
                return Err(ShardMismatch {
                    requested: shards,
                    resident: resident.shard_count(),
                });
            }
        }
        self.shards = shards;
        Ok(self)
    }

    /// Selects the summary publication mode (default
    /// [`Publication::WriteBehind`]). [`Publication::Direct`] is the
    /// per-summary baseline the bench sweep measures lock waits against.
    pub fn with_publication(mut self, publication: Publication) -> Self {
        self.publication = publication;
        self
    }

    /// Attaches an observability recorder. Each worker records into a
    /// private child recorder; the engine absorbs them in worker-id order
    /// after the pool joins, so the merged deterministic sections do not
    /// depend on thread interleaving.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder (disabled unless set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attaches a flight-recorder tracer. Each run opens a main lane plus
    /// one lane per worker ("`<name>/worker00`" …) and emits per-root
    /// spans, fixpoint spans, cache hit/miss instants, and shard
    /// `lock_wait` events into them. Tracing is wall-clock telemetry only:
    /// analysis results, report bytes, and the deterministic stats
    /// sections are byte-identical with tracing on or off.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Analyzes every API entry point of `program` across the worker pool.
    pub fn analyze_library(
        &self,
        program: &Program,
        name: &str,
        options: AnalysisOptions,
    ) -> (LibraryPolicies, EngineStats) {
        let roots = entry_points(program);
        self.analyze_entries(program, name, &roots, options)
    }

    /// Analyzes a chosen set of entry points across the worker pool.
    pub fn analyze_entries(
        &self,
        program: &Program,
        name: &str,
        roots: &[MethodId],
        options: AnalysisOptions,
    ) -> (LibraryPolicies, EngineStats) {
        let t0 = Instant::now();
        // One timeline row for this run's serial phases (cache validation,
        // write-back, merge) plus one per worker below. Binding the lane
        // makes it visible to the cache and store layers through the
        // thread-local trace context, with no signature changes there.
        let tracing = self.tracer.is_enabled();
        let main_lane = if tracing {
            self.tracer.lane(&format!("{name}/main"))
        } else {
            TraceLane::disabled()
        };
        let _main_bound = tracing.then(|| trace::bind(&main_lane));
        let _run_span = main_lane.span(&format!("analyze {name}"), "engine");
        let analyzer = Analyzer::new(program, options);

        // Warm start: with a cache attached, split the roots into cache
        // hits (merged below without analysis) and the cold work list. A
        // hit needs no call graph: each stored entry carries its cone as
        // identity hashes and is validated by re-keying it against the
        // content table (one hashing pass over the program); only missed
        // roots pay for cone construction, in the write-back below.
        // Lookups run serially on this thread, so hit/miss accounting and
        // diagnostics are deterministic.
        let cache_state = self.cache.as_ref().map(|cache| {
            let before = cache.stats();
            (cache, ContentTable::new(program, &options), before)
        });
        let mut cached: Vec<(usize, String, EntryPolicy)> = Vec::new();
        let mut root_keys: Vec<u64> = vec![0; roots.len()];
        let work: Vec<usize> = match &cache_state {
            None => (0..roots.len()).collect(),
            Some((cache, table, _)) => (0..roots.len())
                .filter(|&idx| {
                    let rk = PolicyCache::root_key(name, method_identity_hash(program, roots[idx]));
                    root_keys[idx] = rk;
                    match cache.lookup(rk, table) {
                        // The stored signature is derived from the same
                        // class/name/descriptor the identity hash covers,
                        // so it equals what a cold run would format.
                        Some((sig, entry)) => {
                            cached.push((idx, sig, entry));
                            false
                        }
                        None => true,
                    }
                })
                .collect(),
        };
        let workers = self.jobs().min(work.len()).max(1);

        // Global scope shares one sharded store pair across all workers;
        // other scopes get per-root local stores inside the worker, which
        // reproduces PerEntry's clear-between-roots semantics. With a
        // resident store attached the run borrows it instead of building
        // its own pair, so clean summaries survive into the next run —
        // sound because they are pure functions of their memo key (see
        // [`ResidentStore`] for the keying discipline this relies on).
        let owned: Option<(SharedStore<Dnf>, SharedStore<MustSet>)> =
            (options.memo == MemoScope::Global && self.resident.is_none())
                .then(|| (SharedStore::new(self.shards), SharedStore::new(self.shards)));
        let shared: Option<(&SharedStore<Dnf>, &SharedStore<MustSet>)> = match &self.resident {
            Some(r) if options.memo == MemoScope::Global => Some((&r.may, &r.must)),
            _ => owned.as_ref().map(|(may, must)| (may, must)),
        };
        // A resident store's counters accumulate across runs; snapshot them
        // so this run's stats report only its own traffic.
        let shards_before = shared.map(|(may, must)| (may.shard_stats(), must.shard_stats()));

        // Cone-batched scheduling: roots sharing callees are grouped into
        // batches owned by one worker (their memo hits stay in that
        // worker's write-behind buffer), deepest cones dealt first so the
        // call graph's bottom is flushed to the shared store before the
        // shallow tail needs it. Stealing moves whole batches from the
        // victim's back — the shallowest, least locality-valuable end.
        let plan = schedule::plan(program, roots, &work, workers);
        let batches_formed = plan.formed;
        let deques: Vec<Mutex<VecDeque<Vec<usize>>>> =
            plan.deques.into_iter().map(Mutex::new).collect();
        let steals = AtomicU64::new(0);
        let batches_stolen = AtomicU64::new(0);
        let wb_flushes = AtomicU64::new(0);
        let wb_deferred_hits = AtomicU64::new(0);
        let results: Mutex<Vec<(usize, String, EntryPolicy, AnalysisStats)>> =
            Mutex::new(Vec::with_capacity(roots.len()));
        let faults: Mutex<Vec<(usize, String, Fault)>> = Mutex::new(Vec::new());

        // Each worker records into a private child recorder; absorbing them
        // in worker-id order below keeps the merged output independent of
        // thread interleaving.
        let worker_recs: Vec<Recorder> = (0..workers).map(|_| self.recorder.child()).collect();
        // One timeline lane per worker, in worker-id order so the trace's
        // `tid`s are stable for a given worker count.
        let worker_lanes: Vec<TraceLane> = (0..workers)
            .map(|w| {
                if tracing {
                    self.tracer.lane(&format!("{name}/worker{w:02}"))
                } else {
                    TraceLane::disabled()
                }
            })
            .collect();

        std::thread::scope(|s| {
            for (w, rec) in worker_recs.iter().enumerate() {
                let analyzer = &analyzer;
                let deques = &deques;
                let steals = &steals;
                let results = &results;
                let faults = &faults;
                let guard = &self.guard;
                let chaos = &self.chaos;
                let lanes = &worker_lanes;
                let publication = self.publication;
                let batches_stolen = &batches_stolen;
                let wb_flushes = &wb_flushes;
                let wb_deferred_hits = &wb_deferred_hits;
                s.spawn(move || {
                    let _lane_bound = trace::bind(&lanes[w]);
                    let worker_roots = rec.work_counter(&format!("engine.worker{w:02}.roots"));
                    let mut local: Vec<(usize, String, EntryPolicy, AnalysisStats)> = Vec::new();
                    let mut local_faults: Vec<(usize, String, Fault)> = Vec::new();
                    // Write-behind façades over the shared pair: reads go
                    // through this worker's buffer first, writes publish
                    // in shard-grouped flushes at batch boundaries.
                    let wb = (publication == Publication::WriteBehind)
                        .then_some(shared)
                        .flatten()
                        .map(|(may, must)| {
                            (WriteBehind::new(may, rec), WriteBehind::new(must, rec))
                        });
                    let run_root =
                        |idx: usize,
                         local: &mut Vec<(usize, String, EntryPolicy, AnalysisStats)>,
                         local_faults: &mut Vec<(usize, String, Fault)>| {
                            worker_roots.incr();
                            let sig = program.method_signature(roots[idx]);
                            // One complete event per root, named by its
                            // signature — the per-root cost timeline.
                            let _root_span = lanes[w].span(&sig, "root");
                            let mut stats = AnalysisStats::default();
                            // Fault-isolation boundary: a panic, budget trip, or
                            // observed cancellation inside this root degrades
                            // this root alone. Once a run is cancelled, roots
                            // not yet started drain through the governor's
                            // first check point, so the pool joins promptly.
                            let governor = guard.governor();
                            let outcome = quarantine(|| {
                                guard.maybe_inject(&sig);
                                // Chaos fault sites, keyed by root signature so
                                // the set of perturbed roots is a pure function
                                // of the plan seed under any work-stealing
                                // interleaving. The panic is quarantined like
                                // any real one: this root degrades, the rest
                                // are byte-identical to a clean run.
                                if chaos
                                    .should_fire_keyed(spo_chaos::sites::ENGINE_ROOT_DELAY, &sig)
                                {
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        1 + chaos.amount(spo_chaos::sites::ENGINE_ROOT_DELAY, 20),
                                    ));
                                }
                                if chaos
                                    .should_fire_keyed(spo_chaos::sites::ENGINE_ROOT_PANIC, &sig)
                                {
                                    panic!("chaos: injected fault at engine.root.panic for {sig}");
                                }
                                governor.check_point();
                                match (&wb, shared) {
                                    (Some((may, must)), _) => analyzer.analyze_root_governed(
                                        roots[idx], may, must, &mut stats, rec, &governor,
                                    ),
                                    (None, Some((may, must))) => analyzer.analyze_root_governed(
                                        roots[idx], may, must, &mut stats, rec, &governor,
                                    ),
                                    (None, None) => {
                                        let may = LocalStore::default();
                                        let must = LocalStore::default();
                                        analyzer.analyze_root_governed(
                                            roots[idx], &may, &must, &mut stats, rec, &governor,
                                        )
                                    }
                                }
                            });
                            match outcome {
                                // The quarantined root's partial stats are
                                // dropped so the surviving roots' totals match
                                // a clean run restricted to them. Clean
                                // summaries its subtree completed stay
                                // buffered: they are pure functions of their
                                // keys, exactly as valid as under direct
                                // publication.
                                Ok((sig, entry)) => local.push((idx, sig, entry, stats)),
                                Err(fault) => local_faults.push((idx, sig, fault)),
                            }
                        };
                    while let Some(batch) = next_batch(w, deques, steals, batches_stolen) {
                        let _batch_span =
                            lanes[w].span(&format!("batch ({} roots)", batch.len()), "batch");
                        for idx in batch {
                            run_root(idx, &mut local, &mut local_faults);
                        }
                        // Batch boundary: publish everything the batch
                        // buffered so other workers' cones can hit it.
                        if let Some((may, must)) = &wb {
                            may.flush();
                            must.flush();
                        }
                    }
                    if let Some((may, must)) = &wb {
                        may.flush();
                        must.flush();
                        let (a, b) = (may.stats(), must.stats());
                        wb_flushes.fetch_add(a.flushes + b.flushes, Ordering::Relaxed);
                        wb_deferred_hits
                            .fetch_add(a.deferred_hits + b.deferred_hits, Ordering::Relaxed);
                    }
                    // Batch commit, itself quarantined, with poisoned-lock
                    // recovery: a panic that unwinds while a sibling held a
                    // shared mutex must not cascade into a whole-run abort
                    // — the data under the lock is a plain Vec whose
                    // invariants hold at every await-free push, so the
                    // poison flag carries no information here.
                    let commit = quarantine(|| {
                        let mut shared_results = results.lock().unwrap_or_else(|e| e.into_inner());
                        guard.maybe_inject_append(local.iter().map(|(_, sig, ..)| sig.as_str()));
                        shared_results.append(&mut local);
                        drop(shared_results);
                        faults
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .append(&mut local_faults);
                    });
                    if let Err(fault) = commit {
                        // The batch never landed; account for every root in
                        // it as degraded so none silently disappears.
                        let mut lost: Vec<(usize, String, Fault)> = local
                            .drain(..)
                            .map(|(idx, sig, ..)| (idx, sig, fault.clone()))
                            .collect();
                        lost.append(&mut local_faults);
                        faults
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .append(&mut lost);
                    }
                });
            }
        });

        for wrec in &worker_recs {
            self.recorder.absorb(wrec);
        }

        let mut results = results.into_inner().unwrap_or_else(|e| e.into_inner());
        // Write back every cleanly analyzed root before merging (merge
        // consumes the entries). The keyer — and with it the call graph —
        // is built over the missed roots only, so a fully warm run never
        // constructs one. Degraded roots never reach `results`, so a
        // top-element placeholder can never be cached as a real policy.
        if let Some((cache, _, _)) = &cache_state {
            if !results.is_empty() {
                let miss_roots: Vec<MethodId> = work.iter().map(|&idx| roots[idx]).collect();
                let keyer = CacheKeyer::new(program, &miss_roots, &options);
                for (idx, _, entry, _) in &results {
                    if let (Some(key), Some(cone)) =
                        (keyer.key(roots[*idx]), keyer.cone(roots[*idx]))
                    {
                        cache.store(root_keys[*idx], key, cone, entry);
                    }
                }
            }
            // One atomic pack rewrite per run (no-op when every root hit).
            cache.flush();
        }
        // Warm-started roots join the merge stream crediting exactly the
        // one entry point the serial analyzer would have counted, so a warm
        // run's report (and its footer) is byte-identical to a cold run's.
        for (idx, sig, entry) in cached {
            let stats = AnalysisStats {
                entry_points: 1,
                ..Default::default()
            };
            results.push((idx, sig, entry, stats));
        }
        // Deterministic merge: ascending root index, first root wins on
        // signature collisions — exactly the serial analyzer's fold.
        results.sort_by_key(|(idx, ..)| *idx);
        let mut analysis = AnalysisStats::default();
        let mut entries = std::collections::BTreeMap::new();
        for (_, sig, entry, stats) in results {
            analysis.absorb(&stats);
            entries.entry(sig).or_insert(entry);
        }

        // Degraded roots merge in the same deterministic order; a root
        // never appears both as an entry and as a diagnostic (a signature
        // collision between a clean root and a degraded one keeps both
        // records, each under its own surface).
        let mut fault_list = faults.into_inner().unwrap_or_else(|e| e.into_inner());
        fault_list.sort_by_key(|(idx, ..)| *idx);
        let mut degraded = std::collections::BTreeMap::new();
        for (_, sig, fault) in fault_list {
            degraded
                .entry(sig.clone())
                .or_insert_with(|| Diagnostic::degraded_root(sig, &fault));
        }

        let stats = EngineStats {
            workers,
            entry_points: roots.len(),
            analysis,
            cache_hits: (roots.len() - work.len()) as u64,
            cache_misses: if cache_state.is_some() {
                work.len() as u64
            } else {
                0
            },
            steals: steals.into_inner(),
            batches_stolen: batches_stolen.into_inner(),
            batches_formed,
            writeback_flushes: wb_flushes.into_inner(),
            writeback_deferred_hits: wb_deferred_hits.into_inner(),
            may_shards: shared
                .zip(shards_before.as_ref())
                .map(|((m, _), (before, _))| shard_delta(m.shard_stats(), before))
                .unwrap_or_default(),
            must_shards: shared
                .zip(shards_before.as_ref())
                .map(|((_, m), (_, before))| shard_delta(m.shard_stats(), before))
                .unwrap_or_default(),
            wall_nanos: t0.elapsed().as_nanos(),
            roots_degraded: degraded.len() as u64,
        };
        self.record_stats(&stats);
        if let Some((cache, _, before)) = &cache_state {
            if self.recorder.is_enabled() {
                // Filesystem-dependent, so `work` counters (the
                // deterministic `counters` section must not vary with the
                // cache's disk state).
                let after = cache.stats();
                let rec = &self.recorder;
                rec.work_counter("cache.hits").add(after.hits - before.hits);
                rec.work_counter("cache.misses")
                    .add(after.misses - before.misses);
                rec.work_counter("cache.invalidated")
                    .add(after.invalidated - before.invalidated);
                rec.work_counter("cache.bytes")
                    .add(after.bytes - before.bytes);
            }
        }
        if self.recorder.is_enabled() {
            for diag in degraded.values() {
                self.recorder.diagnostic(
                    &diag.severity.to_string(),
                    &diag.phase.to_string(),
                    &diag.root,
                    diag.cause.label(),
                    &diag.message,
                );
            }
        }
        let lib = LibraryPolicies {
            name: name.to_owned(),
            entries,
            stats: analysis,
            degraded,
        };
        (lib, stats)
    }

    /// Records one run's engine-level statistics into the attached
    /// recorder: pool shape, store shard totals, and the run's wall clock.
    /// All of it is scheduling-dependent, so everything lands in `work`
    /// counters (or `durations`).
    fn record_stats(&self, stats: &EngineStats) {
        let rec = &self.recorder;
        if !rec.is_enabled() {
            return;
        }
        stats.analysis.record_into(rec);
        rec.work_counter("engine.workers").add(stats.workers as u64);
        rec.work_counter("engine.roots")
            .add(stats.entry_points as u64);
        rec.work_counter("engine.steals").add(stats.steals);
        rec.work_counter("engine.batches_stolen")
            .add(stats.batches_stolen);
        rec.work_counter("batch.formed").add(stats.batches_formed);
        rec.work_counter("guard.roots_degraded")
            .add(stats.roots_degraded);
        for (prefix, shards) in [
            ("store.may", &stats.may_shards),
            ("store.must", &stats.must_shards),
        ] {
            if shards.is_empty() {
                continue;
            }
            rec.work_counter(&format!("{prefix}.hits"))
                .add(shards.iter().map(|s| s.hits).sum());
            rec.work_counter(&format!("{prefix}.misses"))
                .add(shards.iter().map(|s| s.misses).sum());
            rec.work_counter(&format!("{prefix}.contended"))
                .add(shards.iter().map(|s| s.contended).sum());
            rec.work_counter(&format!("{prefix}.entries"))
                .add(shards.iter().map(|s| s.entries as u64).sum());
            // Per-shard lock-wait histograms (nanoseconds blocked per
            // contended acquisition) — the contention heatmap behind the
            // parallel-speedup diagnosis. Only shards that actually
            // blocked emit a key, so an uncontended run adds nothing.
            for (i, s) in shards.iter().enumerate() {
                if s.lock_wait.count > 0 {
                    rec.record_duration_snapshot(
                        &format!("{prefix}.shard{i:02}.lock_wait"),
                        &s.lock_wait,
                    );
                }
            }
        }
        rec.duration("engine.analyze")
            .record(stats.wall_nanos as u64);
    }

    /// Analyzes every implementation (full and intraprocedural-ablation)
    /// and differences every unordered pair — the paper's "compare each
    /// implementation to the other two", driven by the worker pool.
    pub fn compare_all(
        &self,
        implementations: &[(&str, &Program)],
        options: AnalysisOptions,
    ) -> ComparisonSet {
        let mut stats = EngineStats::default();
        let mut libraries = Vec::with_capacity(implementations.len());
        let mut intra = Vec::with_capacity(implementations.len());
        let intra_options = AnalysisOptions {
            interprocedural: false,
            ..options
        };
        for &(name, program) in implementations {
            let (lib, s) = self.analyze_library(program, name, options);
            stats.absorb(&s);
            libraries.push(lib);
            let (lib, s) = self.analyze_library(program, name, intra_options);
            stats.absorb(&s);
            intra.push(lib);
        }

        let mut comparisons = Vec::new();
        for i in 0..implementations.len() {
            for j in i + 1..implementations.len() {
                let diff = diff_libraries(&libraries[i], &libraries[j]);
                let intra_keys = root_keys(&diff_libraries(&intra[i], &intra[j]));
                let groups = group_differences(&diff, &intra_keys);
                comparisons.push(Comparison {
                    pair: (i, j),
                    diff,
                    groups,
                });
            }
        }
        ComparisonSet {
            libraries,
            intra,
            comparisons,
            stats,
        }
    }
}

/// This run's share of a (possibly resident, hence accumulating) store's
/// shard counters: traffic counters are deltas against the pre-run
/// snapshot, while `entries` stays the absolute store population.
fn shard_delta(after: Vec<ShardStats>, before: &[ShardStats]) -> Vec<ShardStats> {
    after
        .into_iter()
        .zip(before)
        .map(|(a, b)| ShardStats {
            hits: a.hits - b.hits,
            misses: a.misses - b.misses,
            contended: a.contended.saturating_sub(b.contended),
            entries: a.entries,
            lock_wait: a.lock_wait.saturating_delta(&b.lock_wait),
        })
        .collect()
}

/// Pops the next batch for worker `w`: front of its own deque, else a
/// whole batch stolen from the back of the first non-empty victim (the
/// shallowest-cone end — the least locality-valuable work it holds).
///
/// Poisoned deques are recovered, not propagated: a panic that unwinds
/// while a sibling held the lock (possible only between two complete
/// pop/push operations on the plain `VecDeque`) leaves the queue in a
/// valid state, and every worker unwrapping the poison would cascade one
/// quarantined fault into a whole-run abort.
fn next_batch(
    w: usize,
    deques: &[Mutex<VecDeque<Vec<usize>>>],
    steals: &AtomicU64,
    batches_stolen: &AtomicU64,
) -> Option<Vec<usize>> {
    if let Some(batch) = deques[w]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some(batch);
    }
    for off in 1..deques.len() {
        let victim = (w + off) % deques.len();
        if let Some(batch) = deques[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            steals.fetch_add(batch.len() as u64, Ordering::Relaxed);
            batches_stolen.fetch_add(1, Ordering::Relaxed);
            trace::instant_now("steal", "engine");
            return Some(batch);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        spo_jir::parse_program(
            r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class t.A {
  method public void read() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    staticinvoke t.A.shared();
    return;
  }
  method public void write() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("f");
    staticinvoke t.A.shared();
    return;
  }
  method private static void shared() {
    staticinvoke t.A.op0();
    return;
  }
  method private static native void op0();
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn resident_store_warms_repeat_runs_and_stays_byte_identical() {
        let program = sample_program();
        let options = AnalysisOptions::default();
        let (cold, _) = AnalysisEngine::new(2).analyze_library(&program, "t", options);

        let resident = Arc::new(ResidentStore::new(4));
        let engine = AnalysisEngine::new(2).with_resident(Arc::clone(&resident));
        let (first, s1) = engine.analyze_library(&program, "t", options);
        assert_eq!(first.entries, cold.entries);
        let warmed = resident.summaries();
        assert!(warmed > 0, "first run populates the resident store");
        let miss = |s: &EngineStats| {
            s.may_shards
                .iter()
                .chain(&s.must_shards)
                .map(|sh| sh.misses)
                .sum::<u64>()
        };
        assert!(miss(&s1) > 0, "an empty store starts with misses");

        let (second, s2) = engine.analyze_library(&program, "t", options);
        assert_eq!(second.entries, cold.entries, "reuse is byte-identical");
        assert_eq!(
            resident.summaries(),
            warmed,
            "a repeat run re-derives nothing"
        );
        assert!(
            miss(&s2) < miss(&s1),
            "resident summaries absorb repeat lookups ({} vs {})",
            miss(&s2),
            miss(&s1)
        );

        // Non-global scopes ignore the resident store entirely.
        let per_entry = AnalysisOptions {
            memo: MemoScope::PerEntry,
            ..options
        };
        let serial = Analyzer::new(&program, per_entry).analyze_library("t");
        let (lib, stats) = engine.analyze_library(&program, "t", per_entry);
        assert_eq!(lib.entries, serial.entries);
        assert!(stats.may_shards.is_empty());
        assert_eq!(resident.summaries(), warmed);
    }

    #[test]
    fn matches_serial_for_every_memo_scope_and_worker_count() {
        let program = sample_program();
        for memo in [MemoScope::None, MemoScope::PerEntry, MemoScope::Global] {
            let options = AnalysisOptions {
                memo,
                ..Default::default()
            };
            let serial = Analyzer::new(&program, options).analyze_library("t");
            for jobs in [1, 2, 8] {
                let (par, stats) =
                    AnalysisEngine::new(jobs).analyze_library(&program, "t", options);
                assert_eq!(par.entries, serial.entries, "memo {memo:?} jobs {jobs}");
                assert_eq!(stats.entry_points, serial.stats.entry_points);
            }
        }
    }

    #[test]
    fn cone_batching_keeps_shared_reuse_worker_local() {
        let program = sample_program();
        let (_, stats) =
            AnalysisEngine::new(2).analyze_library(&program, "t", AnalysisOptions::default());
        // `t.A.shared` is reached from both entry points with the same
        // context. Cone batching places both roots in one batch, so the
        // second analysis hits the first's write-behind buffer instead of
        // paying a shared-store lock.
        assert!(stats.analysis.memo_hits > 0, "{stats}");
        assert!(stats.batches_formed > 0, "{stats}");
        assert!(stats.writeback_deferred_hits > 0, "{stats}");
        assert!(stats.writeback_flushes > 0, "{stats}");
        // The buffered summaries still reach the shared store at flush.
        let entries: usize = stats.may_shards.iter().map(|s| s.entries).sum();
        assert!(entries > 0, "{stats}");
    }

    #[test]
    fn direct_publication_still_records_shard_hits() {
        let program = sample_program();
        let (_, stats) = AnalysisEngine::new(1)
            .with_publication(Publication::Direct)
            .analyze_library(&program, "t", AnalysisOptions::default());
        // The bench baseline bypasses write-behind: every memo probe and
        // publication goes straight to the shared store.
        assert!(stats.analysis.memo_hits > 0, "{stats}");
        let shard_hits: u64 = stats.may_shards.iter().map(|s| s.hits).sum();
        assert!(shard_hits > 0, "{stats}");
        assert_eq!(stats.writeback_flushes, 0, "{stats}");
        assert_eq!(stats.writeback_deferred_hits, 0, "{stats}");
    }

    #[test]
    fn with_shards_rejects_mismatch_against_attached_resident() {
        let resident = Arc::new(ResidentStore::default());
        let err = AnalysisEngine::new(2)
            .with_resident(Arc::clone(&resident))
            .with_shards(DEFAULT_SHARDS + 1)
            .unwrap_err();
        assert_eq!(err.requested, DEFAULT_SHARDS + 1);
        assert_eq!(err.resident, DEFAULT_SHARDS);
        // Matching counts (and detached engines) stay accepted.
        AnalysisEngine::new(2)
            .with_resident(resident)
            .with_shards(DEFAULT_SHARDS)
            .expect("matching shard count");
        AnalysisEngine::new(2).with_shards(4).expect("no resident");
    }

    #[test]
    fn workers_capped_by_root_count() {
        let program = sample_program();
        let (_, stats) =
            AnalysisEngine::new(64).analyze_library(&program, "t", AnalysisOptions::default());
        assert!(
            stats.workers <= stats.entry_points,
            "{} workers for {} roots",
            stats.workers,
            stats.entry_points
        );
    }

    #[test]
    fn deterministic_metrics_identical_across_worker_counts() {
        let program = sample_program();
        let run = |jobs: usize| {
            let rec = Recorder::new();
            let engine = AnalysisEngine::new(jobs).with_recorder(rec.clone());
            let (lib, _) = engine.analyze_library(&program, "t", AnalysisOptions::default());
            (lib, rec.snapshot())
        };
        let (lib1, snap1) = run(1);
        let baseline = snap1.deterministic_json();
        assert!(snap1.counters["ispa.frames"] > 0);
        assert!(snap1.work["store.may.entries"] > 0);
        assert_eq!(snap1.work["engine.workers"], 1);
        assert_eq!(
            snap1.work["ispa.frames_analyzed"],
            lib1.stats.frames_analyzed as u64
        );
        assert_eq!(snap1.durations["engine.analyze"].count, 1);
        for jobs in [2, 8] {
            let (_, snap) = run(jobs);
            assert_eq!(
                snap.deterministic_json(),
                baseline,
                "deterministic sections diverged at jobs={jobs}"
            );
        }
    }

    #[test]
    fn tracing_emits_lanes_without_perturbing_results() {
        let program = sample_program();
        let options = AnalysisOptions::default();
        let run = |tracer: Tracer, jobs: usize| {
            let rec = Recorder::new();
            let engine = AnalysisEngine::new(jobs)
                .with_recorder(rec.clone())
                .with_tracer(tracer);
            let (lib, _) = engine.analyze_library(&program, "t", options);
            (lib, rec.snapshot().deterministic_json())
        };
        let (lib_off, det_off) = run(Tracer::disabled(), 2);
        let tracer = Tracer::new();
        let (lib_on, det_on) = run(tracer.clone(), 2);
        // Tracing must stay outside the deterministic surface.
        assert_eq!(lib_on.entries, lib_off.entries);
        assert_eq!(det_on, det_off);
        let doc = tracer.to_chrome_json();
        spo_obs::json::validate_trace(&doc).unwrap();
        // One main lane plus one lane per worker, and per-root spans
        // named by entry-point signature.
        assert!(doc.contains("t/main"), "{doc}");
        assert!(doc.contains("t/worker00"), "{doc}");
        assert!(doc.contains("t/worker01"), "{doc}");
        assert!(doc.contains("t.A.read()"), "{doc}");
        assert!(doc.contains("\"fixpoint\""), "{doc}");
        assert!(tracer.event_count() > 0);
    }

    #[test]
    fn injected_panic_degrades_only_that_root() {
        use spo_guard::Cause;
        let program = sample_program();
        let options = AnalysisOptions::default();
        let clean = Analyzer::new(&program, options).analyze_library("t");
        for jobs in [1, 2, 8] {
            let guard = GuardConfig {
                inject_panics: vec!["t.A.read".to_owned()],
                ..Default::default()
            };
            let (lib, stats) = AnalysisEngine::new(jobs)
                .with_guard(guard)
                .analyze_library(&program, "t", options);
            assert_eq!(stats.roots_degraded, 1, "jobs {jobs}");
            assert_eq!(lib.degraded.len(), 1);
            let (sig, diag) = lib.degraded.iter().next().unwrap();
            assert_eq!(sig, "t.A.read()");
            assert_eq!(diag.cause, Cause::Panic);
            assert!(diag.message.contains("injected fault"), "{}", diag.message);
            // Every surviving root's policy is identical to the clean run's.
            assert!(!lib.entries.contains_key("t.A.read()"));
            for (sig, entry) in &lib.entries {
                assert_eq!(Some(entry), clean.entries.get(sig), "{sig} jobs {jobs}");
            }
            assert_eq!(lib.entries.len(), clean.entries.len() - 1);
        }
    }

    #[test]
    fn chaos_root_panics_are_keyed_quarantined_and_replayable() {
        use spo_chaos::{sites, FaultPlan};
        use spo_guard::Cause;
        let program = sample_program();
        let options = AnalysisOptions::default();
        let clean = Analyzer::new(&program, options).analyze_library("t");
        // Find a seed whose keyed draw fails at least one root (rate 0.5
        // over a handful of roots: seed 0 or 1 virtually always works,
        // but scan a few to keep the test seed-stream agnostic).
        let seed = (0..32)
            .find(|&s| {
                let probe = FaultPlan::seeded(s).site(sites::ENGINE_ROOT_PANIC, 0.5);
                clean
                    .entries
                    .keys()
                    .any(|sig| probe.should_fire_keyed(sites::ENGINE_ROOT_PANIC, sig))
            })
            .expect("some seed fires on some root");
        let mut failed_sets: Vec<Vec<String>> = Vec::new();
        for jobs in [1, 2, 8] {
            let plan = FaultPlan::seeded(seed).site(sites::ENGINE_ROOT_PANIC, 0.5);
            let (lib, stats) = AnalysisEngine::new(jobs)
                .with_fault_plan(plan)
                .analyze_library(&program, "t", options);
            assert!(stats.roots_degraded > 0, "jobs {jobs}");
            for (sig, diag) in &lib.degraded {
                assert_eq!(diag.cause, Cause::Panic, "{sig}");
                assert!(diag.message.contains("chaos: injected fault"), "{sig}");
            }
            // Surviving roots are byte-identical to the clean run.
            for (sig, entry) in &lib.entries {
                assert_eq!(Some(entry), clean.entries.get(sig), "{sig} jobs {jobs}");
            }
            failed_sets.push(lib.degraded.keys().cloned().collect());
        }
        // Signature keying makes the failed set a pure function of the
        // seed — identical across worker counts and steal orders.
        assert_eq!(failed_sets[0], failed_sets[1]);
        assert_eq!(failed_sets[0], failed_sets[2]);
    }

    /// Entry points whose CFGs branch, so a fixpoint solve takes more than
    /// one worklist step and a tiny step budget reliably trips.
    fn branching_program() -> Program {
        spo_jir::parse_program(
            r#"
class t.B {
  method public void spin() {
    local int i;
    i = 0;
  loop:
    i = i + 1;
    if i < 10 goto loop;
    return;
  }
  method public void wobble() {
    local int j;
    j = 100;
  again:
    j = j - 1;
    if j > 0 goto again;
    return;
  }
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn step_budget_trips_every_root_identically() {
        use spo_guard::{Budget, Cause};
        let program = branching_program();
        let options = AnalysisOptions::default();
        let run = |jobs: usize| {
            let guard = GuardConfig {
                budget: Budget::default().steps(1),
                ..Default::default()
            };
            AnalysisEngine::new(jobs)
                .with_guard(guard)
                .analyze_library(&program, "t", options)
        };
        let (lib1, stats1) = run(1);
        assert!(lib1.entries.is_empty(), "a 1-step budget degrades all");
        assert_eq!(stats1.roots_degraded, lib1.degraded.len() as u64);
        for diag in lib1.degraded.values() {
            assert_eq!(diag.cause, Cause::StepBudget);
        }
        for jobs in [2, 8] {
            let (lib, _) = run(jobs);
            assert_eq!(lib.degraded, lib1.degraded, "jobs {jobs}");
            assert_eq!(lib.entries, lib1.entries);
        }
    }

    #[test]
    fn cancelled_token_degrades_all_roots_with_partial_output() {
        use spo_guard::{CancelToken, Cause};
        let program = sample_program();
        let cancel = CancelToken::new();
        cancel.cancel();
        let guard = GuardConfig {
            cancel,
            ..Default::default()
        };
        let (lib, stats) = AnalysisEngine::new(2).with_guard(guard).analyze_library(
            &program,
            "t",
            AnalysisOptions::default(),
        );
        assert!(lib.entries.is_empty());
        assert!(stats.roots_degraded > 0);
        for diag in lib.degraded.values() {
            assert_eq!(diag.cause, Cause::Cancelled);
        }
    }

    #[test]
    fn degraded_roots_reported_in_stats_snapshot() {
        let program = sample_program();
        let rec = Recorder::new();
        let guard = GuardConfig {
            inject_panics: vec!["t.A.write".to_owned()],
            ..Default::default()
        };
        let engine = AnalysisEngine::new(2)
            .with_recorder(rec.clone())
            .with_guard(guard);
        let (_, stats) = engine.analyze_library(&program, "t", AnalysisOptions::default());
        assert_eq!(stats.roots_degraded, 1);
        let snap = rec.snapshot();
        assert_eq!(snap.work["guard.roots_degraded"], 1);
        assert_eq!(snap.diagnostics.len(), 1);
        assert_eq!(snap.diagnostics[0].root, "t.A.write()");
        assert_eq!(snap.diagnostics[0].cause, "panic");
        let json = snap.to_json();
        assert!(json.contains("\"diagnostics\""), "{json}");
        assert!(spo_obs::json::validate_stats(&json).is_ok());
    }

    #[test]
    fn append_panic_poisons_mutex_without_aborting_run() {
        use spo_guard::Cause;
        let program = sample_program();
        let options = AnalysisOptions::default();
        let clean = Analyzer::new(&program, options).analyze_library("t");
        for jobs in [1, 2, 8] {
            // The injected panic fires *after* the worker acquires the
            // shared results lock, poisoning it. Before poison recovery
            // this turned one quarantined fault into a whole-run abort:
            // every sibling's `lock().unwrap()` re-panicked inside
            // `thread::scope`, which re-raises at join.
            let guard = GuardConfig {
                inject_append_panics: vec!["t.A.read".to_owned()],
                ..Default::default()
            };
            let (lib, stats) = AnalysisEngine::new(jobs)
                .with_guard(guard)
                .analyze_library(&program, "t", options);
            // The run completes and the lost batch resurfaces as
            // per-root faults, so no root silently disappears.
            assert_eq!(
                lib.entries.len() + lib.degraded.len(),
                clean.entries.len(),
                "jobs {jobs}: entries {:?} degraded {:?}",
                lib.entries.keys().collect::<Vec<_>>(),
                lib.degraded.keys().collect::<Vec<_>>()
            );
            let diag = lib
                .degraded
                .values()
                .find(|d| d.message.contains("injected append fault"))
                .unwrap_or_else(|| panic!("no append-fault diagnostic at jobs {jobs}"));
            assert_eq!(diag.cause, Cause::Panic);
            assert!(stats.roots_degraded >= 1, "jobs {jobs}");
            // Roots that committed in other batches are byte-identical
            // to the clean run.
            for (sig, entry) in &lib.entries {
                assert_eq!(Some(entry), clean.entries.get(sig), "{sig} jobs {jobs}");
            }
        }
    }

    fn cache_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spo-engine-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_cache_run_is_identical_to_cold_run() {
        let program = sample_program();
        let options = AnalysisOptions::default();
        let cache = Arc::new(PolicyCache::open(cache_dir("warm")).unwrap());
        let cold_engine = AnalysisEngine::new(2).with_cache(Arc::clone(&cache));
        let (cold, cold_stats) = cold_engine.analyze_library(&program, "t", options);
        assert_eq!(cold_stats.cache_hits, 0);
        assert_eq!(cold_stats.cache_misses, cold_stats.entry_points as u64);
        for jobs in [1, 2, 8] {
            let warm_engine = AnalysisEngine::new(jobs).with_cache(Arc::clone(&cache));
            let (warm, warm_stats) = warm_engine.analyze_library(&program, "t", options);
            assert_eq!(warm.entries, cold.entries, "jobs {jobs}");
            assert_eq!(warm.degraded, cold.degraded);
            assert_eq!(warm.stats.entry_points, cold.stats.entry_points);
            assert_eq!(
                warm_stats.cache_hits, cold_stats.entry_points as u64,
                "jobs {jobs}"
            );
            assert_eq!(warm_stats.cache_misses, 0);
        }
    }

    #[test]
    fn single_method_edit_invalidates_only_affected_cones() {
        let program = sample_program();
        let options = AnalysisOptions::default();
        let cache = Arc::new(PolicyCache::open(cache_dir("edit")).unwrap());
        let engine = AnalysisEngine::new(2).with_cache(Arc::clone(&cache));
        let (_, cold) = engine.analyze_library(&program, "t", options);
        let roots = cold.entry_points as u64;
        assert_eq!(cold.cache_misses, roots);

        // Body-only edit to t.A.write: only its own cone contains the
        // edited method, so a warm run re-analyzes exactly one root.
        let text = spo_jir::print_program(&program).replacen(
            "virtualinvoke sm.checkWrite(\"f\");",
            "virtualinvoke sm.checkWrite(\"f\");\n    virtualinvoke sm.checkRead(\"f\");",
            1,
        );
        let edited = spo_jir::parse_program(&text).unwrap();
        let (lib, warm) = engine.analyze_library(&edited, "t", options);
        assert_eq!(warm.cache_hits, roots - 1, "{warm}");
        assert_eq!(warm.cache_misses, 1, "{warm}");
        // The edited root's fresh result reflects the new body.
        let serial = Analyzer::new(&edited, options).analyze_library("t");
        assert_eq!(lib.entries, serial.entries);
    }

    #[test]
    fn cache_counters_surface_in_work_section_only() {
        let program = sample_program();
        let options = AnalysisOptions::default();
        let cache = Arc::new(PolicyCache::open(cache_dir("counters")).unwrap());
        let rec = Recorder::new();
        let engine = AnalysisEngine::new(2)
            .with_cache(Arc::clone(&cache))
            .with_recorder(rec.clone());
        let (_, s1) = engine.analyze_library(&program, "t", options);
        engine.analyze_library(&program, "t", options);
        let roots = s1.entry_points as u64;
        let snap = rec.snapshot();
        assert_eq!(snap.work["cache.misses"], roots);
        assert_eq!(snap.work["cache.hits"], roots);
        assert!(snap.work["cache.bytes"] > 0);
        // Deterministic counters must not depend on the cache's disk
        // state, so cache metrics live exclusively in `work`.
        assert!(!snap.counters.contains_key("cache.hits"));
        assert!(!snap.counters.contains_key("cache.misses"));
    }

    #[test]
    fn compare_all_self_comparison_is_clean() {
        let program = sample_program();
        let set = AnalysisEngine::new(4).compare_all(
            &[("x", &program), ("y", &program)],
            AnalysisOptions::default(),
        );
        assert_eq!(set.libraries.len(), 2);
        assert_eq!(set.comparisons.len(), 1);
        assert!(set.comparisons[0].groups.is_empty());
        assert!(set.stats.entry_points > 0);
    }
}
