//! # spo-rng — a minimal deterministic PRNG
//!
//! The workspace builds fully offline, so it cannot pull `rand` from a
//! registry. This crate provides the small slice of `rand`'s API the
//! corpus generator and the randomized tests actually use — a seedable
//! non-cryptographic generator with uniform integer ranges — implemented
//! as xoshiro256\*\* seeded through SplitMix64 (the reference
//! initialization from Blackman & Vigna).
//!
//! Determinism is a hard requirement: a corpus is a pure function of its
//! seed, and test failures must replay from a printed seed. The stream
//! for a given seed is part of the crate's contract and is pinned by
//! tests.
//!
//! # Examples
//!
//! ```
//! use spo_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let roll = rng.gen_range(0..100u32);
//! assert!(roll < 100);
//! // Same seed, same stream.
//! let mut rng2 = SmallRng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0..100u32), roll);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// A small, fast, seedable xoshiro256\*\* generator.
///
/// Not cryptographically secure; intended for corpus generation and
/// randomized testing only.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `range` (half-open, `start < end` required).
    ///
    /// Uses Lemire-style rejection-free multiply-shift reduction with a
    /// debiasing retry, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform `bool` that is `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits, the standard f64-in-[0,1) construction.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Uniform draw from `[0, bound)`: Lemire's widening-multiply
    /// reduction with the debiasing retry, exactly uniform.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = self.next_u64() as u128 * bound as u128;
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = self.next_u64() as u128 * bound as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Integer types drawable uniformly from a half-open range.
pub trait UniformInt: Copy {
    /// Draws a uniform value in `range` from `rng`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded(span) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, usize, u64);

macro_rules! impl_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SmallRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut rng = SmallRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    /// The stream for seed 0 is part of the crate contract: corpora and
    /// golden values depend on it. Do not change without regenerating
    /// every seeded fixture.
    #[test]
    fn pinned_reference_stream() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // SplitMix64 expansion of seed 0 is well-known; the first xoshiro
        // output must be nonzero and stable.
        assert_ne!(first[0], 0);
    }
}
