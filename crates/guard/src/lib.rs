//! # spo-guard — fault isolation and resource governance
//!
//! A library-scale differencing run must survive its worst input: one
//! malformed method body, one pathological fixpoint, or one panicking root
//! must not kill the whole run. This crate is the std-only layer the rest
//! of the pipeline threads through to get that property:
//!
//! * [`Budget`] bounds a single root's analysis — transfer steps per
//!   fixpoint solve, frames per root, and an optional wall-clock deadline.
//! * [`CancelToken`] is the shared cooperative cancellation flag a Ctrl-C
//!   handler (or any supervisor) flips; governed loops observe it at their
//!   next check point.
//! * [`Governor`] carries one root's budget state through the dataflow
//!   worklist and the interprocedural frame stack. Exhaustion *trips*: it
//!   raises a typed [`Interrupt`] unwind that the per-root
//!   [`quarantine`] boundary converts into a structured [`Fault`].
//! * [`quarantine`] runs a closure under `catch_unwind`, mapping both
//!   genuine panics and budget/cancel interrupts to [`Fault`]s, so one
//!   root's failure degrades that root alone.
//! * [`Diagnostic`] is the uniform degradation record (severity, phase,
//!   root, cause) surfaced by reports, `spo diff`, and the stats snapshot.
//!
//! Degradation is **sound by construction**: a quarantined root's policy
//! is replaced by the top element of the policy lattice (may = all checks,
//! must = ∅ — every check possibly performed, none guaranteed), so a
//! degraded entry can never manufacture a spurious "missing check"
//! difference; consumers that instead drop the root entirely must say so
//! via the diagnostics they carry.
//!
//! # Examples
//!
//! ```
//! use spo_guard::{quarantine, Budget, CancelToken, Cause, Governor};
//!
//! let gov = Governor::new(Budget::default().steps(2), CancelToken::never());
//! let fault = quarantine(|| {
//!     for step in 0.. {
//!         gov.check_step(step); // trips once the budget is exhausted
//!     }
//! })
//! .unwrap_err();
//! assert_eq!(fault.cause, Cause::StepBudget);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Why a unit of work (a root's analysis, a file's parse) was degraded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Cause {
    /// The worker panicked; the payload message is preserved.
    Panic,
    /// The per-solve transfer-step budget was exhausted.
    StepBudget,
    /// The per-root frame budget was exhausted.
    FrameBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// The run was cooperatively cancelled (e.g. Ctrl-C).
    Cancelled,
    /// The input could not be parsed; the malformed unit was dropped.
    Parse,
    /// A persistent-cache entry was corrupt, truncated, or written by a
    /// different format version; the root fell back to a cold analysis.
    Cache,
    /// An injected fault from a `spo-chaos` plan fired (and the layer it
    /// hit absorbed or recovered from it).
    Chaos,
}

impl Cause {
    /// The stable lowercase label used in reports and the stats snapshot.
    pub fn label(self) -> &'static str {
        match self {
            Cause::Panic => "panic",
            Cause::StepBudget => "budget-steps",
            Cause::FrameBudget => "budget-frames",
            Cause::Deadline => "deadline",
            Cause::Cancelled => "cancel",
            Cause::Parse => "parse",
            Cause::Cache => "cache",
            Cause::Chaos => "chaos",
        }
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How serious a degradation is for the run's result.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The run completed but part of the result is missing or conservative.
    Warning,
    /// The unit produced no usable result at all.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which pipeline stage degraded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    /// `.jir` loading / parsing.
    Parse,
    /// Per-root policy analysis.
    Analysis,
    /// Persistent summary-cache I/O (warm-start lookups and write-back).
    Cache,
    /// Deterministic fault injection (`spo-chaos`): diagnostics about
    /// injected faults and the recoveries they exercised.
    Chaos,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Parse => "parse",
            Phase::Analysis => "analysis",
            Phase::Cache => "cache",
            Phase::Chaos => "chaos",
        })
    }
}

/// Resource limits for one root's analysis. The zero value of each field
/// means "unlimited"; [`Budget::default`] is fully unlimited.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum worklist transfer steps per fixpoint solve (0 = unlimited).
    pub max_steps: u64,
    /// Maximum method frames entered per root (0 = unlimited).
    pub max_frames: u64,
    /// Absolute wall-clock deadline for the run.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// Returns `true` if no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps == 0 && self.max_frames == 0 && self.deadline.is_none()
    }

    /// Sets the per-solve transfer-step limit.
    pub fn steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the per-root frame limit.
    pub fn frames(mut self, max_frames: u64) -> Self {
        self.max_frames = max_frames;
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn deadline_in(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// One link of a cancellation chain: a flag plus an optional parent.
/// Cancellation propagates *down* the chain only — cancelling a child
/// never touches the parent, while a cancelled parent cancels every
/// descendant at its next [`CancelToken::is_cancelled`] read.
#[derive(Debug, Default)]
struct CancelNode {
    flag: AtomicBool,
    parent: Option<Arc<CancelNode>>,
}

/// A shared cooperative cancellation flag.
///
/// Cloning shares the flag. [`CancelToken::never`] (the default) carries no
/// flag at all and can never be cancelled — governed code pays one branch.
///
/// [`CancelToken::child`] derives a *linked* token for scoped work (one
/// server request, one batch item): the child observes the parent's
/// cancellation but can also be cancelled on its own without affecting
/// siblings — the shape per-request admission control needs.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Option<Arc<CancelNode>>);

impl CancelToken {
    /// Creates a live token, initially not cancelled.
    pub fn new() -> CancelToken {
        CancelToken(Some(Arc::new(CancelNode::default())))
    }

    /// A token that can never be cancelled (allocation-free).
    pub fn never() -> CancelToken {
        CancelToken(None)
    }

    /// Derives a linked child token: cancelled once either it or this
    /// token (or any further ancestor) is cancelled. Cancelling the child
    /// leaves this token — and every sibling child — untouched. A child of
    /// [`CancelToken::never`] is an ordinary independent token.
    pub fn child(&self) -> CancelToken {
        CancelToken(Some(Arc::new(CancelNode {
            flag: AtomicBool::new(false),
            parent: self.0.clone(),
        })))
    }

    /// Requests cancellation. Safe to call from any thread, repeatedly.
    pub fn cancel(&self) {
        if let Some(node) = &self.0 {
            node.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on this
    /// token or any ancestor it was [derived](CancelToken::child) from.
    pub fn is_cancelled(&self) -> bool {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.flag.load(Ordering::Relaxed) {
                return true;
            }
            node = n.parent.as_deref();
        }
        false
    }
}

/// How often governed loops pay for an `Instant::now()` deadline read: every
/// `DEADLINE_STRIDE`-th step check. Frame entries always check.
const DEADLINE_STRIDE: u64 = 256;

/// One root's governance state: a [`Budget`], the shared [`CancelToken`],
/// and the running frame count. Create one per root so frame counts reset.
///
/// All checks *trip* on exhaustion: they raise an [`Interrupt`] unwind that
/// the enclosing [`quarantine`] converts into a [`Fault`]. Code outside a
/// quarantine must not call a tripping check with a non-trivial budget.
#[derive(Debug, Default)]
pub struct Governor {
    budget: Budget,
    cancel: CancelToken,
    frames: AtomicU64,
    governed: bool,
}

impl Governor {
    /// A governor with no limits: every check is a single branch.
    pub fn unlimited() -> Governor {
        Governor::default()
    }

    /// A governor enforcing `budget` and observing `cancel`.
    pub fn new(budget: Budget, cancel: CancelToken) -> Governor {
        let governed = !budget.is_unlimited() || cancel.0.is_some();
        Governor {
            budget,
            cancel,
            frames: AtomicU64::new(0),
            governed,
        }
    }

    /// Checks cancellation and the deadline (not the step/frame budgets).
    #[inline]
    pub fn check_point(&self) {
        if !self.governed {
            return;
        }
        self.check_cancel_and_deadline();
    }

    fn check_cancel_and_deadline(&self) {
        if self.cancel.is_cancelled() {
            trip(Cause::Cancelled, "run cancelled".to_owned());
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                trip(Cause::Deadline, "wall-clock deadline passed".to_owned());
            }
        }
    }

    /// Per-worklist-pop check: `steps` is the solve-local transfer count.
    /// Trips when the per-solve step budget is exhausted; checks
    /// cancellation/deadline every [`DEADLINE_STRIDE`] steps.
    #[inline]
    pub fn check_step(&self, steps: u64) {
        if !self.governed {
            return;
        }
        if self.budget.max_steps != 0 && steps >= self.budget.max_steps {
            trip(
                Cause::StepBudget,
                format!("fixpoint exceeded {} transfer steps", self.budget.max_steps),
            );
        }
        if steps.is_multiple_of(DEADLINE_STRIDE) {
            self.check_cancel_and_deadline();
        }
    }

    /// Per-frame check, called on *every* method-frame entry (before any
    /// memo lookup, so the count is a pure function of the root and never
    /// depends on what other workers memoized first). Trips when the
    /// per-root frame budget is exhausted; also checks cancellation and the
    /// deadline.
    #[inline]
    pub fn enter_frame(&self) {
        if !self.governed {
            return;
        }
        let frames = self.frames.fetch_add(1, Ordering::Relaxed) + 1;
        if self.budget.max_frames != 0 && frames > self.budget.max_frames {
            trip(
                Cause::FrameBudget,
                format!("root exceeded {} method frames", self.budget.max_frames),
            );
        }
        self.check_cancel_and_deadline();
    }

    /// Frames entered so far under this governor.
    pub fn frames_entered(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }
}

/// The typed unwind payload a tripped [`Governor`] raises. [`quarantine`]
/// downcasts it back; anything else caught there is a genuine panic.
#[derive(Clone, Debug)]
pub struct Interrupt {
    /// Which limit tripped.
    pub cause: Cause,
    /// Human-readable detail.
    pub detail: String,
}

/// Raises an [`Interrupt`] unwind. Must only run inside a [`quarantine`].
pub fn trip(cause: Cause, detail: String) -> ! {
    panic::panic_any(Interrupt { cause, detail })
}

/// A contained failure of one quarantined unit of work.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Why the unit failed.
    pub cause: Cause,
    /// The interrupt detail or the panic payload message.
    pub message: String,
}

thread_local! {
    /// Nesting depth of active quarantines on this thread; non-zero
    /// suppresses the default panic hook's stderr backtrace for unwinds we
    /// are about to catch and convert.
    static QUARANTINE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Wraps the process panic hook exactly once so expected, quarantined
/// unwinds do not spam stderr; panics outside any quarantine still reach
/// the previous hook unchanged.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUARANTINE_DEPTH.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Runs `f` in a fault-isolation boundary: a [`Governor`] trip or a genuine
/// panic inside `f` is caught and returned as a structured [`Fault`]
/// instead of unwinding further.
///
/// The closure is wrapped in `AssertUnwindSafe`: callers hand in shared
/// analysis state (summary stores, recorders) whose invariants hold at
/// every trip point — completed summaries are pure functions of their key,
/// so observing a partially-analyzed root's side effects is sound.
pub fn quarantine<T>(f: impl FnOnce() -> T) -> Result<T, Fault> {
    install_quiet_hook();
    QUARANTINE_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUARANTINE_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| {
        if let Some(interrupt) = payload.downcast_ref::<Interrupt>() {
            Fault {
                cause: interrupt.cause,
                message: interrupt.detail.clone(),
            }
        } else if let Some(msg) = payload.downcast_ref::<&'static str>() {
            Fault {
                cause: Cause::Panic,
                message: (*msg).to_owned(),
            }
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            Fault {
                cause: Cause::Panic,
                message: msg.clone(),
            }
        } else {
            Fault {
                cause: Cause::Panic,
                message: "non-string panic payload".to_owned(),
            }
        }
    })
}

/// One degradation event, as surfaced in reports, `spo diff`, and the
/// `diagnostics` section of the stats snapshot.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Diagnostic {
    /// Which pipeline stage degraded (primary sort key, so parse
    /// diagnostics render before analysis diagnostics).
    pub phase: Phase,
    /// The degraded unit: an entry-point signature for analysis, a file or
    /// class name for parse.
    pub root: String,
    /// Why it degraded.
    pub cause: Cause,
    /// How serious the degradation is.
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// An analysis-phase diagnostic for a quarantined root.
    pub fn degraded_root(root: String, fault: &Fault) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            phase: Phase::Analysis,
            root,
            cause: fault.cause,
            message: fault.message.clone(),
        }
    }

    /// A cache-phase warning for an unusable persistent-cache entry. Never
    /// affects results (the root re-analyzes cold), so consumers must not
    /// fold it into "degraded" exit states.
    pub fn cache_fallback(unit: String, message: String) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            phase: Phase::Cache,
            root: unit,
            cause: Cause::Cache,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}: {}",
            self.severity, self.phase, self.root, self.cause, self.message
        )
    }
}

/// The run-level guard configuration handed to the engine and the CLI: the
/// budget applied to every root, the shared cancel token, and the
/// test-only fault-injection plan.
#[derive(Clone, Debug, Default)]
pub struct GuardConfig {
    /// Budget applied to each root (frame counts reset per root).
    pub budget: Budget,
    /// Shared cancellation flag (e.g. flipped by the CLI's Ctrl-C handler).
    pub cancel: CancelToken,
    /// Test-only: roots whose signature contains one of these substrings
    /// panic before analysis, exercising the quarantine path end to end.
    pub inject_panics: Vec<String>,
    /// Test-only: a worker whose finished batch contains a root matching
    /// one of these substrings panics *while holding the shared result
    /// lock*, poisoning it — the regression scenario for lock-poison
    /// recovery in the engine's result-append path.
    pub inject_append_panics: Vec<String>,
    /// Test-only: per-root sleep (milliseconds) before analysis, used to
    /// make cancellation races deterministic in tests.
    pub inject_sleep_ms: u64,
}

impl GuardConfig {
    /// Returns `true` if this configuration can never degrade anything.
    pub fn is_inert(&self) -> bool {
        self.budget.is_unlimited()
            && self.cancel.0.is_none()
            && self.inject_panics.is_empty()
            && self.inject_append_panics.is_empty()
    }

    /// A fresh per-root [`Governor`] over this configuration.
    pub fn governor(&self) -> Governor {
        Governor::new(self.budget, self.cancel.clone())
    }

    /// Derives the admission-control configuration for one unit of served
    /// work (one daemon request): the budget is tightened by `timeout` if
    /// given (keeping any earlier, stricter deadline), and the cancel token
    /// becomes a linked [child](CancelToken::child) — cancellable on its
    /// own without affecting sibling requests, while still observing a
    /// cancellation of this base configuration (e.g. daemon shutdown).
    ///
    /// The returned config shares no mutable state with `self` beyond the
    /// cancellation chain; keep a clone of its `cancel` field to cancel the
    /// request later.
    pub fn for_request(&self, timeout: Option<Duration>) -> GuardConfig {
        let mut derived = self.clone();
        derived.cancel = self.cancel.child();
        if let Some(timeout) = timeout {
            let requested = Instant::now() + timeout;
            derived.budget.deadline = Some(match self.budget.deadline {
                Some(base) => base.min(requested),
                None => requested,
            });
        }
        derived
    }

    /// Test-only fault injection: panics if `signature` matches the plan.
    /// Also applies the injected per-root sleep.
    pub fn maybe_inject(&self, signature: &str) {
        if self.inject_sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.inject_sleep_ms));
        }
        if self
            .inject_panics
            .iter()
            .any(|needle| signature.contains(needle.as_str()))
        {
            panic!("injected fault for root {signature}");
        }
    }

    /// Test-only fault injection for the engine's result-append path:
    /// panics if any of the batch's `signatures` matches the plan. The
    /// engine calls this *after* acquiring the shared result lock, so the
    /// injected panic poisons it.
    pub fn maybe_inject_append<'a>(&self, signatures: impl Iterator<Item = &'a str>) {
        if self.inject_append_panics.is_empty() {
            return;
        }
        for sig in signatures {
            if self
                .inject_append_panics
                .iter()
                .any(|needle| sig.contains(needle.as_str()))
            {
                panic!("injected append fault for batch containing {sig}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let gov = Governor::unlimited();
        for step in 0..10_000 {
            gov.check_step(step);
        }
        for _ in 0..10_000 {
            gov.enter_frame();
        }
        gov.check_point();
    }

    #[test]
    fn step_budget_trips_as_fault() {
        let gov = Governor::new(Budget::default().steps(10), CancelToken::never());
        let fault = quarantine(|| {
            for step in 0.. {
                gov.check_step(step);
            }
        })
        .unwrap_err();
        assert_eq!(fault.cause, Cause::StepBudget);
        assert!(fault.message.contains("10"));
    }

    #[test]
    fn frame_budget_trips_and_counts() {
        let gov = Governor::new(Budget::default().frames(3), CancelToken::never());
        let fault = quarantine(|| loop {
            gov.enter_frame();
        })
        .unwrap_err();
        assert_eq!(fault.cause, Cause::FrameBudget);
        assert_eq!(gov.frames_entered(), 4);
    }

    #[test]
    fn cancellation_observed_at_check_points() {
        let token = CancelToken::new();
        let gov = Governor::new(Budget::default(), token.clone());
        gov.check_point(); // not cancelled yet
        token.cancel();
        let fault = quarantine(|| gov.check_point()).unwrap_err();
        assert_eq!(fault.cause, Cause::Cancelled);
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_trips() {
        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        };
        let gov = Governor::new(budget, CancelToken::never());
        let fault = quarantine(|| gov.enter_frame()).unwrap_err();
        assert_eq!(fault.cause, Cause::Deadline);
    }

    #[test]
    fn quarantine_captures_panic_messages() {
        let fault = quarantine(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(fault.cause, Cause::Panic);
        assert_eq!(fault.message, "boom 42");
        let fault = quarantine(|| std::panic::panic_any(7_u32)).unwrap_err();
        assert_eq!(fault.cause, Cause::Panic);
        assert_eq!(fault.message, "non-string panic payload");
    }

    #[test]
    fn quarantine_passes_values_through() {
        assert_eq!(quarantine(|| 1 + 1).unwrap(), 2);
    }

    #[test]
    fn nested_quarantines_restore_suppression_depth() {
        let outer = quarantine(|| {
            let inner = quarantine(|| panic!("inner"));
            assert_eq!(inner.unwrap_err().message, "inner");
            "outer ok"
        });
        assert_eq!(outer.unwrap(), "outer ok");
    }

    #[test]
    fn guard_config_injection_matches_substrings() {
        let cfg = GuardConfig {
            inject_panics: vec!["A.read".to_owned()],
            ..GuardConfig::default()
        };
        assert!(!cfg.is_inert());
        cfg.maybe_inject("t.B.write()"); // no match, no panic
        let fault = quarantine(|| cfg.maybe_inject("t.A.read()")).unwrap_err();
        assert_eq!(fault.cause, Cause::Panic);
        assert!(fault.message.contains("t.A.read()"));
    }

    #[test]
    fn child_tokens_observe_parent_but_not_siblings() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled(), "sibling must stay live");
        assert!(!parent.is_cancelled(), "child cancel must not propagate up");
        parent.cancel();
        assert!(b.is_cancelled(), "parent cancel reaches every child");
        // A child of `never` is an ordinary independent token.
        let orphan = CancelToken::never().child();
        assert!(!orphan.is_cancelled());
        orphan.cancel();
        assert!(orphan.is_cancelled());
    }

    #[test]
    fn for_request_tightens_deadline_and_links_cancel() {
        let base = GuardConfig {
            budget: Budget::default().deadline_in(Duration::from_secs(3600)),
            cancel: CancelToken::new(),
            ..GuardConfig::default()
        };
        // A shorter request timeout wins over the (looser) base deadline.
        let req = base.for_request(Some(Duration::from_millis(1)));
        assert!(req.budget.deadline.unwrap() < base.budget.deadline.unwrap());
        // A looser request timeout keeps the stricter base deadline.
        let loose = base.for_request(Some(Duration::from_secs(7200)));
        assert_eq!(loose.budget.deadline, base.budget.deadline);
        // No timeout: budget untouched, but the token is still a child.
        let plain = base.for_request(None);
        assert_eq!(plain.budget.deadline, base.budget.deadline);
        plain.cancel.cancel();
        assert!(!base.cancel.is_cancelled());
        base.cancel.cancel();
        assert!(base.for_request(None).cancel.is_cancelled());
    }

    #[test]
    fn diagnostic_renders_one_line() {
        let d = Diagnostic::degraded_root(
            "t.A.m()".to_owned(),
            &Fault {
                cause: Cause::Panic,
                message: "boom".to_owned(),
            },
        );
        assert_eq!(d.to_string(), "warning [analysis] t.A.m(): panic: boom");
    }

    #[test]
    fn diagnostics_sort_parse_first() {
        let mut v = [
            Diagnostic {
                severity: Severity::Warning,
                phase: Phase::Analysis,
                root: "a".into(),
                cause: Cause::Panic,
                message: String::new(),
            },
            Diagnostic {
                severity: Severity::Error,
                phase: Phase::Parse,
                root: "z".into(),
                cause: Cause::Parse,
                message: String::new(),
            },
        ];
        v.sort();
        assert_eq!(v[0].phase, Phase::Parse);
    }
}
