//! Robustness and round-trip properties of the policy exchange format.
//!
//! Randomized over fixed seeds via the in-tree `spo-rng` PRNG.

use spo_core::{
    export_policies, import_policies, Check, CheckSet, EntryPolicy, EventKey, EventPolicy,
    LibraryPolicies, ALL_CHECKS,
};
use spo_dataflow::Dnf;
use spo_rng::SmallRng;

/// An arbitrary check set.
fn any_checkset(rng: &mut SmallRng) -> CheckSet {
    let n = rng.gen_range(0..6usize);
    (0..n)
        .map(|_| ALL_CHECKS[rng.gen_range(0..31usize)])
        .collect()
}

fn lower_ident(rng: &mut SmallRng) -> String {
    const FIRST: &[char] = &['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'w', 'z'];
    const REST: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'x', 'y', 'z', '0', '1', '2', '9', '_',
    ];
    let mut s = String::new();
    s.push(*rng.choose(FIRST).unwrap());
    let extra = rng.gen_range(0..11usize);
    for _ in 0..extra {
        s.push(*rng.choose(REST).unwrap());
    }
    s
}

fn any_event(rng: &mut SmallRng) -> EventKey {
    match rng.gen_range(0..4u32) {
        0 => EventKey::ApiReturn,
        1 => EventKey::Native(lower_ident(rng)),
        2 => EventKey::DataRead(lower_ident(rng)),
        _ => EventKey::DataWrite(lower_ident(rng)),
    }
}

fn any_policy(rng: &mut SmallRng) -> EventPolicy {
    let extra_must = any_checkset(rng);
    let npaths = rng.gen_range(0..4usize);
    let paths: Vec<CheckSet> = (0..npaths).map(|_| any_checkset(rng)).collect();
    let may_paths: Dnf = paths.iter().map(|c| c.bits()).collect();
    let flat = CheckSet::from_bits(may_paths.flat_union());
    // must ⊆ may to mirror real analysis output.
    let must = extra_must
        .intersect(flat)
        .intersect(CheckSet::from_bits(may_paths.must_view()));
    EventPolicy {
        must,
        may: flat,
        may_paths,
    }
}

fn signature(rng: &mut SmallRng) -> String {
    const FIRST: &[char] = &['A', 'B', 'C', 'a', 'b', 'z'];
    const REST: &[char] = &['A', 'b', 'C', 'd', '0', '7', '.', 'x'];
    let mut s = String::new();
    s.push(*rng.choose(FIRST).unwrap());
    let extra = rng.gen_range(0..17usize);
    for _ in 0..extra {
        s.push(*rng.choose(REST).unwrap());
    }
    s.push_str("()");
    s
}

fn any_library(rng: &mut SmallRng) -> LibraryPolicies {
    let mut lib = LibraryPolicies {
        name: "fuzz".into(),
        ..Default::default()
    };
    let nentries = rng.gen_range(0..6usize);
    for _ in 0..nentries {
        let sig = signature(rng);
        let mut e = EntryPolicy::new(sig.clone());
        let nevents = rng.gen_range(0..4usize);
        for _ in 0..nevents {
            e.events.insert(any_event(rng), any_policy(rng));
        }
        // Exercise origins too.
        e.event_origins
            .entry(EventKey::ApiReturn)
            .or_default()
            .insert(format!("{sig}#origin"));
        e.check_origins
            .entry(Check::Read.index())
            .or_default()
            .insert(format!("{sig}#check"));
        lib.entries.insert(sig, e);
    }
    lib
}

/// Arbitrary libraries round-trip exactly.
#[test]
fn roundtrip_arbitrary_policies() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0xf022_0000 + seed);
        let lib = any_library(&mut rng);
        let text = export_policies(&lib);
        let back = import_policies(&text).unwrap();
        assert_eq!(back.entries, lib.entries, "seed {seed}");
    }
}

/// The importer never panics on arbitrary text.
#[test]
fn importer_total_on_noise() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x2015_0000 + seed);
        let len = rng.gen_range(0..301usize);
        let s: String = (0..len)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => rng.gen_range(0x20..0x7fu32),
                1 => rng.gen_range(0..0x20u32),
                _ => rng.gen_range(0xa0..0x2500u32),
            })
            .filter_map(char::from_u32)
            .collect();
        let _ = import_policies(&s);
    }
}

/// Keyword soup exercises deeper importer paths.
#[test]
fn importer_total_on_keyword_soup() {
    const WORDS: &[&str] = &[
        "library",
        "entry",
        "event",
        "origin",
        "checkorigin",
        "return",
        "must",
        "may",
        "native:x",
        "read:y",
        "{}",
        "{checkRead}",
        "-",
        "!",
        "checkRead",
        "a.B.c()",
    ];
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x5017_0000 + seed);
        let len = rng.gen_range(0..30usize);
        let words: Vec<&str> = (0..len).map(|_| *rng.choose(WORDS).unwrap()).collect();
        let _ = import_policies(&words.join(" "));
        let _ = import_policies(&words.join("\n"));
    }
}
