//! Robustness and round-trip properties of the policy exchange format.

use proptest::prelude::*;
use spo_core::{
    export_policies, import_policies, Check, CheckSet, EntryPolicy, EventKey, EventPolicy,
    LibraryPolicies, ALL_CHECKS,
};
use spo_dataflow::Dnf;

/// Strategy for an arbitrary check set.
fn any_checkset() -> impl Strategy<Value = CheckSet> {
    proptest::collection::vec(0usize..31, 0..6).prop_map(|idxs| {
        idxs.into_iter().map(|i| ALL_CHECKS[i]).collect()
    })
}

fn any_event() -> impl Strategy<Value = EventKey> {
    prop_oneof![
        Just(EventKey::ApiReturn),
        "[a-z][a-z0-9_]{0,10}".prop_map(EventKey::Native),
        "[a-z][a-z0-9_]{0,10}".prop_map(EventKey::DataRead),
        "[a-z][a-z0-9_]{0,10}".prop_map(EventKey::DataWrite),
    ]
}

fn any_policy() -> impl Strategy<Value = EventPolicy> {
    (any_checkset(), proptest::collection::vec(any_checkset(), 0..4)).prop_map(
        |(extra_must, paths)| {
            let may_paths: Dnf = paths.iter().map(|c| c.bits()).collect();
            let flat = CheckSet::from_bits(may_paths.flat_union());
            // must ⊆ may to mirror real analysis output.
            let must = extra_must.intersect(flat).intersect(CheckSet::from_bits(
                may_paths.must_view(),
            ));
            EventPolicy { must, may: flat, may_paths }
        },
    )
}

fn any_library() -> impl Strategy<Value = LibraryPolicies> {
    proptest::collection::btree_map(
        "[A-Za-z][A-Za-z0-9.]{0,16}\\(\\)",
        proptest::collection::btree_map(any_event(), any_policy(), 0..4),
        0..6,
    )
    .prop_map(|entries| {
        let mut lib = LibraryPolicies { name: "fuzz".into(), ..Default::default() };
        for (sig, events) in entries {
            let mut e = EntryPolicy::new(sig.clone());
            e.events = events;
            // Exercise origins too.
            e.event_origins
                .entry(EventKey::ApiReturn)
                .or_default()
                .insert(format!("{sig}#origin"));
            e.check_origins
                .entry(Check::Read.index())
                .or_default()
                .insert(format!("{sig}#check"));
            lib.entries.insert(sig, e);
        }
        lib
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary libraries round-trip exactly.
    #[test]
    fn roundtrip_arbitrary_policies(lib in any_library()) {
        let text = export_policies(&lib);
        let back = import_policies(&text).unwrap();
        prop_assert_eq!(back.entries, lib.entries);
    }

    /// The importer never panics on arbitrary text.
    #[test]
    fn importer_total_on_noise(s in "\\PC{0,300}") {
        let _ = import_policies(&s);
    }

    /// Keyword soup exercises deeper importer paths.
    #[test]
    fn importer_total_on_keyword_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("library"), Just("entry"), Just("event"), Just("origin"),
            Just("checkorigin"), Just("return"), Just("must"), Just("may"),
            Just("native:x"), Just("read:y"), Just("{}"), Just("{checkRead}"),
            Just("-"), Just("!"), Just("checkRead"), Just("a.B.c()"),
        ],
        0..30,
    )) {
        let _ = import_policies(&words.join(" "));
        let _ = import_policies(&words.join("\n"));
    }
}
