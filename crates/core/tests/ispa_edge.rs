//! Edge-case coverage for the interprocedural policy analysis.

use spo_core::{AnalysisOptions, Analyzer, Check, CheckSet, EventDef, EventKey, LibraryPolicies};

const PRELUDE: &str = r#"
class java.lang.Object { }
class java.lang.SecurityManager {
  method public native void checkExit(int status);
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
"#;

fn analyze(src: &str, options: AnalysisOptions) -> LibraryPolicies {
    let mut p = spo_jir::parse_program(PRELUDE).unwrap();
    spo_jir::parse_into(src, &mut p).unwrap();
    Analyzer::new(&p, options).analyze_library("t")
}

#[test]
fn nested_privileged_regions_stay_privileged() {
    let lib = analyze(
        r#"
class t.A {
  method public void m() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    privileged {
      privileged {
        nop;
      }
      // Still inside the outer region: a no-op check.
      virtualinvoke sm.checkExit(0);
    }
    staticinvoke t.A.op0();
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.A.m()"].events[&EventKey::Native("op0".into())];
    assert!(
        ev.may.is_empty(),
        "check inside nested privileged region must be a no-op"
    );
}

#[test]
fn check_after_privileged_region_counts() {
    let lib = analyze(
        r#"
class t.B {
  method public void m() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    privileged {
      nop;
    }
    virtualinvoke sm.checkExit(0);
    staticinvoke t.B.op0();
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.B.m()"].events[&EventKey::Native("op0".into())];
    assert_eq!(ev.must, CheckSet::of(Check::Exit));
}

#[test]
fn ambiguous_virtual_call_is_skipped() {
    // Two overrides: CHA cannot pick one; the callee's check and native
    // must not leak into the caller's policy.
    let lib = analyze(
        r#"
class t.Base {
  method public void work() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    return;
  }
}
class t.Sub extends t.Base {
  method public void work() { return; }
}
class t.Caller {
  method public void m(t.Base b) {
    virtualinvoke b.work();
    staticinvoke t.Caller.op0();
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let entry = &lib.entries["t.Caller.m(t.Base)"];
    let ev = &entry.events[&EventKey::Native("op0".into())];
    assert!(ev.may.is_empty(), "unresolved call must contribute nothing");
    assert!(lib.stats.unresolved_calls > 0);
}

#[test]
fn native_public_entry_is_its_own_event() {
    let lib = analyze(
        r#"
class t.N {
  method public native void raw(int x);
}
"#,
        AnalysisOptions::default(),
    );
    let entry = &lib.entries["t.N.raw(int)"];
    let ev = &entry.events[&EventKey::Native("raw".into())];
    assert!(ev.may.is_empty());
    assert!(ev.must.is_empty());
}

#[test]
fn throw_only_paths_do_not_poison_exit() {
    let lib = analyze(
        r#"
class t.T {
  method public void m(bool bad) {
    local java.lang.SecurityManager sm;
    local java.lang.Object e;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("f");
    if bad goto boom;
    return;
  boom:
    e = new java.lang.Object;
    throw e;
  }
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.T.m(bool)"].events[&EventKey::ApiReturn];
    // The throwing path does not return; the single return carries the
    // check as a must.
    assert_eq!(ev.must, CheckSet::of(Check::Write));
}

#[test]
fn broad_mode_records_parameter_accesses_in_entry_only() {
    let opts = AnalysisOptions {
        events: EventDef::Broad,
        ..Default::default()
    };
    let lib = analyze(
        r#"
class t.P {
  method public int m(int size) {
    local int v;
    v = size + 1;
    staticinvoke t.P.helper(v);
    return v;
  }
  method private static void helper(int inner) {
    local int w;
    w = inner * 2;
    return;
  }
}
"#,
        opts,
    );
    let entry = &lib.entries["t.P.m(int)"];
    assert!(entry
        .events
        .contains_key(&EventKey::DataRead("size".into())));
    // Callee parameter names do not become events.
    assert!(!entry
        .events
        .contains_key(&EventKey::DataRead("inner".into())));
}

#[test]
fn broad_mode_sees_inherited_private_fields() {
    let opts = AnalysisOptions {
        events: EventDef::Broad,
        ..Default::default()
    };
    let lib = analyze(
        r#"
class t.Base {
  field private int secret;
}
class t.Sub extends t.Base {
  method public int leak() {
    local int v;
    v = this.secret;
    return v;
  }
}
"#,
        opts,
    );
    let entry = &lib.entries["t.Sub.leak()"];
    assert!(
        entry
            .events
            .contains_key(&EventKey::DataRead("secret".into())),
        "{:?}",
        entry.events.keys().collect::<Vec<_>>()
    );
}

#[test]
fn protected_entry_points_are_analyzed() {
    let lib = analyze(
        r#"
class t.Prot {
  method protected void hook() {
    staticinvoke t.Prot.op0();
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    assert!(lib.entries.contains_key("t.Prot.hook()"));
}

#[test]
fn constants_flow_through_two_call_levels() {
    // f(5) -> g(5) -> branch folds on the constant.
    let lib = analyze(
        r#"
class t.K {
  method public void entry() {
    staticinvoke t.K.f(5);
    staticinvoke t.K.op0();
    return;
  }
  method private static void f(int x) {
    staticinvoke t.K.g(x);
    return;
  }
  method private static void g(int y) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if y == 5 goto skip;
    virtualinvoke sm.checkExit(y);
  skip:
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.K.entry()"].events[&EventKey::Native("op0".into())];
    assert!(
        ev.may.is_empty(),
        "constant 5 must fold the branch two calls deep: {}",
        ev.may
    );
}

#[test]
fn arithmetic_on_constants_folds_across_calls() {
    let lib = analyze(
        r#"
class t.L {
  method public void entry() {
    local int a;
    a = 2 + 3;
    staticinvoke t.L.g(a);
    staticinvoke t.L.op0();
    return;
  }
  method private static void g(int y) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if y == 5 goto skip;
    virtualinvoke sm.checkExit(y);
  skip:
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.L.entry()"].events[&EventKey::Native("op0".into())];
    assert!(ev.may.is_empty());
}

#[test]
fn two_natives_same_name_combine() {
    // Two different classes declare nat(); they are distinct methods but
    // share the event key by simple name — occurrences combine (∩/∪).
    let lib = analyze(
        r#"
class t.M {
  method public void m(bool c) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if c goto second;
    virtualinvoke sm.checkRead("a");
    staticinvoke t.M.nat();
    return;
  second:
    virtualinvoke sm.checkWrite("b");
    staticinvoke t.M2.nat();
    return;
  }
  method private static native void nat();
}
class t.M2 {
  method public static native void nat();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.M.m(bool)"].events[&EventKey::Native("nat".into())];
    assert!(ev.must.is_empty());
    assert_eq!(
        ev.may,
        [Check::Read, Check::Write]
            .into_iter()
            .collect::<CheckSet>()
    );
}

#[test]
fn builder_constructed_programs_analyze_like_parsed_ones() {
    // The fluent builder and the textual frontend are two routes to the
    // same IR; the analysis must agree on both.
    use spo_jir::{MethodFlags, ProgramBuilder, Type};
    let mut pb = ProgramBuilder::new();
    {
        let mut cb = pb.class("java.lang.SecurityManager");
        cb.native_method(
            "checkExit",
            MethodFlags::PUBLIC,
            vec![Type::Int],
            Type::Void,
        );
        cb.finish().unwrap();
    }
    let sm_ty = pb.intern("java.lang.SecurityManager");
    {
        let mut cb = pb.class("java.lang.System");
        cb.field("security", Type::Ref(sm_ty), spo_jir::FieldFlags::STATIC);
        let mut mb = cb.method(
            "getSecurityManager",
            MethodFlags::PUBLIC | MethodFlags::STATIC,
            Type::Ref(sm_ty),
        );
        let sm = mb.local("sm", Type::Ref(sm_ty));
        mb.load_static(sm, "java.lang.System", "security");
        mb.ret_val(sm);
        mb.finish();
        cb.finish().unwrap();
    }
    {
        let mut cb = pb.class("b.Built");
        cb.native_method(
            "op0",
            MethodFlags::PRIVATE | MethodFlags::STATIC,
            vec![],
            Type::Void,
        );
        let mut mb = cb.method("m", MethodFlags::PUBLIC, Type::Void);
        mb.security_check("checkExit", vec![spo_jir::Const::Int(0).into()]);
        mb.invoke_static(None, "b.Built", "op0", vec![]);
        mb.ret();
        mb.finish();
        cb.finish().unwrap();
    }
    let built = pb.finish();
    let lib = Analyzer::new(&built, AnalysisOptions::default()).analyze_library("built");
    let ev = &lib.entries["b.Built.m()"].events[&EventKey::Native("op0".into())];
    // security_check emits the guarded idiom: a may (not must) policy.
    assert_eq!(ev.may, CheckSet::of(Check::Exit));
    assert!(ev.must.is_empty());

    // And the printed form re-analyzes identically.
    let printed = spo_jir::print_program(&built);
    let reparsed = spo_jir::parse_program(&printed).unwrap();
    let lib2 = Analyzer::new(&reparsed, AnalysisOptions::default()).analyze_library("built");
    assert_eq!(
        lib.entries["b.Built.m()"].events,
        lib2.entries["b.Built.m()"].events
    );
}

#[test]
fn call_inside_loop_sees_fixpoint_policy() {
    // The callee is invoked from a loop whose in-policy grows across
    // iterations (first trip: no check; after the back edge the check has
    // executed). The event recorded inside the callee must reflect the
    // *fixpoint* may policy {{},{checkRead}}, not just the first visit.
    let lib = analyze(
        r#"
class t.Loop {
  method public void m(bool again) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
  top:
    staticinvoke t.Loop.emit();
    virtualinvoke sm.checkRead("f");
    if again goto top;
    return;
  }
  method private static void emit() {
    staticinvoke t.Loop.op0();
    return;
  }
  method private static native void op0();
}
"#,
        AnalysisOptions::default(),
    );
    let ev = &lib.entries["t.Loop.m(bool)"].events[&EventKey::Native("op0".into())];
    assert_eq!(
        ev.may,
        CheckSet::of(Check::Read),
        "second trip carries the check"
    );
    assert!(ev.must.is_empty(), "first trip does not");
    // The API return always follows at least one check.
    let ret = &lib.entries["t.Loop.m(bool)"].events[&EventKey::ApiReturn];
    assert_eq!(ret.must, CheckSet::of(Check::Read));
}

#[test]
fn analyze_entry_matches_whole_library_result() {
    let mut p = spo_jir::parse_program(PRELUDE).unwrap();
    spo_jir::parse_into(
        r#"
class t.One {
  method public void api(int x) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    staticinvoke t.One.op0();
    return;
  }
  method private static native void op0();
}
"#,
        &mut p,
    )
    .unwrap();
    let analyzer = Analyzer::new(&p, AnalysisOptions::default());
    let single = analyzer
        .analyze_entry("t.One.api(int)")
        .expect("entry exists");
    let whole = analyzer.analyze_library("t");
    assert_eq!(single.events, whole.entries["t.One.api(int)"].events);
    assert!(analyzer.analyze_entry("t.One.missing()").is_none());
}

#[test]
fn summaries_tainted_by_recursion_cuts_are_not_reused_across_entries() {
    // Entry a() reaches B via the cycle A -> B -> A: analyzing B under
    // a() hits a recursion cut (back to A) and its summary depends on A
    // being on the stack. Entry b() reaches B with no cycle context.
    // Global memoization must not serve b() the context-dependent summary
    // computed under a() — results must match the no-memo analysis.
    let src = r#"
class t.R {
  method public void a() {
    staticinvoke t.R.fa(1);
    staticinvoke t.R.op0();
    return;
  }
  method public void b() {
    staticinvoke t.R.fb(0);
    staticinvoke t.R.op0();
    return;
  }
  method private static void fa(int n) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("r");
    staticinvoke t.R.fb(n);
    return;
  }
  method private static void fb(int n) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("w");
    if n == 0 goto done;
    staticinvoke t.R.fa(n);
  done:
    return;
  }
  method private static native void op0();
}
"#;
    let base = analyze(
        src,
        AnalysisOptions {
            memo: spo_core::MemoScope::None,
            ..Default::default()
        },
    );
    let global = analyze(
        src,
        AnalysisOptions {
            memo: spo_core::MemoScope::Global,
            ..Default::default()
        },
    );
    for sig in ["t.R.a()", "t.R.b()"] {
        assert_eq!(
            base.entries[sig].events, global.entries[sig].events,
            "global memo diverges from no-memo at {sig}"
        );
    }
}
