//! Differential testing of the policy analysis against a brute-force
//! reference: on acyclic single-method programs, enumerate every
//! entry-to-event path explicitly and compute the policy from first
//! principles — the MUST set is the intersection of per-path check sets,
//! the MAY disjuncts are exactly the distinct per-path check sets. The
//! dataflow fixpoint must agree.

use spo_core::{AnalysisOptions, Analyzer, Check, CheckSet, EventKey};
use spo_jir::{Body, Cfg, Stmt};
use spo_rng::SmallRng;
use std::collections::BTreeSet;

const CHECKS: [Check; 4] = [Check::Read, Check::Write, Check::Connect, Check::Exit];

/// A structured random body: a sequence of segments, each either a check,
/// a diamond (two arms, each a list of checks), or a nop; ends with the
/// native event and a return.
#[derive(Clone, Debug)]
enum Seg {
    Check(u8),
    Diamond(Vec<u8>, Vec<u8>),
    Nop,
}

fn gen_seg(rng: &mut SmallRng) -> Seg {
    match rng.gen_range(0..3u32) {
        0 => Seg::Check(rng.gen_range(0..4u8)),
        1 => {
            let arm = |rng: &mut SmallRng| {
                let n = rng.gen_range(0..3usize);
                (0..n).map(|_| rng.gen_range(0..4u8)).collect::<Vec<u8>>()
            };
            let a = arm(rng);
            let b = arm(rng);
            Seg::Diamond(a, b)
        }
        _ => Seg::Nop,
    }
}

fn program_source(segs: &[Seg]) -> String {
    use std::fmt::Write as _;
    let mut body = String::new();
    let mut params = String::new();
    let mut label = 0usize;
    for (i, s) in segs.iter().enumerate() {
        match s {
            Seg::Nop => body.push_str("    nop;\n"),
            Seg::Check(c) => {
                writeln!(
                    body,
                    "    virtualinvoke sm.{}(null);",
                    CHECKS[*c as usize].method_name()
                )
                .unwrap();
            }
            Seg::Diamond(a, b) => {
                let (alt, join) = (label, label + 1);
                label += 2;
                if !params.is_empty() {
                    params.push_str(", ");
                }
                writeln!(params, "bool c{i}").unwrap();
                // Trim the trailing newline the `writeln!` added to params.
                params = params.trim_end().to_owned();
                writeln!(body, "    if c{i} goto alt{alt};").unwrap();
                for c in a {
                    writeln!(
                        body,
                        "    virtualinvoke sm.{}(null);",
                        CHECKS[*c as usize].method_name()
                    )
                    .unwrap();
                }
                writeln!(body, "    goto join{join};").unwrap();
                writeln!(body, "  alt{alt}:").unwrap();
                for c in b {
                    writeln!(
                        body,
                        "    virtualinvoke sm.{}(null);",
                        CHECKS[*c as usize].method_name()
                    )
                    .unwrap();
                }
                writeln!(body, "  join{join}:").unwrap();
                body.push_str("    nop;\n");
            }
        }
    }
    format!(
        r#"
class java.lang.SecurityManager {{
  method public native void checkRead(java.lang.Object f);
  method public native void checkWrite(java.lang.Object f);
  method public native void checkConnect(java.lang.Object a, java.lang.Object b);
  method public native void checkExit(java.lang.Object s);
}}
class t.C {{
  method public void m(java.lang.SecurityManager sm{comma}{params}) {{
{body}    staticinvoke t.C.event0();
    return;
  }}
  method private static native void event0();
}}
"#,
        comma = if params.is_empty() { "" } else { ", " },
    )
}

/// Brute-force: enumerate all acyclic paths from entry to each `event0`
/// call site, collecting the check set gen'd along each path.
fn reference_paths(program: &spo_jir::Program) -> BTreeSet<CheckSet> {
    let c = program.class_by_str("t.C").unwrap();
    let m = &program.class(c).methods[0];
    let body: &Body = m.body.as_ref().unwrap();
    let cfg: Cfg = body.cfg();
    let mut out = BTreeSet::new();
    // DFS over paths (bodies are acyclic by construction).
    let mut stack: Vec<(usize, CheckSet)> = vec![(0, CheckSet::empty())];
    while let Some((i, checks)) = stack.pop() {
        let stmt = &body.stmts[i];
        let mut checks = checks;
        if let Stmt::Invoke { call, .. } = stmt {
            if program.str(call.callee.class) == "java.lang.SecurityManager" {
                if let Some(check) = Check::from_name(program.str(call.callee.name)) {
                    checks.insert(check);
                }
            } else if program.str(call.callee.name) == "event0" {
                // Policy snapshot at the event (before it executes).
                out.insert(checks);
            }
        }
        for &s in cfg.succs(i) {
            stack.push((s, checks));
        }
    }
    out
}

fn cmp_char(segs: &[Seg]) {
    let src = program_source(segs);
    let program = spo_jir::parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));

    let reference = reference_paths(&program);
    let ref_must = reference
        .iter()
        .copied()
        .reduce(|a, b| a.intersect(b))
        .unwrap_or(CheckSet::empty());

    let analyzer = Analyzer::new(&program, AnalysisOptions::default());
    let lib = analyzer.analyze_library("t");
    let entry = lib
        .entries
        .values()
        .find(|e| e.signature.starts_with("t.C.m("))
        .expect("entry analyzed");
    let ev = &entry.events[&EventKey::Native("event0".into())];

    assert_eq!(ev.must, ref_must, "must mismatch\n{}", src);
    let analysis_paths: BTreeSet<CheckSet> = ev
        .may_paths
        .disjuncts()
        .iter()
        .map(|&d| CheckSet::from_bits(d))
        .collect();
    assert_eq!(analysis_paths, reference, "may disjuncts mismatch\n{}", src);
}

/// SPDA agrees with explicit path enumeration on must sets and on the
/// exact disjunctive may structure.
#[test]
fn spda_matches_brute_force_path_enumeration() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x04ac_0000 + seed);
        let n = rng.gen_range(0..6usize);
        let segs: Vec<Seg> = (0..n).map(|_| gen_seg(&mut rng)).collect();
        cmp_char(&segs);
    }
}

#[test]
fn brute_force_agrees_on_figure_1_shape() {
    // Deterministic instance: the Figure 1 disjunctive pattern.
    let segs = vec![Seg::Diamond(vec![2, 0], vec![3])];
    cmp_char(&segs);
}
