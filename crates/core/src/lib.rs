//! # spo-core — the security policy oracle
//!
//! Reproduction of *"A Security Policy Oracle: Detecting Security Holes
//! Using Multiple API Implementations"* (Srivastava, Bond, McKinley,
//! Shmatikov; PLDI 2011).
//!
//! The crate computes, for every API entry point of a
//! [`spo_jir::Program`], the security policies its implementation enforces
//! — which of the 31 [`Check`]s **may** and **must** precede each
//! security-sensitive [`EventKey`] (native calls, API returns, and
//! optionally private-data accesses) — and then **differences** those
//! policies across independent implementations of the same API. Any
//! difference is at least an interoperability bug, and possibly an
//! exploitable vulnerability: implementations of the same API must enforce
//! the same policy, or at least one of them is wrong.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod checks;
mod diff;
mod events;
mod exchange;
mod html;
mod ispa;
mod policy;
mod report;
mod store;
mod throws;

pub use baseline::{
    mine_rules, mining_deviations, verify_mediation, MediationPolicy, MediationViolation,
    MinedRule, MiningDeviation,
};
pub use checks::{check_of_call, Check, CheckSet, ALL_CHECKS, SECURITY_MANAGER_CLASS};
pub use diff::{
    diff_entry, diff_entry_with, diff_libraries, diff_libraries_with, DiffMode, DiffResult,
    DifferenceKind, PolicyDifference, Side, SideEvidence,
};
pub use events::{EventDef, EventKey};
pub use exchange::{export_policies, import_policies, ExchangeError};
pub use html::render_html;
pub use ispa::{AnalysisOptions, Analyzer, MemoScope, PolicyDomain};
pub use policy::{render_dnf, AnalysisStats, EntryPolicy, EventPolicy, LibraryPolicies, Origins};
pub use report::{
    group_differences, render_analysis, render_entry, render_reports, root_keys, ReportGroup,
    ReportTally, RootCause,
};
pub use store::{
    FrameCost, LocalStore, MemoKey, ShardStats, SharedStore, Summary, SummaryStore, WriteBehind,
    WriteBehindStats, DEFAULT_SHARDS,
};
pub use throws::{diff_throws, LibraryThrows, ThrowSet, ThrowsAnalyzer, ThrowsDifference};
