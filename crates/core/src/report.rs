//! Report grouping and root-cause classification (§6, Table 3).
//!
//! "To reduce the number of reports the developer must read, our analysis
//! automatically combines reports when the error stems from the same root
//! cause, i.e., when the method containing the error is called from
//! multiple API entry points. The number of entry points (manifestations)
//! that can exploit the error is shown in parentheses."

use crate::diff::{DiffResult, DifferenceKind, PolicyDifference};
use crate::policy::{render_dnf, EntryPolicy, LibraryPolicies};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which analysis feature is required to detect a difference — Table 3's
/// "Root cause of policy difference" rows.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RootCause {
    /// Visible to an analysis that only computes policies local to the
    /// entry method.
    Intraprocedural,
    /// Requires following calls (the majority in the paper).
    Interprocedural,
    /// A may-vs-must status difference (case 3b).
    MustMay,
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootCause::Intraprocedural => f.write_str("intraprocedural"),
            RootCause::Interprocedural => f.write_str("interprocedural"),
            RootCause::MustMay => f.write_str("MUST/MAY"),
        }
    }
}

/// A distinct error: one root cause with all the entry points that manifest
/// it.
#[derive(Clone, Debug)]
pub struct ReportGroup {
    /// Stable root-cause key (delta checks + implicated methods).
    pub root_key: String,
    /// Entry-point signatures affected.
    pub manifestations: BTreeSet<String>,
    /// A representative difference (the first encountered).
    pub representative: PolicyDifference,
    /// Detection requirement classification.
    pub cause: RootCause,
}

impl ReportGroup {
    /// Number of manifesting entry points — the parenthesized counts in
    /// Table 3.
    pub fn manifestation_count(&self) -> usize {
        self.manifestations.len()
    }
}

/// Groups raw differences into distinct errors by root cause.
///
/// `intra_keys` are the root keys found by the intraprocedural-only
/// ablation; groups whose key appears there are classified
/// [`RootCause::Intraprocedural`], may/must-status differences
/// [`RootCause::MustMay`], and everything else
/// [`RootCause::Interprocedural`].
pub fn group_differences(result: &DiffResult, intra_keys: &BTreeSet<String>) -> Vec<ReportGroup> {
    let mut groups: BTreeMap<String, ReportGroup> = BTreeMap::new();
    for diff in &result.differences {
        let key = diff.root_key();
        groups
            .entry(key.clone())
            .and_modify(|g| {
                g.manifestations.insert(diff.signature.clone());
            })
            .or_insert_with(|| {
                let cause = if matches!(diff.kind, DifferenceKind::MustMayMismatch { .. }) {
                    RootCause::MustMay
                } else if intra_keys.contains(&key) {
                    RootCause::Intraprocedural
                } else {
                    RootCause::Interprocedural
                };
                ReportGroup {
                    root_key: key,
                    manifestations: [diff.signature.clone()].into(),
                    representative: diff.clone(),
                    cause,
                }
            });
    }
    groups.into_values().collect()
}

/// The root keys of a diff result, for feeding the intraprocedural ablation
/// into [`group_differences`].
pub fn root_keys(result: &DiffResult) -> BTreeSet<String> {
    result
        .differences
        .iter()
        .map(PolicyDifference::root_key)
        .collect()
}

/// Tallies of grouped reports in the shape of one Table 3 column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReportTally {
    /// Distinct intraprocedural errors (manifestations).
    pub intraprocedural: (usize, usize),
    /// Distinct interprocedural errors (manifestations).
    pub interprocedural: (usize, usize),
    /// Distinct MUST/MAY errors (manifestations).
    pub must_may: (usize, usize),
}

impl ReportTally {
    /// Builds the tally from grouped reports.
    pub fn of(groups: &[ReportGroup]) -> Self {
        let mut t = ReportTally::default();
        for g in groups {
            let slot = match g.cause {
                RootCause::Intraprocedural => &mut t.intraprocedural,
                RootCause::Interprocedural => &mut t.interprocedural,
                RootCause::MustMay => &mut t.must_may,
            };
            slot.0 += 1;
            slot.1 += g.manifestation_count();
        }
        t
    }

    /// Total distinct errors.
    pub fn total_distinct(&self) -> usize {
        self.intraprocedural.0 + self.interprocedural.0 + self.must_may.0
    }

    /// Total manifestations.
    pub fn total_manifestations(&self) -> usize {
        self.intraprocedural.1 + self.interprocedural.1 + self.must_may.1
    }
}

/// Renders one entry point's policy block as the `analyze` listing shows
/// it: an `entry <signature>` header plus one two-space-indented policy
/// line per event (multi-line policies stay indented). An entry with no
/// checks renders as the empty string — the listing omits it.
pub fn render_entry(signature: &str, entry: &EntryPolicy) -> String {
    use std::fmt::Write as _;
    if entry.has_no_checks() {
        return String::new();
    }
    let mut out = String::new();
    writeln!(out, "entry {signature}").unwrap();
    for (event, policy) in &entry.events {
        writeln!(out, "  {}", policy.render(event).replace('\n', "\n  ")).unwrap();
    }
    out
}

/// Renders a library's complete per-entry policy listing: every entry with
/// checks (via [`render_entry`], in signature order) followed by the `#`
/// summary footer. This is the single source of the `spo analyze` report
/// bytes — the one-shot CLI and the resident daemon both print exactly
/// this string, which is what makes their outputs byte-comparable.
pub fn render_analysis(lib: &LibraryPolicies) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (sig, entry) in &lib.entries {
        out.push_str(&render_entry(sig, entry));
    }
    writeln!(
        out,
        "# {} entry points, {} with checks, {} may / {} must policies",
        lib.stats.entry_points,
        lib.entries_with_checks(),
        lib.may_policy_count(),
        lib.must_policy_count(),
    )
    .unwrap();
    out
}

/// Renders grouped reports as a human-readable listing, most-manifested
/// first; ties are broken by root key so the output is a pure function of
/// the diff (identical across runs, thread counts, and platforms).
pub fn render_reports(result: &DiffResult, groups: &[ReportGroup]) -> String {
    use std::fmt::Write as _;
    let mut sorted: Vec<&ReportGroup> = groups.iter().collect();
    sorted.sort_by_key(|g| (std::cmp::Reverse(g.manifestation_count()), &g.root_key));
    let mut out = String::new();
    writeln!(
        out,
        "{} vs {}: {} distinct difference(s), {} manifestation(s)",
        result.left_name,
        result.right_name,
        groups.len(),
        groups
            .iter()
            .map(ReportGroup::manifestation_count)
            .sum::<usize>()
    )
    .unwrap();
    for (i, g) in sorted.iter().enumerate() {
        let d = &g.representative;
        writeln!(
            out,
            "\n[{}] {} ({} manifestations, {} cause)",
            i + 1,
            d.kind,
            g.manifestation_count(),
            g.cause
        )
        .unwrap();
        writeln!(out, "    delta checks: {}", d.delta).unwrap();
        writeln!(
            out,
            "    {}: must {} may {}",
            result.left_name,
            d.left.must,
            render_dnf(&d.left.may_paths)
        )
        .unwrap();
        writeln!(
            out,
            "    {}: must {} may {}",
            result.right_name,
            d.right.must,
            render_dnf(&d.right.may_paths)
        )
        .unwrap();
        if !d.origins.is_empty() {
            let origins: Vec<&str> = d.origins.iter().map(String::as_str).collect();
            writeln!(out, "    implicated methods: {}", origins.join(", ")).unwrap();
        }
        let sample: Vec<&str> = g
            .manifestations
            .iter()
            .take(4)
            .map(String::as_str)
            .collect();
        writeln!(out, "    e.g. {}", sample.join(", ")).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{Check, CheckSet};
    use crate::diff::{DifferenceKind, SideEvidence};
    use crate::events::EventKey;

    fn diff(sig: &str, origin: &str, delta: &[Check], kind: DifferenceKind) -> PolicyDifference {
        PolicyDifference {
            signature: sig.into(),
            kind,
            left: SideEvidence::default(),
            right: SideEvidence::default(),
            origins: [origin.to_owned()].into(),
            delta: delta.iter().copied().collect(),
        }
    }

    fn mismatch() -> DifferenceKind {
        DifferenceKind::CheckSetMismatch {
            event: EventKey::ApiReturn,
        }
    }

    #[test]
    fn same_root_cause_grouped() {
        let result = DiffResult {
            left_name: "a".into(),
            right_name: "b".into(),
            matching_apis: 10,
            differences: vec![
                diff("C.m1()", "C.helper", &[Check::Read], mismatch()),
                diff("C.m2()", "C.helper", &[Check::Read], mismatch()),
                diff("C.m3()", "D.other", &[Check::Read], mismatch()),
            ],
        };
        let groups = group_differences(&result, &BTreeSet::new());
        assert_eq!(groups.len(), 2);
        let max = groups
            .iter()
            .map(|g| g.manifestation_count())
            .max()
            .unwrap();
        assert_eq!(max, 2);
    }

    #[test]
    fn classification_uses_intra_keys_and_kind() {
        let d_intra = diff("C.a()", "C.a", &[Check::Read], mismatch());
        let d_inter = diff("C.b()", "C.deep", &[Check::Exit], mismatch());
        let d_mm = diff(
            "C.c()",
            "C.c",
            &[Check::Link],
            DifferenceKind::MustMayMismatch {
                event: EventKey::ApiReturn,
                checks: CheckSet::of(Check::Link),
            },
        );
        let intra_keys: BTreeSet<String> = [d_intra.root_key()].into();
        let result = DiffResult {
            left_name: "a".into(),
            right_name: "b".into(),
            matching_apis: 3,
            differences: vec![d_intra, d_inter, d_mm],
        };
        let groups = group_differences(&result, &intra_keys);
        let tally = ReportTally::of(&groups);
        assert_eq!(tally.intraprocedural, (1, 1));
        assert_eq!(tally.interprocedural, (1, 1));
        assert_eq!(tally.must_may, (1, 1));
        assert_eq!(tally.total_distinct(), 3);
        assert_eq!(tally.total_manifestations(), 3);
    }

    #[test]
    fn render_is_nonempty_and_sorted() {
        let result = DiffResult {
            left_name: "jdk".into(),
            right_name: "harmony".into(),
            matching_apis: 2,
            differences: vec![
                diff("C.m1()", "C.h", &[Check::Read], mismatch()),
                diff("C.m2()", "C.h", &[Check::Read], mismatch()),
                diff("D.x()", "D.y", &[Check::Exit], mismatch()),
            ],
        };
        let groups = group_differences(&result, &BTreeSet::new());
        let text = render_reports(&result, &groups);
        assert!(text.contains("jdk vs harmony"));
        assert!(text.contains("2 distinct"));
        // The 2-manifestation group is listed first.
        let pos_read = text.find("checkRead").unwrap();
        let pos_exit = text.find("checkExit").unwrap();
        assert!(pos_read < pos_exit);
    }
}
