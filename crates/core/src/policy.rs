//! Security policies: the analysis output compared across implementations.

use crate::checks::CheckSet;
use crate::events::EventKey;
use spo_dataflow::{BitSet32, Dnf};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The policy attached to one security-sensitive event of one entry point:
/// which checks **must** precede it on every path and which **may** precede
/// it on some path.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EventPolicy {
    /// Checks performed on *every* path reaching the event.
    pub must: CheckSet,
    /// Checks performed on *some* path, as the flat union of paths.
    pub may: CheckSet,
    /// The disjunctive view: the distinct per-path check sets (Figure 2's
    /// `{{checkMulticast},{checkConnect,checkAccept}}`).
    pub may_paths: Dnf,
}

impl EventPolicy {
    /// Returns `true` if no check may precede the event.
    pub fn is_unchecked(&self) -> bool {
        self.may.is_empty()
    }

    /// Combines another occurrence of the same event into this policy:
    /// intersection for must, union for may (§5).
    pub fn combine(&mut self, other: &EventPolicy) {
        self.must = self.must.intersect(other.must);
        self.may = self.may.union(other.may);
        use spo_dataflow::JoinLattice as _;
        self.may_paths.join(&other.may_paths);
    }

    /// Renders the policy in the paper's Figure 2 notation.
    pub fn render(&self, event: &EventKey) -> String {
        let paths: Vec<String> = self
            .may_paths
            .disjuncts()
            .iter()
            .map(|&d| CheckSet::from_bits(d).to_string())
            .collect();
        format!(
            "MUST check: {}  Event: {event}\nMAY  check: {{{}}}  Event: {event}",
            self.must,
            paths.join(",")
        )
    }
}

/// Where the analysis observed things, for root-cause grouping: method
/// names (`Class.method`) containing the event / performing a check.
pub type Origins = BTreeSet<String>;

/// The full security policy of one API entry point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EntryPolicy {
    /// Signature key used to match the entry point across implementations:
    /// `Class.method(paramtypes)`.
    pub signature: String,
    /// Policies per security-sensitive event.
    pub events: BTreeMap<EventKey, EventPolicy>,
    /// Methods containing each event.
    pub event_origins: BTreeMap<EventKey, Origins>,
    /// Methods where each check (by dense index) is performed.
    pub check_origins: BTreeMap<u8, Origins>,
}

impl EntryPolicy {
    /// Creates an empty policy for the given signature.
    pub fn new(signature: String) -> Self {
        EntryPolicy {
            signature,
            events: BTreeMap::new(),
            event_origins: BTreeMap::new(),
            check_origins: BTreeMap::new(),
        }
    }

    /// Returns `true` if the entry point performs no security checks before
    /// any event — the "no security policy" side of the comparison
    /// algorithm's case 2.
    pub fn has_no_checks(&self) -> bool {
        self.events.values().all(EventPolicy::is_unchecked)
    }

    /// Union of may-checks across all events.
    pub fn all_checks(&self) -> CheckSet {
        self.events
            .values()
            .fold(CheckSet::empty(), |acc, p| acc.union(p.may))
    }

    /// Number of events with a non-empty may policy.
    pub fn nonempty_may_count(&self) -> usize {
        self.events.values().filter(|p| !p.may.is_empty()).count()
    }

    /// Number of events with a non-empty must policy.
    pub fn nonempty_must_count(&self) -> usize {
        self.events.values().filter(|p| !p.must.is_empty()).count()
    }

    /// The sound top element of the policy lattice for a degraded entry:
    /// every check *may* precede the API return (so no check can ever be
    /// reported missing from this side), none *must* (so nothing is
    /// guaranteed). Diffing a top policy against any real policy can only
    /// under-report, never fabricate, differences.
    pub fn top(signature: String) -> Self {
        let all: CheckSet = crate::checks::ALL_CHECKS.iter().copied().collect();
        let mut entry = EntryPolicy::new(signature);
        entry.events.insert(
            EventKey::ApiReturn,
            EventPolicy {
                must: CheckSet::empty(),
                may: all,
                may_paths: Dnf::of(all.bits()),
            },
        );
        entry
    }
}

/// All entry-point policies of one library implementation, plus analysis
/// metadata.
#[derive(Clone, Debug, Default)]
pub struct LibraryPolicies {
    /// Human-readable library name (e.g. `jdk`).
    pub name: String,
    /// Policies keyed by entry-point signature.
    ///
    /// Degraded roots do **not** appear here: the surviving entries are
    /// byte-identical to a clean run restricted to them. Consumers that
    /// need a conservative stand-in for a degraded root should use
    /// [`EntryPolicy::top`].
    pub entries: BTreeMap<String, EntryPolicy>,
    /// Analysis statistics.
    pub stats: AnalysisStats,
    /// Roots whose analysis was quarantined (panic, budget, cancellation),
    /// keyed by signature. Empty on a clean run.
    pub degraded: BTreeMap<String, spo_guard::Diagnostic>,
}

impl LibraryPolicies {
    /// Entry points whose policy performs at least one check (Table 1's
    /// "Entry points w/ security checks").
    pub fn entries_with_checks(&self) -> usize {
        self.entries.values().filter(|e| !e.has_no_checks()).count()
    }

    /// Table 1's "may security policies": one may policy per distinct
    /// per-path check set of each (entry, event) pair — the disjuncts of
    /// Figure 2 count individually, which is why the paper reports more may
    /// than must policies.
    pub fn may_policy_count(&self) -> usize {
        self.entries
            .values()
            .flat_map(|e| e.events.values())
            .map(|p| p.may_paths.disjuncts().len().max(1))
            .sum()
    }

    /// Table 1's "must security policies": one must policy per (entry,
    /// event) pair.
    pub fn must_policy_count(&self) -> usize {
        self.event_policy_count()
    }

    /// Count of (entry, event) pairs whose may set is non-empty.
    pub fn nonempty_may_policy_count(&self) -> usize {
        self.entries
            .values()
            .map(EntryPolicy::nonempty_may_count)
            .sum()
    }

    /// Count of (entry, event) pairs whose must set is non-empty.
    pub fn nonempty_must_policy_count(&self) -> usize {
        self.entries
            .values()
            .map(EntryPolicy::nonempty_must_count)
            .sum()
    }

    /// Total number of (entry, event) policy pairs, empty or not.
    pub fn event_policy_count(&self) -> usize {
        self.entries.values().map(|e| e.events.len()).sum()
    }
}

/// Counters and timings accumulated during a library analysis.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AnalysisStats {
    /// Number of entry points analyzed.
    pub entry_points: usize,
    /// Method frames analyzed (excluding memo hits).
    pub frames_analyzed: usize,
    /// Memoized summary reuses.
    pub memo_hits: usize,
    /// Memo misses (frames that had to be computed with memoization on).
    pub memo_misses: usize,
    /// Call sites skipped because resolution was not unique.
    pub unresolved_calls: usize,
    /// Wall-clock analysis time for the MAY pass, in nanoseconds.
    pub may_nanos: u128,
    /// Wall-clock analysis time for the MUST pass, in nanoseconds.
    pub must_nanos: u128,
}

impl AnalysisStats {
    /// Records these counters into an observability recorder as `work`
    /// metrics. They are scheduling-dependent — memo hits and misses depend
    /// on which worker computed a summary first — so they never land in the
    /// deterministic `counters` section. Durations are recorded at their
    /// measurement sites, not here.
    pub fn record_into(&self, rec: &spo_obs::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.work_counter("ispa.entry_points")
            .add(self.entry_points as u64);
        rec.work_counter("ispa.frames_analyzed")
            .add(self.frames_analyzed as u64);
        rec.work_counter("ispa.memo.hits")
            .add(self.memo_hits as u64);
        rec.work_counter("ispa.memo.misses")
            .add(self.memo_misses as u64);
        rec.work_counter("ispa.unresolved_sites")
            .add(self.unresolved_calls as u64);
    }

    /// Accumulates another run's counters (the parallel engine sums
    /// per-worker statistics this way).
    pub fn absorb(&mut self, other: &AnalysisStats) {
        self.entry_points += other.entry_points;
        self.frames_analyzed += other.frames_analyzed;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.unresolved_calls += other.unresolved_calls;
        self.may_nanos += other.may_nanos;
        self.must_nanos += other.must_nanos;
    }
}

impl fmt::Display for AnalysisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entry points, {} frames, {} memo hits, may {:.1}ms, must {:.1}ms",
            self.entry_points,
            self.frames_analyzed,
            self.memo_hits,
            self.may_nanos as f64 / 1e6,
            self.must_nanos as f64 / 1e6,
        )
    }
}

/// Helper: a [`Dnf`] rendered as check names, for tests and displays.
pub fn render_dnf(dnf: &Dnf) -> String {
    let paths: Vec<String> = dnf
        .disjuncts()
        .iter()
        .map(|&d: &BitSet32| CheckSet::from_bits(d).to_string())
        .collect();
    format!("{{{}}}", paths.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::Check;

    fn policy(must: &[Check], may: &[Check]) -> EventPolicy {
        let must: CheckSet = must.iter().copied().collect();
        let may: CheckSet = may.iter().copied().collect();
        EventPolicy {
            must,
            may,
            may_paths: Dnf::of(may.bits()),
        }
    }

    #[test]
    fn combine_intersects_must_unions_may() {
        let mut a = policy(
            &[Check::Connect, Check::Accept],
            &[Check::Connect, Check::Accept],
        );
        let b = policy(&[Check::Connect], &[Check::Connect, Check::Multicast]);
        a.combine(&b);
        assert_eq!(a.must, CheckSet::of(Check::Connect));
        assert_eq!(
            a.may,
            [Check::Connect, Check::Accept, Check::Multicast]
                .into_iter()
                .collect()
        );
        assert_eq!(a.may_paths.disjuncts().len(), 2);
    }

    #[test]
    fn unchecked_entry_detection() {
        let mut e = EntryPolicy::new("C.m()".into());
        e.events.insert(EventKey::ApiReturn, EventPolicy::default());
        assert!(e.has_no_checks());
        e.events
            .insert(EventKey::Native("x".into()), policy(&[], &[Check::Exit]));
        assert!(!e.has_no_checks());
        assert_eq!(e.all_checks(), CheckSet::of(Check::Exit));
    }

    #[test]
    fn library_counts() {
        let mut lib = LibraryPolicies {
            name: "t".into(),
            ..Default::default()
        };
        let mut e1 = EntryPolicy::new("A.m()".into());
        e1.events
            .insert(EventKey::ApiReturn, policy(&[Check::Read], &[Check::Read]));
        e1.events
            .insert(EventKey::Native("n".into()), policy(&[], &[Check::Read]));
        let mut e2 = EntryPolicy::new("B.m()".into());
        e2.events
            .insert(EventKey::ApiReturn, EventPolicy::default());
        lib.entries.insert(e1.signature.clone(), e1);
        lib.entries.insert(e2.signature.clone(), e2);
        assert_eq!(lib.entries_with_checks(), 1);
        assert_eq!(lib.nonempty_may_policy_count(), 2);
        assert_eq!(lib.nonempty_must_policy_count(), 1);
        assert_eq!(lib.event_policy_count(), 3);
        // One disjunct per event here, so may count == event count; must
        // counts every event.
        assert_eq!(lib.may_policy_count(), 3);
        assert_eq!(lib.must_policy_count(), 3);
    }

    #[test]
    fn render_matches_figure_2_shape() {
        let mut p = EventPolicy::default();
        p.may_paths = [
            CheckSet::of(Check::Multicast).bits(),
            [Check::Connect, Check::Accept]
                .into_iter()
                .collect::<CheckSet>()
                .bits(),
        ]
        .into_iter()
        .collect();
        p.may = CheckSet::from_bits(p.may_paths.flat_union());
        let s = p.render(&EventKey::ApiReturn);
        assert!(s.contains("MUST check: {}"));
        assert!(s.contains("{checkAccept, checkConnect}"));
        assert!(s.contains("{checkMulticast}"));
    }
}
