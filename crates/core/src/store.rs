//! Pluggable method-summary stores.
//!
//! The analysis memoizes context-sensitive method summaries keyed by
//! `(method, in-policy, const-params, privileged)`. Where those summaries
//! live is a policy decision: the serial analyzer keeps them in a
//! single-threaded [`LocalStore`]; the parallel engine shares a sharded,
//! lock-striped [`SharedStore`] between workers so a summary computed by
//! one worker is reused by all others.
//!
//! Sharing is safe because only *clean* summaries — those whose subtree was
//! not cut by recursion — are ever inserted, and a clean summary is a pure
//! function of its [`MemoKey`]: a hit returns exactly what recomputation
//! would produce, so analysis results are independent of which store (and
//! how many threads) produced them.

use crate::events::EventKey;
use crate::ispa::PolicyDomain;
use spo_dataflow::AbsVal;
use spo_jir::MethodId;
use spo_obs::{trace, HistSnapshot, Histogram};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The memoization key of a context-sensitive method summary: the paper's
/// `(method, in-policy, const-params, privileged)` context.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemoKey<P> {
    pub(crate) method: MethodId,
    pub(crate) policy: P,
    pub(crate) consts: Vec<AbsVal>,
    pub(crate) privileged: bool,
}

/// One recorded security-sensitive event inside a summary.
#[derive(Clone, Debug)]
pub(crate) struct EventRec<P> {
    pub(crate) key: EventKey,
    pub(crate) policy: P,
    pub(crate) origin: MethodId,
}

/// A context-sensitive method summary: the exit policy plus everything the
/// subtree recorded.
#[derive(Debug)]
pub struct Summary<P> {
    pub(crate) exit: P,
    pub(crate) events: Vec<EventRec<P>>,
    pub(crate) checks: Vec<(crate::checks::Check, MethodId)>,
}

/// Storage backend for memoized method summaries.
///
/// Implementations use interior mutability so a store can be shared by
/// reference — between the two passes of a serial run, or between worker
/// threads of a parallel run.
pub trait SummaryStore<P: PolicyDomain> {
    /// Looks up the summary for `key`, if one was recorded.
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>>;

    /// Records the summary computed for `key`. Returns `true` if the key
    /// was newly inserted, `false` if another computation (a concurrent
    /// worker, in the shared store) got there first — the signal the
    /// observability layer uses to count each memoized frame exactly once
    /// regardless of worker count.
    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool;

    /// Drops all recorded summaries ([`MemoScope::PerEntry`] runs clear
    /// between entry points).
    ///
    /// [`MemoScope::PerEntry`]: crate::MemoScope::PerEntry
    fn clear(&self);

    /// Number of summaries currently stored.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no summaries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The serial store: one thread, no locking.
#[derive(Debug)]
pub struct LocalStore<P> {
    map: std::cell::RefCell<HashMap<MemoKey<P>, Arc<Summary<P>>>>,
}

impl<P> Default for LocalStore<P> {
    fn default() -> Self {
        LocalStore {
            map: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl<P: PolicyDomain> SummaryStore<P> for LocalStore<P> {
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>> {
        self.map.borrow().get(key).map(Arc::clone)
    }

    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool {
        self.map.borrow_mut().insert(key, summary).is_none()
    }

    fn clear(&self) {
        self.map.borrow_mut().clear();
    }

    fn len(&self) -> usize {
        self.map.borrow().len()
    }
}

struct Shard<P> {
    map: RwLock<HashMap<MemoKey<P>, Arc<Summary<P>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
    /// Nanoseconds spent blocked on this shard's lock, one observation
    /// per contended acquisition. Always enabled: the histogram is only
    /// touched on the already-slow `WouldBlock` path.
    wait: Histogram,
}

impl<P> Default for Shard<P> {
    fn default() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait: Histogram::standalone(),
        }
    }
}

/// Blocks on a contended shard lock acquisition, recording the wait into
/// the shard's histogram and — when the calling thread has a trace lane
/// bound — as a `lock_wait` timeline event.
fn blocking_acquire<G>(wait: &Histogram, acquire: impl FnOnce() -> G) -> G {
    let start = Instant::now();
    let guard = acquire();
    wait.record(start.elapsed().as_nanos() as u64);
    trace::complete_since(start, "lock_wait", "store");
    guard
}

/// Counters of one [`SharedStore`] shard, snapshot by
/// [`SharedStore::shard_stats`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Lookups that found a summary.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lock acquisitions that had to wait for another thread.
    pub contended: u64,
    /// Summaries currently stored in the shard.
    pub entries: usize,
    /// Histogram of nanoseconds spent blocked on the shard lock — one
    /// observation per contended acquisition.
    pub lock_wait: HistSnapshot,
}

/// The concurrent store: lock-striped shards shared between worker threads.
///
/// Keys are distributed over shards by hash so concurrent workers mostly
/// touch different locks; each shard counts its hits, misses, and contended
/// acquisitions for the engine's per-run statistics.
pub struct SharedStore<P> {
    shards: Vec<Shard<P>>,
}

impl<P: PolicyDomain> SharedStore<P> {
    /// Creates a store with `shards` lock stripes (rounded up to 1).
    pub fn new(shards: usize) -> Self {
        SharedStore {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    fn shard(&self, key: &MemoKey<P>) -> &Shard<P> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Snapshots the per-shard counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                entries: s.map.read().unwrap_or_else(|e| e.into_inner()).len(),
                lock_wait: s.wait.snapshot(),
            })
            .collect()
    }
}

impl<P: PolicyDomain> Default for SharedStore<P> {
    /// 16 shards: enough stripes that 8–16 workers rarely collide.
    fn default() -> Self {
        SharedStore::new(16)
    }
}

impl<P: PolicyDomain> SummaryStore<P> for SharedStore<P> {
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>> {
        let shard = self.shard(key);
        let map = match shard.map.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                blocking_acquire(&shard.wait, || {
                    shard.map.read().unwrap_or_else(|e| e.into_inner())
                })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let hit = map.get(key).map(Arc::clone);
        match hit {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool {
        let shard = self.shard(&key);
        let mut map = match shard.map.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                blocking_acquire(&shard.wait, || {
                    shard.map.write().unwrap_or_else(|e| e.into_inner())
                })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        // First writer wins: a racing worker's identical summary is
        // discarded so `true` is returned for exactly one insert per key.
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(summary);
                true
            }
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_dataflow::Dnf;

    fn key(i: u32) -> MemoKey<Dnf> {
        MemoKey {
            method: MethodId {
                class: spo_jir::ClassId(0),
                index: i,
            },
            policy: Dnf::empty_path(),
            consts: Vec::new(),
            privileged: false,
        }
    }

    fn summary() -> Arc<Summary<Dnf>> {
        Arc::new(Summary {
            exit: Dnf::empty_path(),
            events: Vec::new(),
            checks: Vec::new(),
        })
    }

    #[test]
    fn local_store_roundtrip() {
        let store = LocalStore::default();
        assert!(store.get(&key(1)).is_none());
        store.insert(key(1), summary());
        assert!(store.get(&key(1)).is_some());
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn shared_store_roundtrip_and_stats() {
        let store: SharedStore<Dnf> = SharedStore::new(4);
        for i in 0..64 {
            store.insert(key(i), summary());
        }
        assert_eq!(store.len(), 64);
        for i in 0..64 {
            assert!(store.get(&key(i)).is_some(), "key {i}");
        }
        assert!(store.get(&key(1000)).is_none());
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 64);
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), 64);
        // Keys spread over more than one stripe.
        assert!(stats.iter().filter(|s| s.entries > 0).count() > 1);
        store.clear();
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn insert_reports_newness() {
        let local = LocalStore::default();
        assert!(local.insert(key(1), summary()));
        assert!(!local.insert(key(1), summary()));
        assert!(local.insert(key(2), summary()));

        let shared: SharedStore<Dnf> = SharedStore::default();
        assert!(shared.insert(key(1), summary()));
        assert!(!shared.insert(key(1), summary()));
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn shared_store_counts_contention_under_concurrent_access() {
        // A single shard forces every key onto one lock; two threads
        // hammering it must observe at least one contended acquisition.
        // Scheduling is non-deterministic, so retry a few rounds rather
        // than assert on a single racy window.
        for round in 0..20 {
            let store: SharedStore<Dnf> = SharedStore::new(1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..2000 {
                        store.insert(key(i), summary());
                    }
                });
                s.spawn(|| {
                    for i in 0..2000 {
                        let _ = store.get(&key(i));
                    }
                });
            });
            let stats = store.shard_stats();
            let contended: u64 = stats.iter().map(|s| s.contended).sum();
            if contended > 0 {
                // Every contended acquisition records one wait observation.
                let waits: u64 = stats.iter().map(|s| s.lock_wait.count).sum();
                assert_eq!(waits, contended);
                return;
            }
            eprintln!("round {round}: no contention observed, retrying");
        }
        panic!("no contention observed in 20 rounds of concurrent access");
    }

    #[test]
    fn shared_store_is_usable_across_threads() {
        let store: SharedStore<Dnf> = SharedStore::default();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..32 {
                        store.insert(key(t * 32 + i), summary());
                        assert!(store.get(&key(t * 32 + i)).is_some());
                    }
                });
            }
        });
        assert_eq!(store.len(), 128);
    }
}
