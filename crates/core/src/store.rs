//! Pluggable method-summary stores.
//!
//! The analysis memoizes context-sensitive method summaries keyed by
//! `(method, in-policy, const-params, privileged)`. Where those summaries
//! live is a policy decision: the serial analyzer keeps them in a
//! single-threaded [`LocalStore`]; the parallel engine shares a sharded,
//! lock-striped [`SharedStore`] between workers so a summary computed by
//! one worker is reused by all others.
//!
//! Sharing is safe because only *clean* summaries — those whose subtree was
//! not cut by recursion — are ever inserted, and a clean summary is a pure
//! function of its [`MemoKey`]: a hit returns exactly what recomputation
//! would produce, so analysis results are independent of which store (and
//! how many threads) produced them.

use crate::events::EventKey;
use crate::ispa::PolicyDomain;
use spo_dataflow::AbsVal;
use spo_jir::MethodId;
use spo_obs::{trace, Counter, HistSnapshot, Histogram, Recorder};
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Default number of lock stripes in a [`SharedStore`] — the single source
/// of the engine's and [`SharedStore::default`]'s shard counts, so a store
/// built by one layer always matches what the other expects.
pub const DEFAULT_SHARDS: usize = 16;

/// The memoization key of a context-sensitive method summary: the paper's
/// `(method, in-policy, const-params, privileged)` context.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemoKey<P> {
    pub(crate) method: MethodId,
    pub(crate) policy: P,
    pub(crate) consts: Vec<AbsVal>,
    pub(crate) privileged: bool,
}

/// One recorded security-sensitive event inside a summary.
#[derive(Clone, Debug)]
pub(crate) struct EventRec<P> {
    pub(crate) key: EventKey,
    pub(crate) policy: P,
    pub(crate) origin: MethodId,
}

/// A context-sensitive method summary: the exit policy plus everything the
/// subtree recorded.
#[derive(Debug)]
pub struct Summary<P> {
    pub(crate) exit: P,
    pub(crate) events: Vec<EventRec<P>>,
    pub(crate) checks: Vec<(crate::checks::Check, MethodId)>,
}

/// The deterministic per-frame metrics a clean summary carries into a
/// deferred (write-behind) publication, so the commit protocol's
/// counters can be flushed when the insert outcome becomes known.
///
/// Every field is a pure function of the summary's [`MemoKey`] — the
/// fixpoint over a method body in a fixed context performs the same
/// transfers and resolves the same calls no matter which worker runs it —
/// which is what lets a *different* worker's copy claim the committed
/// flush without perturbing the deterministic totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameCost {
    /// Worklist transfer-function applications of the frame's fixpoint.
    pub transfers: u64,
    /// Statements visited at least once by the fixpoint (so
    /// `transfers - visited` is the repass count).
    pub visited: u64,
    /// CFG edges of the frame's body (0 when the recorder was disabled).
    pub cfg_edges: u64,
    /// Call sites resolved to a unique target.
    pub resolved: u64,
    /// Call sites left ambiguous or unknown.
    pub unresolved: u64,
}

/// Storage backend for memoized method summaries.
///
/// Implementations use interior mutability so a store can be shared by
/// reference — between the two passes of a serial run, or between worker
/// threads of a parallel run.
pub trait SummaryStore<P: PolicyDomain> {
    /// Looks up the summary for `key`, if one was recorded.
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>>;

    /// Records the summary computed for `key`. Returns `true` if the key
    /// was newly inserted, `false` if another computation (a concurrent
    /// worker, in the shared store) got there first — the signal the
    /// observability layer uses to count each memoized frame exactly once
    /// regardless of worker count.
    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool;

    /// Like [`insert`], but carrying the frame's deterministic metrics so
    /// a buffering store can defer the insert — and with it the
    /// committed-vs-speculative decision — to a later batched flush.
    ///
    /// Returns `Some(newness)` when the insert happened immediately (the
    /// caller flushes its own frame metrics, as with [`insert`]), or
    /// `None` when it was deferred: the store now owns `cost` and must
    /// flush it under the same commit protocol once the batched insert
    /// resolves. The default implementation never defers.
    ///
    /// [`insert`]: SummaryStore::insert
    fn insert_costed(
        &self,
        key: MemoKey<P>,
        summary: Arc<Summary<P>>,
        cost: FrameCost,
    ) -> Option<bool> {
        let _ = cost;
        Some(self.insert(key, summary))
    }

    /// Drops all recorded summaries ([`MemoScope::PerEntry`] runs clear
    /// between entry points).
    ///
    /// [`MemoScope::PerEntry`]: crate::MemoScope::PerEntry
    fn clear(&self);

    /// Number of summaries currently stored.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no summaries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The serial store: one thread, no locking.
#[derive(Debug)]
pub struct LocalStore<P> {
    map: std::cell::RefCell<HashMap<MemoKey<P>, Arc<Summary<P>>>>,
}

impl<P> Default for LocalStore<P> {
    fn default() -> Self {
        LocalStore {
            map: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl<P: PolicyDomain> SummaryStore<P> for LocalStore<P> {
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>> {
        self.map.borrow().get(key).map(Arc::clone)
    }

    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool {
        self.map.borrow_mut().insert(key, summary).is_none()
    }

    fn clear(&self) {
        self.map.borrow_mut().clear();
    }

    fn len(&self) -> usize {
        self.map.borrow().len()
    }
}

struct Shard<P> {
    map: RwLock<HashMap<MemoKey<P>, Arc<Summary<P>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
    /// Nanoseconds spent blocked on this shard's lock, one observation
    /// per contended acquisition. Always enabled: the histogram is only
    /// touched on the already-slow `WouldBlock` path.
    wait: Histogram,
}

impl<P> Default for Shard<P> {
    fn default() -> Self {
        Shard {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait: Histogram::standalone(),
        }
    }
}

/// Blocks on a contended shard lock acquisition, recording the wait into
/// the shard's histogram and — when the calling thread has a trace lane
/// bound — as a `lock_wait` timeline event.
fn blocking_acquire<G>(wait: &Histogram, acquire: impl FnOnce() -> G) -> G {
    let start = Instant::now();
    let guard = acquire();
    wait.record(start.elapsed().as_nanos() as u64);
    trace::complete_since(start, "lock_wait", "store");
    guard
}

/// Counters of one [`SharedStore`] shard, snapshot by
/// [`SharedStore::shard_stats`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Lookups that found a summary.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lock acquisitions that had to wait for another thread.
    pub contended: u64,
    /// Summaries currently stored in the shard.
    pub entries: usize,
    /// Histogram of nanoseconds spent blocked on the shard lock — one
    /// observation per contended acquisition.
    pub lock_wait: HistSnapshot,
}

/// One publishable store entry: a memo key and its summary.
pub type StoreEntry<P> = (MemoKey<P>, Arc<Summary<P>>);

/// The concurrent store: lock-striped shards shared between worker threads.
///
/// Keys are distributed over shards by hash so concurrent workers mostly
/// touch different locks; each shard counts its hits, misses, and contended
/// acquisitions for the engine's per-run statistics.
pub struct SharedStore<P> {
    shards: Vec<Shard<P>>,
}

impl<P: PolicyDomain> SharedStore<P> {
    /// Creates a store with `shards` lock stripes (rounded up to 1).
    pub fn new(shards: usize) -> Self {
        SharedStore {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    fn shard_index(&self, key: &MemoKey<P>) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn shard(&self, key: &MemoKey<P>) -> &Shard<P> {
        &self.shards[self.shard_index(key)]
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts a batch of summaries with **one lock acquisition per
    /// touched shard**, returning each entry's newness in input order
    /// (same contract as [`SummaryStore::insert`], first writer wins).
    ///
    /// This is the write-behind publication path: a worker that buffered
    /// N summaries pays `distinct shards` write acquisitions instead of
    /// N, and exactly one `true` is still returned globally per unique
    /// key no matter how many workers flush copies of it.
    pub fn insert_batch(&self, entries: Vec<StoreEntry<P>>) -> Vec<bool> {
        let mut newness = vec![false; entries.len()];
        // Group entry positions by shard so each stripe is locked once.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut entries: Vec<Option<StoreEntry<P>>> = entries.into_iter().map(Some).collect();
        for (pos, entry) in entries.iter().enumerate() {
            if let Some((key, _)) = entry {
                by_shard[self.shard_index(key)].push(pos);
            }
        }
        for (si, positions) in by_shard.into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            let mut map = match shard.map.try_write() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => {
                    shard.contended.fetch_add(1, Ordering::Relaxed);
                    blocking_acquire(&shard.wait, || {
                        shard.map.write().unwrap_or_else(|e| e.into_inner())
                    })
                }
                Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            };
            for pos in positions {
                let Some((key, summary)) = entries[pos].take() else {
                    continue;
                };
                if let std::collections::hash_map::Entry::Vacant(v) = map.entry(key) {
                    v.insert(summary);
                    newness[pos] = true;
                }
            }
        }
        newness
    }

    /// Snapshots the per-shard counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                entries: s.map.read().unwrap_or_else(|e| e.into_inner()).len(),
                lock_wait: s.wait.snapshot(),
            })
            .collect()
    }
}

impl<P: PolicyDomain> Default for SharedStore<P> {
    /// [`DEFAULT_SHARDS`] stripes: enough that 8–16 workers rarely
    /// collide.
    fn default() -> Self {
        SharedStore::new(DEFAULT_SHARDS)
    }
}

impl<P: PolicyDomain> SummaryStore<P> for SharedStore<P> {
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>> {
        let shard = self.shard(key);
        let map = match shard.map.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                blocking_acquire(&shard.wait, || {
                    shard.map.read().unwrap_or_else(|e| e.into_inner())
                })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let hit = map.get(key).map(Arc::clone);
        match hit {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool {
        let shard = self.shard(&key);
        let mut map = match shard.map.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                blocking_acquire(&shard.wait, || {
                    shard.map.write().unwrap_or_else(|e| e.into_inner())
                })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        // First writer wins: a racing worker's identical summary is
        // discarded so `true` is returned for exactly one insert per key.
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(summary);
                true
            }
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

/// Pre-resolved metric handles for deferred frame publication. The
/// deterministic names mirror the ISPA pass's frame-commit protocol
/// exactly (`ispa.frames`, `dataflow.transfers`, …): a frame whose clean
/// summary is deferred here flushes to the *same* counters it would have
/// flushed to had it been inserted directly, just later — so the
/// deterministic sections stay byte-identical to direct publication.
struct WriteBehindObs {
    frames: Counter,
    transfers: Counter,
    cfg_edges: Counter,
    calls_resolved: Counter,
    calls_unresolved: Counter,
    hist_transfers: Histogram,
    hist_repasses: Histogram,
    spec_frames: Counter,
    spec_transfers: Counter,
    flushes: Counter,
    deferred_hits: Counter,
}

impl WriteBehindObs {
    fn new(rec: &Recorder) -> Self {
        WriteBehindObs {
            frames: rec.counter("ispa.frames"),
            transfers: rec.counter("dataflow.transfers"),
            cfg_edges: rec.counter("ispa.cfg.edges"),
            calls_resolved: rec.counter("ispa.calls.resolved"),
            calls_unresolved: rec.counter("ispa.calls.unresolved"),
            hist_transfers: rec.histogram("fixpoint.transfers"),
            hist_repasses: rec.histogram("fixpoint.repasses"),
            spec_frames: rec.work_counter("ispa.speculative.frames"),
            spec_transfers: rec.work_counter("ispa.speculative.transfers"),
            flushes: rec.work_counter("writeback.flushes"),
            deferred_hits: rec.work_counter("writeback.deferred_hits"),
        }
    }

    fn flush_committed(&self, cost: &FrameCost) {
        self.frames.incr();
        self.transfers.add(cost.transfers);
        self.cfg_edges.add(cost.cfg_edges);
        self.calls_resolved.add(cost.resolved);
        self.calls_unresolved.add(cost.unresolved);
        self.hist_transfers.record(cost.transfers);
        self.hist_repasses
            .record(cost.transfers.saturating_sub(cost.visited));
    }

    fn flush_speculative(&self, cost: &FrameCost) {
        self.spec_frames.incr();
        self.spec_transfers.add(cost.transfers);
    }
}

/// Plain-cell tallies of one [`WriteBehind`]'s traffic, for the engine's
/// per-run statistics (recorded even when the recorder is disabled, as in
/// timed bench runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteBehindStats {
    /// Shard-grouped batch publications performed.
    pub flushes: u64,
    /// Lookups served from the worker-local buffer (pending writes plus
    /// the read-through cache) without touching a shard lock.
    pub deferred_hits: u64,
    /// Buffered summaries that won their batched insert (entered the
    /// shared store).
    pub published: u64,
}

/// A per-worker write-behind façade over a [`SharedStore`].
///
/// Reads go worker-local-first: a summary this worker computed (still
/// buffered or already flushed) or previously fetched is returned without
/// touching a shard lock — sound because clean summaries are pure
/// functions of their key, so a stale-looking local copy can never differ
/// from the shared one. Writes accumulate in a local buffer and publish
/// through [`SharedStore::insert_batch`] in shard-grouped flushes (one
/// lock acquisition per touched shard per flush); the frame-commit
/// decision for each buffered summary — committed vs speculative — is
/// deferred with it and settled by the batched insert's newness, so
/// exactly one committed flush still happens globally per unique memo key
/// and the deterministic stats sections remain byte-identical to direct
/// publication at any worker count.
///
/// Not `Sync`: one instance per worker thread, dropped (after a final
/// [`flush`]) when the worker retires.
///
/// [`flush`]: WriteBehind::flush
pub struct WriteBehind<'s, P: PolicyDomain> {
    shared: &'s SharedStore<P>,
    local: RefCell<HashMap<MemoKey<P>, Arc<Summary<P>>>>,
    pending: RefCell<Vec<(StoreEntry<P>, FrameCost)>>,
    /// Pending entries beyond this overflow into an inline flush, bounding
    /// the buffer between the engine's batch-boundary flushes.
    capacity: usize,
    obs: WriteBehindObs,
    flushes: Cell<u64>,
    deferred_hits: Cell<u64>,
    published: Cell<u64>,
}

impl<'s, P: PolicyDomain> WriteBehind<'s, P> {
    /// Buffered summaries beyond this many trigger an inline flush.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Wraps `shared` for one worker, flushing deferred frame metrics
    /// into `rec` (the worker's private child recorder, in the engine).
    pub fn new(shared: &'s SharedStore<P>, rec: &Recorder) -> Self {
        WriteBehind {
            shared,
            local: RefCell::new(HashMap::new()),
            pending: RefCell::new(Vec::new()),
            capacity: Self::DEFAULT_CAPACITY,
            obs: WriteBehindObs::new(rec),
            flushes: Cell::new(0),
            deferred_hits: Cell::new(0),
            published: Cell::new(0),
        }
    }

    /// Publishes every pending summary in one shard-grouped batch and
    /// settles each one's deferred commit decision. No-op when nothing is
    /// pending.
    pub fn flush(&self) {
        let pending = std::mem::take(&mut *self.pending.borrow_mut());
        if pending.is_empty() {
            return;
        }
        let count = pending.len();
        let entries = pending
            .iter()
            .map(|((key, summary), _)| (key.clone(), Arc::clone(summary)))
            .collect();
        let newness = self.shared.insert_batch(entries);
        let mut published = 0u64;
        for ((_, cost), new) in pending.iter().zip(newness) {
            if new {
                published += 1;
                self.obs.flush_committed(cost);
            } else {
                self.obs.flush_speculative(cost);
            }
        }
        self.flushes.set(self.flushes.get() + 1);
        self.published.set(self.published.get() + published);
        self.obs.flushes.incr();
        trace::counter_now("writeback.flush", "store", count as u64);
    }

    /// This worker's write-behind traffic so far.
    pub fn stats(&self) -> WriteBehindStats {
        WriteBehindStats {
            flushes: self.flushes.get(),
            deferred_hits: self.deferred_hits.get(),
            published: self.published.get(),
        }
    }
}

impl<'s, P: PolicyDomain> SummaryStore<P> for WriteBehind<'s, P> {
    fn get(&self, key: &MemoKey<P>) -> Option<Arc<Summary<P>>> {
        if let Some(hit) = self.local.borrow().get(key) {
            self.deferred_hits.set(self.deferred_hits.get() + 1);
            self.obs.deferred_hits.incr();
            return Some(Arc::clone(hit));
        }
        let hit = self.shared.get(key)?;
        self.local
            .borrow_mut()
            .insert(key.clone(), Arc::clone(&hit));
        Some(hit)
    }

    fn insert(&self, key: MemoKey<P>, summary: Arc<Summary<P>>) -> bool {
        // Uncosted inserts pass straight through: the caller settles the
        // commit protocol on the return value immediately, so deferring
        // here would double-count the frame at flush time. Reads still
        // benefit from the local cache.
        self.local
            .borrow_mut()
            .insert(key.clone(), Arc::clone(&summary));
        self.shared.insert(key, summary)
    }

    fn insert_costed(
        &self,
        key: MemoKey<P>,
        summary: Arc<Summary<P>>,
        cost: FrameCost,
    ) -> Option<bool> {
        match self.local.borrow_mut().entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => return Some(false),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Arc::clone(&summary));
            }
        }
        self.pending.borrow_mut().push(((key, summary), cost));
        if self.pending.borrow().len() >= self.capacity {
            self.flush();
        }
        None
    }

    fn clear(&self) {
        self.local.borrow_mut().clear();
        self.pending.borrow_mut().clear();
        self.shared.clear();
    }

    fn len(&self) -> usize {
        // Unflushed summaries are part of this store's view.
        let shared = self.shared.len();
        let unflushed = self.pending.borrow().len();
        shared + unflushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_dataflow::Dnf;

    fn key(i: u32) -> MemoKey<Dnf> {
        MemoKey {
            method: MethodId {
                class: spo_jir::ClassId(0),
                index: i,
            },
            policy: Dnf::empty_path(),
            consts: Vec::new(),
            privileged: false,
        }
    }

    fn summary() -> Arc<Summary<Dnf>> {
        Arc::new(Summary {
            exit: Dnf::empty_path(),
            events: Vec::new(),
            checks: Vec::new(),
        })
    }

    #[test]
    fn local_store_roundtrip() {
        let store = LocalStore::default();
        assert!(store.get(&key(1)).is_none());
        store.insert(key(1), summary());
        assert!(store.get(&key(1)).is_some());
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn shared_store_roundtrip_and_stats() {
        let store: SharedStore<Dnf> = SharedStore::new(4);
        for i in 0..64 {
            store.insert(key(i), summary());
        }
        assert_eq!(store.len(), 64);
        for i in 0..64 {
            assert!(store.get(&key(i)).is_some(), "key {i}");
        }
        assert!(store.get(&key(1000)).is_none());
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 64);
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), 64);
        // Keys spread over more than one stripe.
        assert!(stats.iter().filter(|s| s.entries > 0).count() > 1);
        store.clear();
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn insert_reports_newness() {
        let local = LocalStore::default();
        assert!(local.insert(key(1), summary()));
        assert!(!local.insert(key(1), summary()));
        assert!(local.insert(key(2), summary()));

        let shared: SharedStore<Dnf> = SharedStore::default();
        assert!(shared.insert(key(1), summary()));
        assert!(!shared.insert(key(1), summary()));
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn shared_store_counts_contention_under_concurrent_access() {
        // A single shard forces every key onto one lock; two threads
        // hammering it must observe at least one contended acquisition.
        // Scheduling is non-deterministic, so retry a few rounds rather
        // than assert on a single racy window.
        for round in 0..20 {
            let store: SharedStore<Dnf> = SharedStore::new(1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..2000 {
                        store.insert(key(i), summary());
                    }
                });
                s.spawn(|| {
                    for i in 0..2000 {
                        let _ = store.get(&key(i));
                    }
                });
            });
            let stats = store.shard_stats();
            let contended: u64 = stats.iter().map(|s| s.contended).sum();
            if contended > 0 {
                // Every contended acquisition records one wait observation.
                let waits: u64 = stats.iter().map(|s| s.lock_wait.count).sum();
                assert_eq!(waits, contended);
                return;
            }
            eprintln!("round {round}: no contention observed, retrying");
        }
        panic!("no contention observed in 20 rounds of concurrent access");
    }

    #[test]
    fn insert_batch_locks_once_per_shard_and_reports_newness_in_order() {
        let store: SharedStore<Dnf> = SharedStore::new(4);
        store.insert(key(2), summary());
        let newness = store.insert_batch(vec![
            (key(1), summary()),
            (key(2), summary()), // loses to the direct insert above
            (key(3), summary()),
            (key(3), summary()), // duplicate within the batch: first wins
        ]);
        assert_eq!(newness, vec![true, false, true, false]);
        assert_eq!(store.len(), 3);
        // A batch into a single-shard store acquires its one lock once.
        let one: SharedStore<Dnf> = SharedStore::new(1);
        let newness = one.insert_batch((0..100).map(|i| (key(i), summary())).collect());
        assert!(newness.iter().all(|&n| n));
        assert_eq!(one.len(), 100);
    }

    #[test]
    fn write_behind_defers_publication_until_flush() {
        let rec = spo_obs::Recorder::new();
        let shared: SharedStore<Dnf> = SharedStore::new(4);
        let wb = WriteBehind::new(&shared, &rec);
        let cost = FrameCost {
            transfers: 7,
            visited: 5,
            cfg_edges: 3,
            resolved: 2,
            unresolved: 1,
        };
        assert_eq!(wb.insert_costed(key(1), summary(), cost), None);
        assert_eq!(wb.insert_costed(key(2), summary(), cost), None);
        // Deferred writes are visible to this worker, invisible to others.
        assert!(wb.get(&key(1)).is_some());
        use crate::SummaryStore as _;
        assert_eq!(shared.len(), 0);
        assert_eq!(wb.stats().deferred_hits, 1);

        wb.flush();
        assert_eq!(shared.len(), 2);
        let stats = wb.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.published, 2);
        // Both frames committed at flush under the ISPA counter names.
        let snap = rec.snapshot();
        assert_eq!(snap.counters["ispa.frames"], 2);
        assert_eq!(snap.counters["dataflow.transfers"], 14);
        assert_eq!(snap.work["writeback.flushes"], 1);
        assert_eq!(snap.work["writeback.deferred_hits"], 1);

        // A second flush with nothing pending is a no-op.
        wb.flush();
        assert_eq!(wb.stats().flushes, 1);
    }

    #[test]
    fn write_behind_race_loser_flushes_speculative() {
        let rec_a = spo_obs::Recorder::new();
        let rec_b = spo_obs::Recorder::new();
        let shared: SharedStore<Dnf> = SharedStore::new(4);
        let a = WriteBehind::new(&shared, &rec_a);
        let b = WriteBehind::new(&shared, &rec_b);
        let cost = FrameCost {
            transfers: 5,
            ..Default::default()
        };
        assert_eq!(a.insert_costed(key(1), summary(), cost), None);
        assert_eq!(b.insert_costed(key(1), summary(), cost), None);
        a.flush();
        b.flush();
        // Exactly one committed flush globally for the shared key …
        let (sa, sb) = (rec_a.snapshot(), rec_b.snapshot());
        assert_eq!(sa.counters["ispa.frames"], 1);
        assert_eq!(sb.counters["ispa.frames"], 0);
        // … and the loser's copy lands in the speculative work counters.
        assert_eq!(sb.work["ispa.speculative.frames"], 1);
        assert_eq!(sb.work["ispa.speculative.transfers"], 5);
        assert_eq!(shared.len(), 1);
        assert_eq!(a.stats().published, 1);
        assert_eq!(b.stats().published, 0);
    }

    #[test]
    fn write_behind_read_through_caches_shared_hits() {
        let rec = spo_obs::Recorder::new();
        let shared: SharedStore<Dnf> = SharedStore::new(4);
        shared.insert(key(1), summary());
        let wb = WriteBehind::new(&shared, &rec);
        assert!(wb.get(&key(1)).is_some());
        assert!(wb.get(&key(1)).is_some());
        // First read hit the shared shard; the repeat was absorbed
        // locally.
        let shard_hits: u64 = shared.shard_stats().iter().map(|s| s.hits).sum();
        assert_eq!(shard_hits, 1);
        assert_eq!(wb.stats().deferred_hits, 1);
    }

    #[test]
    fn write_behind_overflows_into_inline_flush() {
        let rec = spo_obs::Recorder::new();
        let shared: SharedStore<Dnf> = SharedStore::new(4);
        let wb = WriteBehind::new(&shared, &rec);
        for i in 0..WriteBehind::<Dnf>::DEFAULT_CAPACITY as u32 {
            wb.insert_costed(key(i), summary(), FrameCost::default());
        }
        use crate::SummaryStore as _;
        assert_eq!(wb.stats().flushes, 1, "capacity overflow flushes inline");
        assert_eq!(shared.len(), WriteBehind::<Dnf>::DEFAULT_CAPACITY);
    }

    #[test]
    fn shared_store_is_usable_across_threads() {
        let store: SharedStore<Dnf> = SharedStore::default();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..32 {
                        store.insert(key(t * 32 + i), summary());
                        assert!(store.get(&key(t * 32 + i)).is_some());
                    }
                });
            }
        });
        assert_eq!(store.len(), 128);
    }
}
