//! The security policy analysis: SPDA (Algorithm 1) and ISPA (Algorithm 2).
//!
//! For each API entry point the analyzer computes, per security-sensitive
//! event, the checks that **may** (∪-joined, disjunctive [`Dnf`]) and
//! **must** (∩-joined [`MustSet`]) precede it. The analysis is flow- and
//! context-sensitive, propagates constants inter-procedurally through
//! parameter binding, ignores checks inside privileged regions, skips call
//! sites that do not resolve to a unique target, cuts recursion, and
//! memoizes `(method, in-policy, const-params, privileged)` summaries.

use crate::checks::{check_of_call, Check};
use crate::events::{EventDef, EventKey};
use crate::policy::{AnalysisStats, EntryPolicy, EventPolicy, LibraryPolicies};
use crate::store::{EventRec, LocalStore, MemoKey, Summary, SummaryStore};
use spo_dataflow::{
    run_forward_governed, AbsVal, ConstEnv, Dnf, FixpointStats, Flow, ForwardAnalysis, JoinLattice,
    MustSet,
};
use spo_guard::Governor;
use spo_jir::{Expr, FieldFlags, FieldRef, FieldTarget, LocalId, MethodId, Program, Stmt};
use spo_obs::{Counter, Histogram, Recorder};
use spo_resolve::{entry_points, Hierarchy, Resolution, Resolver};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

/// How widely method summaries are reused (Table 2's three configurations).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemoScope {
    /// Never reuse: every calling context re-analyzed ("No summaries").
    None,
    /// Reuse within one entry point's analysis, cleared between entries
    /// ("Summaries (per entry point)").
    PerEntry,
    /// Reuse across the whole library ("Summaries (global)").
    #[default]
    Global,
}

/// Configuration of one analysis run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AnalysisOptions {
    /// Summary reuse policy.
    pub memo: MemoScope,
    /// Interprocedural (and conditional intraprocedural) constant
    /// propagation: fold constant branches, bind constant arguments.
    /// Disabling reproduces the "False positives eliminated by ICP"
    /// ablation of Table 3.
    pub icp: bool,
    /// Which events are security-sensitive.
    pub events: EventDef,
    /// When `false`, calls are never followed: the intraprocedural-only
    /// ablation used to attribute root causes in Table 3.
    pub interprocedural: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            memo: MemoScope::Global,
            icp: true,
            events: EventDef::Narrow,
            interprocedural: true,
        }
    }
}

/// The dataflow value carried by one of the two passes: the MAY pass uses
/// [`Dnf`], the MUST pass uses [`MustSet`]. Sealed: these are the only two
/// policy domains.
pub trait PolicyDomain: JoinLattice + Clone + Eq + Hash + Debug + private::Sealed {
    /// The value on entry to an API entry point (no checks yet, one path).
    fn entry_value() -> Self;

    /// The gen operation at a security-check statement.
    fn gen_check(&mut self, check: Check);
}

mod private {
    pub trait Sealed {}
    impl Sealed for spo_dataflow::Dnf {}
    impl Sealed for spo_dataflow::MustSet {}
}

impl PolicyDomain for Dnf {
    fn entry_value() -> Self {
        Dnf::empty_path()
    }

    fn gen_check(&mut self, check: Check) {
        self.gen(check.index());
    }
}

impl PolicyDomain for MustSet {
    fn entry_value() -> Self {
        MustSet::Set(spo_dataflow::BitSet32::empty())
    }

    fn gen_check(&mut self, check: Check) {
        self.insert(check.index());
    }
}

/// Combined per-statement dataflow state: policy ⊗ constants ⊗ privilege
/// depth.
#[derive(Clone, PartialEq, Debug)]
struct SpState<P> {
    policy: P,
    env: ConstEnv,
    priv_depth: u32,
}

impl<P: PolicyDomain> JoinLattice for SpState<P> {
    fn join(&mut self, other: &Self) -> bool {
        let a = self.policy.join(&other.policy);
        let b = self.env.join(&other.env);
        // Privileged regions are well nested, so depths agree at joins; if
        // they ever disagree, taking the max conservatively treats the
        // point as privileged (checks ignored, never over-reported).
        let c = if other.priv_depth > self.priv_depth {
            self.priv_depth = other.priv_depth;
            true
        } else {
            false
        };
        a || b || c
    }
}

/// The security policy analyzer for one program.
///
/// # Examples
///
/// ```
/// use spo_core::{Analyzer, AnalysisOptions};
///
/// let program = spo_jir::parse_program(r#"
/// class java.lang.SecurityManager {
///   method public native void checkExit(int status);
/// }
/// class java.lang.System {
///   field static java.lang.SecurityManager security;
///   method public static java.lang.SecurityManager getSecurityManager() {
///     local java.lang.SecurityManager sm;
///     sm = java.lang.System.security;
///     return sm;
///   }
/// }
/// class demo.Halt {
///   method public void stop(int code) {
///     local java.lang.SecurityManager sm;
///     sm = staticinvoke java.lang.System.getSecurityManager();
///     if sm == null goto doit;
///     virtualinvoke sm.checkExit(code);
///   doit:
///     staticinvoke demo.Halt.halt0(code);
///     return;
///   }
///   method private static native void halt0(int code);
/// }
/// "#).unwrap();
/// let analyzer = Analyzer::new(&program, AnalysisOptions::default());
/// let lib = analyzer.analyze_library("demo");
/// let entry = &lib.entries["demo.Halt.stop(int)"];
/// // checkExit may (but not must) precede the native halt0 call.
/// let ev = &entry.events[&spo_core::EventKey::Native("halt0".into())];
/// assert!(ev.may.contains(spo_core::Check::Exit));
/// assert!(!ev.must.contains(spo_core::Check::Exit));
/// ```
pub struct Analyzer<'p> {
    program: &'p Program,
    hierarchy: Hierarchy<'p>,
    options: AnalysisOptions,
    recorder: Recorder,
}

impl<'p> Analyzer<'p> {
    /// Creates an analyzer (builds the class hierarchy). Metrics are off;
    /// use [`Analyzer::with_recorder`] to collect them.
    pub fn new(program: &'p Program, options: AnalysisOptions) -> Self {
        let hierarchy = Hierarchy::new(program);
        Analyzer {
            program,
            hierarchy,
            options,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: spans, counters, and fixpoint
    /// histograms from every subsequent analysis land in it. Pass
    /// [`Recorder::disabled`] (the default) for zero-overhead runs.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder (disabled unless set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The analysis options.
    pub fn options(&self) -> AnalysisOptions {
        self.options
    }

    /// Analyzes every API entry point of the program with both the MAY and
    /// MUST passes and returns the merged per-entry policies.
    pub fn analyze_library(&self, name: &str) -> LibraryPolicies {
        let roots = entry_points(self.program);
        self.analyze_entries(name, &roots)
    }

    /// Analyzes the single entry point with the given signature
    /// (`Class.method(paramtypes)`), if it exists.
    ///
    /// # Examples
    ///
    /// See [`Analyzer`]'s type-level example; this is the one-entry
    /// variant of [`Analyzer::analyze_library`].
    pub fn analyze_entry(&self, signature: &str) -> Option<EntryPolicy> {
        let root = entry_points(self.program)
            .into_iter()
            .find(|&m| self.program.method_signature(m) == signature)?;
        let lib = self.analyze_entries("single", &[root]);
        lib.entries.into_values().next()
    }

    /// Analyzes a chosen set of entry points (both passes) with private
    /// serial summary stores.
    pub fn analyze_entries(&self, name: &str, roots: &[MethodId]) -> LibraryPolicies {
        let may_store = LocalStore::default();
        let must_store = LocalStore::default();
        self.analyze_entries_with(name, roots, &may_store, &must_store)
    }

    /// Analyzes a chosen set of entry points (both passes) against the
    /// given summary stores.
    ///
    /// This is the store-pluggable variant behind [`analyze_entries`]: the
    /// serial analyzer passes fresh [`LocalStore`]s, while the parallel
    /// engine passes [`SharedStore`]s so workers reuse each other's
    /// summaries. Results are identical either way — memoized summaries
    /// are pure functions of their key.
    ///
    /// [`analyze_entries`]: Analyzer::analyze_entries
    /// [`SharedStore`]: crate::SharedStore
    pub fn analyze_entries_with(
        &self,
        name: &str,
        roots: &[MethodId],
        may_store: &dyn SummaryStore<Dnf>,
        must_store: &dyn SummaryStore<MustSet>,
    ) -> LibraryPolicies {
        let mut stats = AnalysisStats {
            entry_points: roots.len(),
            ..Default::default()
        };

        let t0 = Instant::now();
        let may = self.run_pass::<Dnf>(roots, &mut stats, may_store);
        stats.may_nanos = t0.elapsed().as_nanos();
        self.recorder
            .duration("ispa.pass.may")
            .record(stats.may_nanos as u64);

        let t1 = Instant::now();
        let must = self.run_pass::<MustSet>(roots, &mut stats, must_store);
        stats.must_nanos = t1.elapsed().as_nanos();
        self.recorder
            .duration("ispa.pass.must")
            .record(stats.must_nanos as u64);
        stats.record_into(&self.recorder);

        let mut entries = std::collections::BTreeMap::new();
        for (sig, raw_may) in may {
            let entry = combine_raw(sig.clone(), raw_may, must.get(&sig));
            entries.insert(sig, entry);
        }
        LibraryPolicies {
            name: name.to_owned(),
            entries,
            stats,
            degraded: std::collections::BTreeMap::new(),
        }
    }

    /// Analyzes a single entry point (both passes) against the given
    /// summary stores, returning its signature key and policy.
    ///
    /// This is the unit of work the parallel engine fans out: each worker
    /// analyzes whole roots against shared stores and the engine merges the
    /// `(signature, policy)` pairs back in root order, reproducing the
    /// serial first-root-wins merge exactly.
    pub fn analyze_root_with(
        &self,
        root: MethodId,
        may_store: &dyn SummaryStore<Dnf>,
        must_store: &dyn SummaryStore<MustSet>,
        stats: &mut AnalysisStats,
    ) -> (String, EntryPolicy) {
        self.analyze_root_traced(root, may_store, must_store, stats, &self.recorder)
    }

    /// Like [`Analyzer::analyze_root_with`], recording metrics into an
    /// explicit recorder instead of the analyzer's own — the parallel
    /// engine hands each worker a private recorder here and merges them in
    /// worker-id order afterwards.
    ///
    /// [`Analyzer::analyze_root_with`]: Analyzer::analyze_root_with
    pub fn analyze_root_traced(
        &self,
        root: MethodId,
        may_store: &dyn SummaryStore<Dnf>,
        must_store: &dyn SummaryStore<MustSet>,
        stats: &mut AnalysisStats,
        rec: &Recorder,
    ) -> (String, EntryPolicy) {
        self.analyze_root_governed(
            root,
            may_store,
            must_store,
            stats,
            rec,
            &Governor::unlimited(),
        )
    }

    /// Like [`Analyzer::analyze_root_traced`], under a per-root
    /// [`Governor`]: every method-frame entry and worklist transfer is
    /// checked against the governor's budget and cancel token. Exhaustion
    /// raises an [`Interrupt`](spo_guard::Interrupt) unwind — callers with
    /// a non-trivial budget must run this inside
    /// [`quarantine`](spo_guard::quarantine), as the parallel engine does.
    ///
    /// [`Analyzer::analyze_root_traced`]: Analyzer::analyze_root_traced
    pub fn analyze_root_governed(
        &self,
        root: MethodId,
        may_store: &dyn SummaryStore<Dnf>,
        must_store: &dyn SummaryStore<MustSet>,
        stats: &mut AnalysisStats,
        rec: &Recorder,
        governor: &Governor,
    ) -> (String, EntryPolicy) {
        stats.entry_points += 1;

        let t0 = Instant::now();
        let raw_may = self.root_pass::<Dnf>(root, stats, may_store, rec, governor);
        let may_nanos = t0.elapsed().as_nanos();
        stats.may_nanos += may_nanos;
        rec.duration("ispa.root.may").record(may_nanos as u64);

        let t1 = Instant::now();
        let raw_must = self.root_pass::<MustSet>(root, stats, must_store, rec, governor);
        let must_nanos = t1.elapsed().as_nanos();
        stats.must_nanos += must_nanos;
        rec.duration("ispa.root.must").record(must_nanos as u64);

        let sig = self.program.method_signature(root);
        let entry = combine_raw(sig.clone(), raw_may, Some(&raw_must));
        (sig, entry)
    }

    /// Runs one pass (MAY or MUST) over all roots.
    fn run_pass<P: PolicyDomain>(
        &self,
        roots: &[MethodId],
        stats: &mut AnalysisStats,
        store: &dyn SummaryStore<P>,
    ) -> std::collections::BTreeMap<String, RawEntry<P>> {
        let resolver = Resolver::new(&self.hierarchy);
        let governor = Governor::unlimited();
        let mut pass = Pass {
            program: self.program,
            resolver,
            options: self.options,
            store,
            stack: Vec::new(),
            taint_floor: usize::MAX,
            stats,
            obs: PassObs::new(&self.recorder),
            governor: &governor,
        };
        let mut out = std::collections::BTreeMap::new();
        for &root in roots {
            if pass.options.memo == MemoScope::PerEntry {
                pass.store.clear();
            }
            let raw = pass.analyze_entry(root);
            // Protected methods can collide with public overrides on the
            // signature key across class boundaries; keep the first
            // (deterministic: roots come in program order).
            out.entry(self.program.method_signature(root))
                .or_insert(raw);
        }
        out
    }

    /// Runs one pass (MAY or MUST) over a single root.
    fn root_pass<P: PolicyDomain>(
        &self,
        root: MethodId,
        stats: &mut AnalysisStats,
        store: &dyn SummaryStore<P>,
        rec: &Recorder,
        governor: &Governor,
    ) -> RawEntry<P> {
        let resolver = Resolver::new(&self.hierarchy);
        let mut pass = Pass {
            program: self.program,
            resolver,
            options: self.options,
            store,
            stack: Vec::new(),
            taint_floor: usize::MAX,
            stats,
            obs: PassObs::new(rec),
            governor,
        };
        pass.analyze_entry(root)
    }
}

/// Zips the per-root results of the two passes into an [`EntryPolicy`].
fn combine_raw(
    sig: String,
    raw_may: RawEntry<Dnf>,
    raw_must: Option<&RawEntry<MustSet>>,
) -> EntryPolicy {
    let mut entry = EntryPolicy::new(sig);
    for (key, dnf) in raw_may.events {
        let mut ep = EventPolicy {
            may: crate::checks::CheckSet::from_bits(dnf.flat_union()),
            may_paths: dnf,
            ..Default::default()
        };
        if let Some(rm) = raw_must {
            if let Some(ms) = rm.events.get(&key) {
                ep.must = crate::checks::CheckSet::from_bits(ms.unwrap_or_empty());
            }
        }
        entry.events.insert(key, ep);
    }
    entry.event_origins = raw_may.event_origins;
    entry.check_origins = raw_may.check_origins;
    entry
}

/// Per-entry raw result of one pass.
struct RawEntry<P> {
    events: std::collections::BTreeMap<EventKey, P>,
    event_origins: std::collections::BTreeMap<EventKey, crate::policy::Origins>,
    check_origins: std::collections::BTreeMap<u8, crate::policy::Origins>,
}

/// Pre-resolved metric handles for one pass, so per-frame recording is a
/// handful of atomic adds (or no-ops when the recorder is disabled).
///
/// Frame metrics are split by *commit status* to keep the deterministic
/// sections independent of worker count and schedule:
///
/// - **committed** frames — the top frame, any frame with memoization off,
///   or the frame whose clean summary newly entered the store — flush to
///   deterministic counters/histograms. The set of inserted memo keys is
///   schedule-independent (a clean summary is a pure function of its key),
///   so these totals are byte-identical for `--jobs 1` and `--jobs 8`.
/// - **speculative** frames lost an insert race: a parallel worker
///   recomputed work another worker committed first. Work counters only.
/// - **tainted** frames were cut by recursion; how often they are recomputed
///   depends on memo state and schedule. Work counters only.
struct PassObs {
    rec: Recorder,
    frames: Counter,
    transfers: Counter,
    cfg_edges: Counter,
    calls_resolved: Counter,
    calls_unresolved: Counter,
    hist_transfers: Histogram,
    hist_repasses: Histogram,
    spec_frames: Counter,
    spec_transfers: Counter,
    tainted_frames: Counter,
    tainted_transfers: Counter,
}

impl PassObs {
    fn new(rec: &Recorder) -> Self {
        PassObs {
            rec: rec.clone(),
            frames: rec.counter("ispa.frames"),
            transfers: rec.counter("dataflow.transfers"),
            cfg_edges: rec.counter("ispa.cfg.edges"),
            calls_resolved: rec.counter("ispa.calls.resolved"),
            calls_unresolved: rec.counter("ispa.calls.unresolved"),
            hist_transfers: rec.histogram("fixpoint.transfers"),
            hist_repasses: rec.histogram("fixpoint.repasses"),
            spec_frames: rec.work_counter("ispa.speculative.frames"),
            spec_transfers: rec.work_counter("ispa.speculative.transfers"),
            tainted_frames: rec.work_counter("ispa.tainted.frames"),
            tainted_transfers: rec.work_counter("ispa.tainted.transfers"),
        }
    }

    fn flush_committed(&self, f: &FrameObs) {
        self.frames.incr();
        self.transfers.add(f.fx.transfers);
        self.cfg_edges.add(f.cfg_edges);
        self.calls_resolved.add(f.resolved);
        self.calls_unresolved.add(f.unresolved);
        self.hist_transfers.record(f.fx.transfers);
        self.hist_repasses
            .record(f.fx.transfers.saturating_sub(f.fx.visited));
    }

    fn flush_speculative(&self, f: &FrameObs) {
        self.spec_frames.incr();
        self.spec_transfers.add(f.fx.transfers);
    }

    fn flush_tainted(&self, f: &FrameObs) {
        self.tainted_frames.incr();
        self.tainted_transfers.add(f.fx.transfers);
    }
}

/// Metrics one frame collects about itself, flushed at frame end through
/// the [`PassObs`] commit protocol.
#[derive(Default)]
struct FrameObs {
    fx: FixpointStats,
    cfg_edges: u64,
    resolved: u64,
    unresolved: u64,
}

/// Mutable state of one pass over one library.
struct Pass<'a, 'p, P: PolicyDomain> {
    program: &'p Program,
    resolver: Resolver<'a>,
    options: AnalysisOptions,
    store: &'a dyn SummaryStore<P>,
    stack: Vec<MethodId>,
    /// Minimum stack position targeted by a recursion cut in the current
    /// subtree; frames deeper than this position must not be memoized
    /// (their summaries depend on the outer stack).
    taint_floor: usize,
    stats: &'a mut AnalysisStats,
    obs: PassObs,
    /// Per-root budget and cancellation state; trips (unwinds) on
    /// exhaustion. Unlimited for ungoverned runs.
    governor: &'a Governor,
}

impl<'a, 'p, P: PolicyDomain> Pass<'a, 'p, P> {
    fn analyze_entry(&mut self, root: MethodId) -> RawEntry<P> {
        let n_params = self
            .program
            .method(root)
            .body
            .as_ref()
            .map(|b| b.n_params)
            .unwrap_or_default();
        let consts = vec![AbsVal::Bottom; n_params];
        let mut summary = self.analyze_method(root, &P::entry_value(), consts, false, true);
        // A native entry point is itself a JNI event reached with no checks.
        let root_method = self.program.method(root);
        if root_method.is_native() {
            let mut with_event = Summary {
                exit: summary.exit.clone(),
                events: summary.events.clone(),
                checks: summary.checks.clone(),
            };
            with_event.events.push(EventRec {
                key: EventKey::Native(self.program.str(root_method.name).to_owned()),
                policy: P::entry_value(),
                origin: root,
            });
            summary = Arc::new(with_event);
        }
        let mut events: std::collections::BTreeMap<EventKey, P> = Default::default();
        let mut event_origins: std::collections::BTreeMap<EventKey, crate::policy::Origins> =
            Default::default();
        let mut check_origins: std::collections::BTreeMap<u8, crate::policy::Origins> =
            Default::default();
        for rec in &summary.events {
            match events.entry(rec.key.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().join(&rec.policy);
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(rec.policy.clone());
                }
            }
            event_origins
                .entry(rec.key.clone())
                .or_default()
                .insert(self.program.method_name(rec.origin));
        }
        // The API return is itself a security-sensitive event; its policy is
        // the entry's exit value.
        events
            .entry(EventKey::ApiReturn)
            .and_modify(|p| {
                p.join(&summary.exit);
            })
            .or_insert_with(|| summary.exit.clone());
        event_origins
            .entry(EventKey::ApiReturn)
            .or_default()
            .insert(self.program.method_name(root));
        for (check, origin) in &summary.checks {
            check_origins
                .entry(check.index())
                .or_default()
                .insert(self.program.method_name(*origin));
        }
        RawEntry {
            events,
            event_origins,
            check_origins,
        }
    }

    /// Analyzes `method` in the context `(in_policy, consts, privileged)`,
    /// returning its summary. `top` marks the entry frame, which is never
    /// memoized.
    fn analyze_method(
        &mut self,
        method: MethodId,
        in_policy: &P,
        consts: Vec<AbsVal>,
        privileged: bool,
        top: bool,
    ) -> Arc<Summary<P>> {
        // Frame budget: counted before the memo lookup so the count is a
        // pure function of the root's call tree, independent of which
        // worker populated the shared store first.
        self.governor.enter_frame();
        let memo_on = self.options.memo != MemoScope::None;
        let key = MemoKey {
            method,
            policy: in_policy.clone(),
            consts: consts.clone(),
            privileged,
        };
        if !top && memo_on {
            if let Some(hit) = self.store.get(&key) {
                self.stats.memo_hits += 1;
                return hit;
            }
            self.stats.memo_misses += 1;
        }
        self.stats.frames_analyzed += 1;

        let program = self.program;
        let m = program.method(method);
        let Some(body) = m.body.as_ref() else {
            // Native/abstract target reached directly (callers normally
            // handle natives as events before getting here): identity.
            return Arc::new(Summary {
                exit: in_policy.clone(),
                events: Vec::new(),
                checks: Vec::new(),
            });
        };

        let depth = self.stack.len();
        self.stack.push(method);

        // Entry constant environment: parameters from the calling context,
        // other locals unassigned.
        let mut env = ConstEnv::top(body.locals.len());
        for (i, v) in consts.iter().enumerate().take(body.n_params) {
            env.set(
                LocalId(i as u32),
                if self.options.icp { *v } else { AbsVal::Bottom },
            );
        }

        let cfg = body.cfg_traced(&self.obs.rec);
        let governor = self.governor;
        let mut spda = Spda {
            pass: self,
            boundary: SpState {
                policy: in_policy.clone(),
                env,
                priv_depth: u32::from(privileged),
            },
            call_cache: HashMap::new(),
        };
        let (results, fx) = run_forward_governed(body, &cfg, &mut spda, governor);
        let call_cache = spda.call_cache;
        let mut fobs = FrameObs {
            fx,
            cfg_edges: if self.obs.rec.is_enabled() {
                cfg.edge_count() as u64
            } else {
                0
            },
            ..Default::default()
        };

        // Post-pass: exit value, events, and check origins at the fixpoint.
        let mut exit: Option<P> = None;
        let mut events: Vec<EventRec<P>> = Vec::new();
        let mut checks: Vec<(Check, MethodId)> = Vec::new();
        for (idx, stmt) in body.stmts.iter().enumerate() {
            let Some(st) = results.input(idx) else {
                continue;
            };
            match stmt {
                Stmt::Return { .. } => match &mut exit {
                    Some(e) => {
                        e.join(&st.policy);
                    }
                    none => *none = Some(st.policy.clone()),
                },
                Stmt::Invoke { call, .. } => {
                    if let Some(check) = check_of_call(program, call) {
                        if st.priv_depth == 0 {
                            checks.push((check, method));
                        }
                        continue;
                    }
                    match self.resolver.resolve(call) {
                        Resolution::Unique(target) => {
                            fobs.resolved += 1;
                            let tm = program.method(target);
                            if tm.is_native() {
                                events.push(EventRec {
                                    key: EventKey::Native(program.str(tm.name).to_owned()),
                                    policy: st.policy.clone(),
                                    origin: method,
                                });
                            } else if tm.body.is_some()
                                && self.options.interprocedural
                                && !self.stack.contains(&target)
                            {
                                let summary = match call_cache.get(&idx) {
                                    Some(s) => Arc::clone(s),
                                    None => {
                                        let args = call_arg_vals(call, &st.env, self.options.icp);
                                        self.analyze_method(
                                            target,
                                            &st.policy,
                                            args,
                                            st.priv_depth > 0,
                                            false,
                                        )
                                    }
                                };
                                events.extend(summary.events.iter().cloned());
                                checks.extend(summary.checks.iter().cloned());
                            }
                        }
                        Resolution::Ambiguous(_) | Resolution::Unknown => {
                            self.stats.unresolved_calls += 1;
                            fobs.unresolved += 1;
                        }
                    }
                }
                Stmt::Assign {
                    value: Expr::FieldLoad(target),
                    ..
                } if self.options.events == EventDef::Broad => {
                    if let Some(name) = self.private_field_name(target) {
                        events.push(EventRec {
                            key: EventKey::DataRead(name),
                            policy: st.policy.clone(),
                            origin: method,
                        });
                    }
                }
                Stmt::FieldStore { target, .. } if self.options.events == EventDef::Broad => {
                    if let Some(name) = self.private_field_name(target) {
                        events.push(EventRec {
                            key: EventKey::DataWrite(name),
                            policy: st.policy.clone(),
                            origin: method,
                        });
                    }
                }
                _ => {}
            }
            // Broad events: accesses to API parameters in the entry frame.
            if self.options.events == EventDef::Broad && top {
                for l in stmt.read_locals() {
                    if l.index() < body.n_params && l.index() > 0 {
                        events.push(EventRec {
                            key: EventKey::DataRead(
                                program.str(body.locals[l.index()].name).to_owned(),
                            ),
                            policy: st.policy.clone(),
                            origin: method,
                        });
                    }
                }
                if let Some(d) = stmt.def_local() {
                    if d.index() < body.n_params && d.index() > 0 {
                        events.push(EventRec {
                            key: EventKey::DataWrite(
                                program.str(body.locals[d.index()].name).to_owned(),
                            ),
                            policy: st.policy.clone(),
                            origin: method,
                        });
                    }
                }
            }
        }

        self.stack.pop();
        let summary = Arc::new(Summary {
            // Methods with no reachable return (always-throwing): identity,
            // a conservative choice exercised rarely.
            exit: exit.unwrap_or_else(|| in_policy.clone()),
            events,
            checks,
        });
        let clean = self.taint_floor >= depth;
        if clean {
            self.taint_floor = usize::MAX;
        }
        // Commit protocol: only committed frames (top frame, memo off, or
        // the insert that newly entered the store) flush to deterministic
        // metrics; race losers and recursion-tainted frames flush to
        // scheduling-dependent work counters. See [`PassObs`]. A
        // write-behind store defers the insert — and with it the
        // committed-vs-speculative decision — to its batched flush, which
        // settles the same metrics from the [`FrameCost`] handed over
        // here.
        if top || !memo_on {
            self.obs.flush_committed(&fobs);
        } else if clean {
            let cost = crate::store::FrameCost {
                transfers: fobs.fx.transfers,
                visited: fobs.fx.visited,
                cfg_edges: fobs.cfg_edges,
                resolved: fobs.resolved,
                unresolved: fobs.unresolved,
            };
            match self.store.insert_costed(key, Arc::clone(&summary), cost) {
                Some(true) => self.obs.flush_committed(&fobs),
                Some(false) => self.obs.flush_speculative(&fobs),
                // Deferred: the store owns the cost and flushes it when
                // the batched insert resolves.
                None => {}
            }
        } else {
            self.obs.flush_tainted(&fobs);
        }
        summary
    }

    /// The simple name of a private field, if `target` resolves to one
    /// (searching the superclass chain).
    fn private_field_name(&self, target: &FieldTarget) -> Option<String> {
        let fr: FieldRef = target.field();
        let mut class = self.program.class_by_name(fr.class)?;
        loop {
            if let Some(fid) = self.program.find_field(class, fr.name) {
                let f = self.program.field(fid);
                return f
                    .flags
                    .contains(FieldFlags::PRIVATE)
                    .then(|| self.program.str(f.name).to_owned());
            }
            class = self.resolver.hierarchy().superclass(class)?;
        }
    }
}

/// Abstract argument values at a call site (receiver first for instance
/// calls), or all-⊥ when ICP is off.
fn call_arg_vals(call: &spo_jir::Call, env: &ConstEnv, icp: bool) -> Vec<AbsVal> {
    let n = call.args.len() + usize::from(call.receiver.is_some());
    if !icp {
        return vec![AbsVal::Bottom; n];
    }
    let mut out = Vec::with_capacity(n);
    if let Some(r) = call.receiver {
        out.push(env.get(r));
    }
    out.extend(call.args.iter().map(|&a| env.eval_operand(a)));
    out
}

/// The intraprocedural transfer functions (Algorithm 1), parameterized over
/// the policy domain and recursing into [`Pass::analyze_method`] at resolved
/// call sites (Algorithm 2's mutual recursion).
struct Spda<'s, 'a, 'p, P: PolicyDomain> {
    pass: &'s mut Pass<'a, 'p, P>,
    boundary: SpState<P>,
    /// Last summary computed per call-site statement; reused by the
    /// post-pass (the final transfer of a statement sees its fixpoint IN).
    call_cache: HashMap<usize, Arc<Summary<P>>>,
}

impl<P: PolicyDomain> ForwardAnalysis for Spda<'_, '_, '_, P> {
    type State = SpState<P>;

    fn boundary(&mut self) -> SpState<P> {
        self.boundary.clone()
    }

    fn transfer(&mut self, idx: usize, stmt: &Stmt, input: &SpState<P>) -> Flow<SpState<P>> {
        let mut out = input.clone();
        match stmt {
            Stmt::Assign { .. } => out.env.transfer(stmt),
            Stmt::EnterPriv => out.priv_depth += 1,
            Stmt::ExitPriv => out.priv_depth = out.priv_depth.saturating_sub(1),
            Stmt::If { cond, .. } => {
                let decided = if self.pass.options.icp {
                    input.env.eval_cond(cond)
                } else {
                    None
                };
                return match decided {
                    Some(true) => Flow::Branch {
                        taken: Some(out),
                        fall: None,
                    },
                    Some(false) => Flow::Branch {
                        taken: None,
                        fall: Some(out),
                    },
                    None => Flow::Branch {
                        taken: Some(out.clone()),
                        fall: Some(out),
                    },
                };
            }
            Stmt::Invoke { dst, call } => {
                if let Some(d) = dst {
                    out.env.set(*d, AbsVal::Bottom);
                }
                if let Some(check) = check_of_call(self.pass.program, call) {
                    // Checks inside privileged regions always succeed:
                    // semantic no-ops (§6.2).
                    if input.priv_depth == 0 {
                        out.policy.gen_check(check);
                    }
                    return Flow::Uniform(out);
                }
                if !self.pass.options.interprocedural {
                    return Flow::Uniform(out);
                }
                if let Resolution::Unique(target) = self.pass.resolver.resolve(call) {
                    let tm = self.pass.program.method(target);
                    if tm.body.is_some() && !tm.is_native() && !self.pass.stack.contains(&target) {
                        let args = call_arg_vals(call, &input.env, self.pass.options.icp);
                        let summary = self.pass.analyze_method(
                            target,
                            &input.policy,
                            args,
                            input.priv_depth > 0,
                            false,
                        );
                        out.policy = summary.exit.clone();
                        self.call_cache.insert(idx, summary);
                    } else if self.pass.stack.contains(&target) {
                        // Recursion cut: taint every frame deeper than the
                        // cut target so context-dependent summaries are not
                        // memoized.
                        let pos = self
                            .pass
                            .stack
                            .iter()
                            .position(|&m| m == target)
                            .expect("target just found in stack");
                        self.pass.taint_floor = self.pass.taint_floor.min(pos);
                    }
                }
            }
            _ => {}
        }
        Flow::Uniform(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::CheckSet;

    /// Minimal runtime prelude shared by the test programs.
    const PRELUDE: &str = r#"
class java.lang.Object { }
class java.lang.SecurityManager {
  method public native void checkExit(int status);
  method public native void checkConnect(java.lang.String host, int port);
  method public native void checkAccept(java.lang.String host, int port);
  method public native void checkMulticast(java.net.InetAddress addr);
  method public native void checkRead(java.lang.String file);
  method public native void checkLink(java.lang.String lib);
  method public native void checkWrite(java.lang.String file);
  method public native void checkPermission(java.lang.Object perm);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
"#;

    fn analyze(src: &str) -> LibraryPolicies {
        analyze_opts(src, AnalysisOptions::default())
    }

    fn analyze_opts(src: &str, options: AnalysisOptions) -> LibraryPolicies {
        let mut program = spo_jir::parse_program(PRELUDE).unwrap();
        spo_jir::parse_into(src, &mut program).unwrap();
        let analyzer = Analyzer::new(&program, options);
        analyzer.analyze_library("test")
    }

    fn may_of(lib: &LibraryPolicies, sig: &str, ev: &EventKey) -> CheckSet {
        lib.entries[sig].events[ev].may
    }

    fn must_of(lib: &LibraryPolicies, sig: &str, ev: &EventKey) -> CheckSet {
        lib.entries[sig].events[ev].must
    }

    #[test]
    fn straight_line_check_is_must_and_may() {
        let lib = analyze(
            r#"
class t.A {
  method public void m() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkExit(0);
    staticinvoke t.A.op0();
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(may_of(&lib, "t.A.m()", &ev), CheckSet::of(Check::Exit));
        assert_eq!(must_of(&lib, "t.A.m()", &ev), CheckSet::of(Check::Exit));
        // The API return sees the same policy.
        assert_eq!(
            must_of(&lib, "t.A.m()", &EventKey::ApiReturn),
            CheckSet::of(Check::Exit)
        );
    }

    #[test]
    fn branch_makes_check_may_not_must() {
        let lib = analyze(
            r#"
class t.B {
  method public void m(bool cond) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if cond goto skip;
    virtualinvoke sm.checkExit(0);
  skip:
    staticinvoke t.B.op0();
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(may_of(&lib, "t.B.m(bool)", &ev), CheckSet::of(Check::Exit));
        assert_eq!(must_of(&lib, "t.B.m(bool)", &ev), CheckSet::empty());
        // The disjunctive may view has two paths: {} and {checkExit}.
        let paths = &lib.entries["t.B.m(bool)"].events[&ev].may_paths;
        assert_eq!(paths.disjuncts().len(), 2);
    }

    #[test]
    fn figure_1_disjunctive_policy() {
        // JDK DatagramSocket.connect shape: either checkMulticast, or
        // checkConnect+checkAccept, before the native connect.
        let lib = analyze(
            r#"
class t.D {
  method public void connect(java.net.InetAddress addr, int port) {
    local java.lang.SecurityManager sm;
    local bool multicast;
    sm = staticinvoke java.lang.System.getSecurityManager();
    multicast = staticinvoke t.D.isMulticast(addr);
    if multicast goto mcast;
    virtualinvoke sm.checkConnect("h", port);
    virtualinvoke sm.checkAccept("h", port);
    goto doit;
  mcast:
    virtualinvoke sm.checkMulticast(addr);
  doit:
    staticinvoke t.D.connect0(addr, port);
    return;
  }
  method private static native bool isMulticast(java.net.InetAddress addr);
  method private static native void connect0(java.net.InetAddress addr, int port);
}
"#,
        );
        let sig = "t.D.connect(java.net.InetAddress,int)";
        let ev = EventKey::Native("connect0".into());
        let policy = &lib.entries[sig].events[&ev];
        assert_eq!(policy.must, CheckSet::empty());
        assert_eq!(
            policy.may,
            [Check::Multicast, Check::Connect, Check::Accept]
                .into_iter()
                .collect()
        );
        // Exactly the Figure 2 disjuncts.
        let expected_a: CheckSet = [Check::Multicast].into_iter().collect();
        let expected_b: CheckSet = [Check::Connect, Check::Accept].into_iter().collect();
        let disjuncts: Vec<CheckSet> = policy
            .may_paths
            .disjuncts()
            .iter()
            .map(|&d| CheckSet::from_bits(d))
            .collect();
        assert_eq!(disjuncts.len(), 2);
        assert!(disjuncts.contains(&expected_a));
        assert!(disjuncts.contains(&expected_b));
    }

    #[test]
    fn interprocedural_check_reaches_event() {
        let lib = analyze(
            r#"
class t.E {
  method public void outer() {
    local t.E x;
    x = this;
    virtualinvoke x.doCheck();
    staticinvoke t.E.op0();
    return;
  }
  method private void doCheck() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(must_of(&lib, "t.E.outer()", &ev), CheckSet::of(Check::Read));
    }

    #[test]
    fn event_inside_callee_attributed_to_entry() {
        let lib = analyze(
            r#"
class t.F {
  method public void outer() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkLink("lib");
    staticinvoke t.F.inner();
    return;
  }
  method private static void inner() {
    staticinvoke t.F.load0();
    return;
  }
  method private static native void load0();
}
"#,
        );
        let ev = EventKey::Native("load0".into());
        assert_eq!(must_of(&lib, "t.F.outer()", &ev), CheckSet::of(Check::Link));
        // Origin is the method containing the native call.
        let origins = &lib.entries["t.F.outer()"].event_origins[&ev];
        assert!(origins.contains("t.F.inner"));
    }

    #[test]
    fn privileged_checks_are_noops() {
        let lib = analyze(
            r#"
class t.G {
  method public void m() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    privileged {
      virtualinvoke sm.checkExit(0);
    }
    staticinvoke t.G.op0();
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(may_of(&lib, "t.G.m()", &ev), CheckSet::empty());
    }

    #[test]
    fn privileged_propagates_into_callees() {
        let lib = analyze(
            r#"
class t.H {
  method public void m() {
    privileged {
      staticinvoke t.H.helper();
    }
    staticinvoke t.H.op0();
    return;
  }
  method private static void helper() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkExit(0);
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(may_of(&lib, "t.H.m()", &ev), CheckSet::empty());
    }

    #[test]
    fn figure_4_context_sensitive_constants() {
        // URL(String) -> URL(URL, String, Handler=null): the null context
        // must not pick up the handler check; an unknown context must.
        let lib = analyze(
            r#"
class t.URL {
  method public void init1(java.lang.String spec) {
    local t.URL x;
    x = this;
    virtualinvoke x.init3(null, spec, null);
    return;
  }
  method public void init3(t.URL context, java.lang.String spec, t.Handler handler) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if handler == null goto skip;
    virtualinvoke sm.checkPermission(handler);
  skip:
    staticinvoke t.URL.parse0(spec);
    return;
  }
  method private static native void parse0(java.lang.String spec);
}
class t.Handler { }
"#,
        );
        let ev = EventKey::Native("parse0".into());
        // Through init1 the handler is null: no check anywhere.
        assert_eq!(
            may_of(&lib, "t.URL.init1(java.lang.String)", &ev),
            CheckSet::empty()
        );
        // Direct calls to init3 may perform the check.
        assert_eq!(
            may_of(&lib, "t.URL.init3(t.URL,java.lang.String,t.Handler)", &ev),
            CheckSet::of(Check::Permission)
        );
    }

    #[test]
    fn icp_off_reintroduces_spurious_path() {
        let src = r#"
class t.URL {
  method public void init1(java.lang.String spec) {
    local t.URL x;
    x = this;
    virtualinvoke x.init3(null, spec, null);
    return;
  }
  method public void init3(t.URL context, java.lang.String spec, t.Handler handler) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if handler == null goto skip;
    virtualinvoke sm.checkPermission(handler);
  skip:
    staticinvoke t.URL.parse0(spec);
    return;
  }
  method private static native void parse0(java.lang.String spec);
}
class t.Handler { }
"#;
        let no_icp = analyze_opts(
            src,
            AnalysisOptions {
                icp: false,
                ..Default::default()
            },
        );
        let ev = EventKey::Native("parse0".into());
        assert_eq!(
            may_of(&no_icp, "t.URL.init1(java.lang.String)", &ev),
            CheckSet::of(Check::Permission)
        );
    }

    #[test]
    fn recursion_terminates_and_is_memo_safe() {
        let src = r#"
class t.R {
  method public void m(int n) {
    local java.lang.SecurityManager sm;
    local t.R x;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite("f");
    x = this;
    virtualinvoke x.rec(n);
    staticinvoke t.R.op0();
    return;
  }
  method public void rec(int n) {
    local t.R x;
    if n <= 0 goto done;
    x = this;
    virtualinvoke x.rec(n);
  done:
    return;
  }
  method private static native void op0();
}
"#;
        for memo in [MemoScope::None, MemoScope::PerEntry, MemoScope::Global] {
            let lib = analyze_opts(
                src,
                AnalysisOptions {
                    memo,
                    ..Default::default()
                },
            );
            let ev = EventKey::Native("op0".into());
            assert_eq!(
                must_of(&lib, "t.R.m(int)", &ev),
                CheckSet::of(Check::Write),
                "memo scope {memo:?}"
            );
        }
    }

    #[test]
    fn memo_scopes_agree() {
        let src = r#"
class t.S {
  method public void a() {
    staticinvoke t.S.shared(1);
    return;
  }
  method public void b() {
    staticinvoke t.S.shared(1);
    return;
  }
  method private static void shared(int x) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if x == 0 goto skip;
    virtualinvoke sm.checkExit(x);
  skip:
    staticinvoke t.S.op0();
    return;
  }
  method private static native void op0();
}
"#;
        let base = analyze_opts(
            src,
            AnalysisOptions {
                memo: MemoScope::None,
                ..Default::default()
            },
        );
        for memo in [MemoScope::PerEntry, MemoScope::Global] {
            let lib = analyze_opts(
                src,
                AnalysisOptions {
                    memo,
                    ..Default::default()
                },
            );
            for (sig, entry) in &base.entries {
                assert_eq!(
                    &lib.entries[sig].events, &entry.events,
                    "{sig} under {memo:?}"
                );
            }
        }
        // Global memo actually hits across the two entries.
        let global = analyze_opts(
            src,
            AnalysisOptions {
                memo: MemoScope::Global,
                ..Default::default()
            },
        );
        assert!(global.stats.memo_hits > 0);
    }

    #[test]
    fn unresolved_calls_are_skipped() {
        let lib = analyze(
            r#"
class t.U {
  method public void m() {
    staticinvoke unknown.Ext.boom();
    staticinvoke t.U.op0();
    return;
  }
  method private static native void op0();
}
"#,
        );
        assert!(lib.entries.contains_key("t.U.m()"));
        assert!(lib.stats.unresolved_calls > 0);
    }

    #[test]
    fn broad_events_catch_figure_3() {
        // Implementation reads private fields data1/data2; checkRead only
        // dominates data2's read.
        let opts = AnalysisOptions {
            events: EventDef::Broad,
            ..Default::default()
        };
        let lib = analyze_opts(
            r#"
class t.V {
  field private java.lang.Object data1;
  field private java.lang.Object data2;
  method public java.lang.Object a(bool condition) {
    local java.lang.SecurityManager sm;
    local java.lang.Object o;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if condition goto fast;
    virtualinvoke sm.checkRead("x");
    o = this.data2;
    return o;
  fast:
    o = this.data1;
    return o;
  }
}
"#,
            opts,
        );
        let e = &lib.entries["t.V.a(bool)"];
        assert_eq!(
            e.events[&EventKey::DataRead("data1".into())].must,
            CheckSet::empty()
        );
        assert_eq!(
            e.events[&EventKey::DataRead("data2".into())].must,
            CheckSet::of(Check::Read)
        );
    }

    #[test]
    fn narrow_mode_has_no_broad_events() {
        let lib = analyze(
            r#"
class t.W {
  field private int secret;
  method public int m() {
    local int x;
    x = this.secret;
    return x;
  }
}
"#,
        );
        let e = &lib.entries["t.W.m()"];
        assert!(e.events.keys().all(|k| !k.is_broad()));
    }

    #[test]
    fn intraprocedural_mode_misses_callee_checks() {
        let src = r#"
class t.X {
  method public void outer() {
    staticinvoke t.X.inner();
    staticinvoke t.X.op0();
    return;
  }
  method private static void inner() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkExit(1);
    return;
  }
  method private static native void op0();
}
"#;
        let inter = analyze_opts(src, AnalysisOptions::default());
        let intra = analyze_opts(
            src,
            AnalysisOptions {
                interprocedural: false,
                ..Default::default()
            },
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(
            may_of(&inter, "t.X.outer()", &ev),
            CheckSet::of(Check::Exit)
        );
        assert_eq!(may_of(&intra, "t.X.outer()", &ev), CheckSet::empty());
    }

    #[test]
    fn multiple_occurrences_combine() {
        // The same native called twice: must = intersection, may = union.
        let lib = analyze(
            r#"
class t.Y {
  method public void m(bool c) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if c goto second;
    virtualinvoke sm.checkRead("a");
    staticinvoke t.Y.op0();
    return;
  second:
    virtualinvoke sm.checkWrite("b");
    staticinvoke t.Y.op0();
    return;
  }
  method private static native void op0();
}
"#,
        );
        let ev = EventKey::Native("op0".into());
        assert_eq!(must_of(&lib, "t.Y.m(bool)", &ev), CheckSet::empty());
        assert_eq!(
            may_of(&lib, "t.Y.m(bool)", &ev),
            [Check::Read, Check::Write].into_iter().collect()
        );
    }

    #[test]
    fn recorder_collects_deterministic_pass_metrics() {
        let src = r#"
class t.O {
  method public void a() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkExit(0);
    staticinvoke t.O.shared(1);
    return;
  }
  method public void b() {
    staticinvoke t.O.shared(1);
    return;
  }
  method private static void shared(int x) {
    staticinvoke t.O.op0();
    return;
  }
  method private static native void op0();
}
"#;
        let mut program = spo_jir::parse_program(PRELUDE).unwrap();
        spo_jir::parse_into(src, &mut program).unwrap();
        let run = || {
            let rec = Recorder::new();
            let analyzer =
                Analyzer::new(&program, AnalysisOptions::default()).with_recorder(rec.clone());
            let lib = analyzer.analyze_library("test");
            (lib, rec.snapshot())
        };
        let (lib, snap) = run();
        // Both passes commit each distinct frame once: committed frames are
        // bounded by computed frames (bodyless native roots never commit).
        assert!(snap.counters["ispa.frames"] > 0);
        assert!(snap.counters["ispa.frames"] <= lib.stats.frames_analyzed as u64);
        assert!(snap.counters["dataflow.transfers"] > 0);
        assert!(snap.counters["ispa.cfg.edges"] > 0);
        assert!(snap.counters["ispa.calls.resolved"] > 0);
        assert_eq!(
            snap.histograms["fixpoint.transfers"].count,
            snap.counters["ispa.frames"]
        );
        // Work counters mirror AnalysisStats.
        assert_eq!(snap.work["ispa.memo.hits"], lib.stats.memo_hits as u64);
        assert_eq!(
            snap.work["ispa.frames_analyzed"],
            lib.stats.frames_analyzed as u64
        );
        // Pass durations were recorded.
        assert_eq!(snap.durations["ispa.pass.may"].count, 1);
        assert_eq!(snap.durations["ispa.pass.must"].count, 1);
        // Deterministic sections are stable across reruns.
        let (_, snap2) = run();
        assert_eq!(snap.deterministic_json(), snap2.deterministic_json());
        // A recorder-less run produces identical analysis results.
        let plain = Analyzer::new(&program, AnalysisOptions::default()).analyze_library("test");
        for (sig, entry) in &plain.entries {
            assert_eq!(&lib.entries[sig].events, &entry.events, "{sig}");
        }
    }

    #[test]
    fn api_return_policy_joins_all_returns() {
        let lib = analyze(
            r#"
class t.Z {
  method public void m(bool c) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("a");
    if c goto out;
    virtualinvoke sm.checkWrite("b");
    return;
  out:
    return;
  }
}
"#,
        );
        let e = &lib.entries["t.Z.m(bool)"].events[&EventKey::ApiReturn];
        assert_eq!(e.must, CheckSet::of(Check::Read));
        assert_eq!(e.may, [Check::Read, Check::Write].into_iter().collect());
    }
}
