//! Exception-behaviour differencing — the paper's proposed generalization
//! (§8): "Similar analysis could detect differences in exceptions that may
//! get thrown by each implementation."
//!
//! For every API entry point, [`ThrowsAnalyzer`] computes the set of
//! exception classes that may propagate out (JIR has no catch edges, so
//! every reachable `throw` escapes), interprocedurally over uniquely
//! resolved calls. [`diff_throws`] then compares the sets across
//! implementations: Figure 8's `String.getBytes` difference — JDK calls
//! `System.exit` where Harmony throws `UnsupportedEncodingException` —
//! shows up here as an exception-set difference even before its
//! security-policy shadow (`checkExit`) is considered.

use spo_jir::{ClassId, Expr, MethodId, Operand, Program, Stmt, Symbol, Type};
use spo_resolve::{entry_points, CallGraph, Hierarchy};
use std::collections::{BTreeMap, BTreeSet};

/// The exception classes (by name) an entry point may propagate.
pub type ThrowSet = BTreeSet<String>;

/// Per-entry-point may-throw sets for one library implementation.
#[derive(Clone, Debug, Default)]
pub struct LibraryThrows {
    /// Library name.
    pub name: String,
    /// May-throw set keyed by entry-point signature.
    pub entries: BTreeMap<String, ThrowSet>,
}

/// Computes may-throw sets for every API entry point.
///
/// The analysis is a flow-insensitive fixpoint over the call graph: a
/// method's set is the union of the classes of its own `throw` operands
/// (the allocated class when the thrown local was assigned a `new`, its
/// declared type otherwise) and the sets of its uniquely resolved callees.
///
/// # Examples
///
/// ```
/// let program = spo_jir::parse_program(r#"
/// class java.lang.Boom { }
/// class api.C {
///   method public void m() {
///     local java.lang.Boom b;
///     b = new java.lang.Boom;
///     throw b;
///   }
/// }
/// "#).unwrap();
/// let throws = spo_core::ThrowsAnalyzer::new(&program).analyze_library("lib");
/// assert!(throws.entries["api.C.m()"].contains("java.lang.Boom"));
/// ```
pub struct ThrowsAnalyzer<'p> {
    program: &'p Program,
    hierarchy: Hierarchy<'p>,
}

impl<'p> ThrowsAnalyzer<'p> {
    /// Creates the analyzer (builds the hierarchy).
    pub fn new(program: &'p Program) -> Self {
        ThrowsAnalyzer {
            program,
            hierarchy: Hierarchy::new(program),
        }
    }

    /// Computes may-throw sets for all entry points.
    pub fn analyze_library(&self, name: &str) -> LibraryThrows {
        let roots = entry_points(self.program);
        let cg = CallGraph::build(&self.hierarchy, roots.clone());

        // Local throw classes per reachable method.
        let mut local: BTreeMap<MethodId, BTreeSet<Symbol>> = BTreeMap::new();
        for m in cg.reachable() {
            local.insert(m, self.local_throws(m));
        }

        // Fixpoint: propagate callee sets upward.
        let mut sets: BTreeMap<MethodId, BTreeSet<Symbol>> = local.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for m in cg.reachable().collect::<Vec<_>>() {
                let mut merged = sets.get(&m).cloned().unwrap_or_default();
                let before = merged.len();
                for &callee in cg.callees(m) {
                    if let Some(cs) = sets.get(&callee) {
                        merged.extend(cs.iter().copied());
                    }
                }
                if merged.len() != before {
                    sets.insert(m, merged);
                    changed = true;
                }
            }
        }

        let mut entries = BTreeMap::new();
        for root in roots {
            let set: ThrowSet = sets
                .get(&root)
                .map(|s| {
                    s.iter()
                        .map(|&sym| self.program.str(sym).to_owned())
                        .collect()
                })
                .unwrap_or_default();
            entries
                .entry(self.program.method_signature(root))
                .or_insert(set);
        }
        LibraryThrows {
            name: name.to_owned(),
            entries,
        }
    }

    /// Exception classes thrown directly by `m`'s own `throw` statements.
    fn local_throws(&self, m: MethodId) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        let Some(body) = self.program.method(m).body.as_ref() else {
            return out;
        };
        // Last allocation assigned to each local, for precise throw types.
        let mut alloc: BTreeMap<u32, Symbol> = BTreeMap::new();
        for stmt in &body.stmts {
            match stmt {
                Stmt::Assign {
                    dst,
                    value: Expr::New(class),
                } => {
                    alloc.insert(dst.0, *class);
                }
                Stmt::Assign { dst, .. } | Stmt::Invoke { dst: Some(dst), .. } => {
                    alloc.remove(&dst.0);
                }
                Stmt::Throw { value } => {
                    let class =
                        match value {
                            Operand::Local(l) => alloc.get(&l.0).copied().or_else(|| {
                                match &body.locals[l.index()].ty {
                                    Type::Ref(s) => Some(*s),
                                    _ => None,
                                }
                            }),
                            Operand::Const(_) => None,
                        };
                    if let Some(c) = class {
                        out.insert(c);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The class id of an exception name, if declared (unused classes from
    /// external code still participate by name).
    pub fn class_of(&self, name: &str) -> Option<ClassId> {
        self.program.class_by_str(name)
    }
}

/// One exception-behaviour difference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ThrowsDifference {
    /// Entry-point signature.
    pub signature: String,
    /// Exceptions only the left implementation may throw.
    pub only_left: ThrowSet,
    /// Exceptions only the right implementation may throw.
    pub only_right: ThrowSet,
}

/// Differences the may-throw sets of entry points shared by two
/// implementations.
pub fn diff_throws(left: &LibraryThrows, right: &LibraryThrows) -> Vec<ThrowsDifference> {
    let mut out = Vec::new();
    for (sig, ls) in &left.entries {
        let Some(rs) = right.entries.get(sig) else {
            continue;
        };
        if ls == rs {
            continue;
        }
        out.push(ThrowsDifference {
            signature: sig.clone(),
            only_left: ls.difference(rs).cloned().collect(),
            only_right: rs.difference(ls).cloned().collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    fn throws_of(src: &str, sig: &str) -> ThrowSet {
        let p = parse_program(src).unwrap();
        let t = ThrowsAnalyzer::new(&p).analyze_library("t");
        t.entries.get(sig).cloned().unwrap_or_default()
    }

    #[test]
    fn direct_throw_of_allocation() {
        let set = throws_of(
            r#"
class err.Oops { }
class C {
  method public void m() {
    local err.Oops e;
    e = new err.Oops;
    throw e;
  }
}
"#,
            "C.m()",
        );
        assert_eq!(set, ["err.Oops".to_owned()].into());
    }

    #[test]
    fn throw_of_parameter_uses_declared_type() {
        let set = throws_of(
            r#"
class err.Base { }
class C {
  method public void m(err.Base e) {
    throw e;
  }
}
"#,
            "C.m(err.Base)",
        );
        assert_eq!(set, ["err.Base".to_owned()].into());
    }

    #[test]
    fn interprocedural_propagation() {
        let set = throws_of(
            r#"
class err.Deep { }
class C {
  method public void outer() {
    staticinvoke C.inner();
    return;
  }
  method private static void inner() {
    local err.Deep e;
    e = new err.Deep;
    throw e;
  }
}
"#,
            "C.outer()",
        );
        assert_eq!(set, ["err.Deep".to_owned()].into());
    }

    #[test]
    fn recursion_terminates() {
        let set = throws_of(
            r#"
class err.E { }
class C {
  method public void a(bool c) {
    local err.E e;
    if c goto stop;
    staticinvoke C.b();
  stop:
    e = new err.E;
    throw e;
  }
  method private static void b() {
    staticinvoke C.c2();
    return;
  }
  method private static void c2() {
    staticinvoke C.b();
    return;
  }
}
"#,
            "C.a(bool)",
        );
        assert_eq!(set, ["err.E".to_owned()].into());
    }

    #[test]
    fn reassignment_clears_allocation_tracking() {
        // After `e` is overwritten by a call result, its throw type falls
        // back to the declared type.
        let set = throws_of(
            r#"
class err.Precise { }
class err.General { }
class C {
  method public void m() {
    local err.General e;
    e = new err.Precise;
    e = staticinvoke C.make();
    throw e;
  }
  method private static err.General make() {
    local err.General g;
    g = new err.General;
    return g;
  }
}
"#,
            "C.m()",
        );
        assert_eq!(set, ["err.General".to_owned()].into());
    }

    #[test]
    fn diff_finds_figure_8_style_difference() {
        let jdk = parse_program(
            r#"
class api.S {
  method public void getBytes() {
    return;
  }
}
"#,
        )
        .unwrap();
        let harmony = parse_program(
            r#"
class err.UnsupportedEncodingException { }
class api.S {
  method public void getBytes() {
    local err.UnsupportedEncodingException e;
    e = new err.UnsupportedEncodingException;
    throw e;
  }
}
"#,
        )
        .unwrap();
        let lt = ThrowsAnalyzer::new(&jdk).analyze_library("jdk");
        let rt = ThrowsAnalyzer::new(&harmony).analyze_library("harmony");
        let diffs = diff_throws(&lt, &rt);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].only_left.is_empty());
        assert_eq!(
            diffs[0].only_right,
            ["err.UnsupportedEncodingException".to_owned()].into()
        );
    }

    #[test]
    fn identical_throws_no_difference() {
        let src = r#"
class err.E { }
class api.S {
  method public void m() {
    local err.E e;
    e = new err.E;
    throw e;
  }
}
"#;
        let a = parse_program(src).unwrap();
        let b = parse_program(src).unwrap();
        let ta = ThrowsAnalyzer::new(&a).analyze_library("a");
        let tb = ThrowsAnalyzer::new(&b).analyze_library("b");
        assert!(diff_throws(&ta, &tb).is_empty());
    }
}
