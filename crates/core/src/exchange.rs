//! The policy exchange format (§8).
//!
//! "Even if all implementations of the same API are proprietary,
//! developers may be willing to share security policies with each other
//! without sharing the actual code." This module serializes a
//! [`LibraryPolicies`] to a line-oriented text format and parses it back
//! with full fidelity — enough to run [`diff_libraries`]
//! (crate::diff_libraries) against a policy file whose source code you
//! never see.
//!
//! Format (one declaration per line, `#` comments):
//!
//! ```text
//! library jdk
//! entry java.net.Socket.connect(java.net.SocketAddress,int)
//! event return must checkConnect may {checkConnect}|{}
//! origin return java.net.Socket.connect
//! checkorigin checkConnect java.net.Socket.connect
//! ```

use crate::checks::{Check, CheckSet};
use crate::events::EventKey;
use crate::policy::{EntryPolicy, EventPolicy, LibraryPolicies};
use spo_dataflow::{BitSet32, Dnf};
use std::fmt;

/// An error encountered while parsing a policy file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExchangeError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExchangeError {}

fn event_token(key: &EventKey) -> String {
    match key {
        EventKey::ApiReturn => "return".to_owned(),
        EventKey::Native(n) => format!("native:{n}"),
        EventKey::DataRead(n) => format!("read:{n}"),
        EventKey::DataWrite(n) => format!("write:{n}"),
    }
}

fn parse_event_token(tok: &str) -> Option<EventKey> {
    if tok == "return" {
        return Some(EventKey::ApiReturn);
    }
    let (kind, name) = tok.split_once(':')?;
    match kind {
        "native" => Some(EventKey::Native(name.to_owned())),
        "read" => Some(EventKey::DataRead(name.to_owned())),
        "write" => Some(EventKey::DataWrite(name.to_owned())),
        _ => None,
    }
}

fn checkset_token(set: CheckSet) -> String {
    if set.is_empty() {
        "-".to_owned()
    } else {
        set.iter()
            .map(|c| c.method_name().to_owned())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_checkset(tok: &str) -> Option<CheckSet> {
    if tok == "-" {
        return Some(CheckSet::empty());
    }
    let mut set = CheckSet::empty();
    for name in tok.split(',') {
        set.insert(Check::from_name(name)?);
    }
    Some(set)
}

fn dnf_token(dnf: &Dnf) -> String {
    if dnf.is_bottom() {
        return "!".to_owned();
    }
    dnf.disjuncts()
        .iter()
        .map(|&d| format!("{{{}}}", checkset_token(CheckSet::from_bits(d))))
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_dnf(tok: &str) -> Option<Dnf> {
    if tok == "!" {
        return Some(Dnf::bottom());
    }
    let mut disjuncts: Vec<BitSet32> = Vec::new();
    for part in tok.split('|') {
        let inner = part.strip_prefix('{')?.strip_suffix('}')?;
        let set = if inner.is_empty() {
            CheckSet::empty()
        } else {
            parse_checkset(inner)?
        };
        disjuncts.push(set.bits());
    }
    Some(disjuncts.into_iter().collect())
}

/// Serializes a library's policies to the exchange format.
pub fn export_policies(lib: &LibraryPolicies) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "# security-policy-oracle exchange format v1").unwrap();
    writeln!(out, "library {}", lib.name).unwrap();
    for (sig, entry) in &lib.entries {
        writeln!(out, "entry {sig}").unwrap();
        for (key, policy) in &entry.events {
            writeln!(
                out,
                "event {} must {} may {}",
                event_token(key),
                checkset_token(policy.must),
                dnf_token(&policy.may_paths),
            )
            .unwrap();
        }
        for (key, origins) in &entry.event_origins {
            for origin in origins {
                writeln!(out, "origin {} {origin}", event_token(key)).unwrap();
            }
        }
        for (check_idx, origins) in &entry.check_origins {
            let Some(check) = Check::from_index(*check_idx) else {
                continue;
            };
            for origin in origins {
                writeln!(out, "checkorigin {} {origin}", check.method_name()).unwrap();
            }
        }
    }
    out
}

/// Parses a policy file produced by [`export_policies`].
///
/// # Errors
///
/// Returns [`ExchangeError`] with the offending line on malformed input,
/// unknown check names, or declarations outside their context (e.g.
/// `event` before any `entry`).
pub fn import_policies(text: &str) -> Result<LibraryPolicies, ExchangeError> {
    let mut lib = LibraryPolicies::default();
    let mut current: Option<String> = None;
    let err = |line: usize, message: &str| ExchangeError {
        line,
        message: message.to_owned(),
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line
            .split_once(' ')
            .ok_or_else(|| err(lineno, "missing argument"))?;
        match keyword {
            "library" => lib.name = rest.to_owned(),
            "entry" => {
                let sig = rest.to_owned();
                lib.entries
                    .entry(sig.clone())
                    .or_insert_with(|| EntryPolicy::new(sig.clone()));
                current = Some(sig);
            }
            "event" => {
                let sig = current
                    .as_ref()
                    .ok_or_else(|| err(lineno, "`event` before `entry`"))?;
                let mut parts = rest.split_whitespace();
                let ev = parts
                    .next()
                    .and_then(parse_event_token)
                    .ok_or_else(|| err(lineno, "bad event token"))?;
                if parts.next() != Some("must") {
                    return Err(err(lineno, "expected `must`"));
                }
                let must = parts
                    .next()
                    .and_then(parse_checkset)
                    .ok_or_else(|| err(lineno, "bad must set"))?;
                if parts.next() != Some("may") {
                    return Err(err(lineno, "expected `may`"));
                }
                let may_paths = parts
                    .next()
                    .and_then(parse_dnf)
                    .ok_or_else(|| err(lineno, "bad may disjunction"))?;
                let may = CheckSet::from_bits(may_paths.flat_union());
                lib.entries
                    .get_mut(sig)
                    .expect("entry inserted above")
                    .events
                    .insert(
                        ev,
                        EventPolicy {
                            must,
                            may,
                            may_paths,
                        },
                    );
            }
            "origin" => {
                let sig = current
                    .as_ref()
                    .ok_or_else(|| err(lineno, "`origin` before `entry`"))?;
                let (ev_tok, origin) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(lineno, "missing origin method"))?;
                let ev = parse_event_token(ev_tok).ok_or_else(|| err(lineno, "bad event token"))?;
                lib.entries
                    .get_mut(sig)
                    .expect("entry inserted above")
                    .event_origins
                    .entry(ev)
                    .or_default()
                    .insert(origin.to_owned());
            }
            "checkorigin" => {
                let sig = current
                    .as_ref()
                    .ok_or_else(|| err(lineno, "`checkorigin` before `entry`"))?;
                let (check_tok, origin) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(lineno, "missing origin method"))?;
                let check =
                    Check::from_name(check_tok).ok_or_else(|| err(lineno, "unknown check name"))?;
                lib.entries
                    .get_mut(sig)
                    .expect("entry inserted above")
                    .check_origins
                    .entry(check.index())
                    .or_default()
                    .insert(origin.to_owned());
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LibraryPolicies {
        let mut lib = LibraryPolicies {
            name: "jdk".into(),
            ..Default::default()
        };
        let mut entry = EntryPolicy::new("api.C.m(int)".into());
        let mc: CheckSet = [Check::Multicast].into_iter().collect();
        let ca: CheckSet = [Check::Connect, Check::Accept].into_iter().collect();
        let may_paths: Dnf = [mc.bits(), ca.bits()].into_iter().collect();
        entry.events.insert(
            EventKey::Native("connect0".into()),
            EventPolicy {
                must: CheckSet::empty(),
                may: CheckSet::from_bits(may_paths.flat_union()),
                may_paths,
            },
        );
        entry.events.insert(
            EventKey::ApiReturn,
            EventPolicy {
                must: CheckSet::of(Check::Connect),
                may: CheckSet::of(Check::Connect),
                may_paths: Dnf::of(CheckSet::of(Check::Connect).bits()),
            },
        );
        entry
            .event_origins
            .entry(EventKey::ApiReturn)
            .or_default()
            .insert("api.C.m".into());
        entry
            .check_origins
            .entry(Check::Connect.index())
            .or_default()
            .insert("api.C.helper".into());
        lib.entries.insert(entry.signature.clone(), entry);
        lib
    }

    #[test]
    fn roundtrip_preserves_everything_but_stats() {
        let lib = sample();
        let text = export_policies(&lib);
        let back = import_policies(&text).unwrap();
        assert_eq!(back.name, lib.name);
        assert_eq!(back.entries, lib.entries);
    }

    #[test]
    fn diffing_imported_policies_matches_direct_diff() {
        let lib = sample();
        let mut other = sample();
        other.name = "harmony".into();
        // Harmony misses checkAccept on the connect path.
        let e = other.entries.get_mut("api.C.m(int)").unwrap();
        let ev = e
            .events
            .get_mut(&EventKey::Native("connect0".into()))
            .unwrap();
        let mc: CheckSet = [Check::Multicast].into_iter().collect();
        let c: CheckSet = [Check::Connect].into_iter().collect();
        ev.may_paths = [mc.bits(), c.bits()].into_iter().collect();
        ev.may = CheckSet::from_bits(ev.may_paths.flat_union());

        let direct = crate::diff_libraries(&lib, &other);
        let imported = import_policies(&export_policies(&other)).unwrap();
        let via_exchange = crate::diff_libraries(&lib, &imported);
        assert_eq!(direct.differences, via_exchange.differences);
        assert_eq!(direct.matching_apis, via_exchange.matching_apis);
    }

    #[test]
    fn rejects_garbage() {
        assert!(import_policies("frobnicate x").is_err());
        assert!(import_policies("event return must - may {}").is_err()); // before entry
        let e = import_policies("entry a.B.c()\nevent return must checkBogus may {}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let lib = import_policies("# header\n\nlibrary x\n").unwrap();
        assert_eq!(lib.name, "x");
        assert!(lib.entries.is_empty());
    }

    #[test]
    fn empty_dnf_and_sets_roundtrip() {
        let mut lib = LibraryPolicies {
            name: "n".into(),
            ..Default::default()
        };
        let mut entry = EntryPolicy::new("a.B.c()".into());
        entry
            .events
            .insert(EventKey::ApiReturn, EventPolicy::default());
        lib.entries.insert(entry.signature.clone(), entry);
        let back = import_policies(&export_policies(&lib)).unwrap();
        assert_eq!(back.entries, lib.entries);
    }

    #[test]
    fn broad_event_tokens_roundtrip() {
        let mut lib = LibraryPolicies {
            name: "n".into(),
            ..Default::default()
        };
        let mut entry = EntryPolicy::new("a.B.c()".into());
        entry
            .events
            .insert(EventKey::DataRead("data1".into()), EventPolicy::default());
        entry
            .events
            .insert(EventKey::DataWrite("data2".into()), EventPolicy::default());
        lib.entries.insert(entry.signature.clone(), entry);
        let back = import_policies(&export_policies(&lib)).unwrap();
        assert_eq!(back.entries, lib.entries);
    }
}
