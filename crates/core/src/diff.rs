//! Security-policy differencing across implementations (§5).
//!
//! Given two implementations' policies for the same API entry point:
//!
//! 1. neither (or both identically) checks anything → no error;
//! 2. one implementation has no security policy while the other has one →
//!    error (most of the paper's vulnerabilities);
//! 3. otherwise, match events present in both (events unique to one side
//!    are ignored) and report (a) differing check sets, (b) the same checks
//!    with may status on one side and must on the other.

use crate::checks::CheckSet;
use crate::events::EventKey;
use crate::policy::{EntryPolicy, EventPolicy, LibraryPolicies};
use spo_dataflow::Dnf;
use std::collections::BTreeSet;
use std::fmt;

/// How aggressively matched events are compared.
///
/// The paper compares the *flat* may sets and the must sets; it explicitly
/// does not compare "the conditions under which the checks are executed"
/// (§6.4). [`DiffMode::Disjunctive`] is the stricter ablation: it also
/// compares the per-path check sets of Figure 2, flagging implementations
/// that perform the same checks under differently shaped control flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DiffMode {
    /// The paper's comparison: flat may sets and must sets (§5).
    #[default]
    Paper,
    /// Additionally compare the disjunctive path structure.
    Disjunctive,
}

/// Which side of a pairwise comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The first library passed to the comparison.
    Left,
    /// The second library.
    Right,
}

/// What kind of inconsistency was detected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DifferenceKind {
    /// Case 2: one side performs checks, the other performs none at all.
    MissingPolicy {
        /// The side that *does* perform checks.
        checked: Side,
    },
    /// Case 3(a): a matched event is guarded by different check sets.
    CheckSetMismatch {
        /// The event whose guards differ.
        event: EventKey,
    },
    /// Case 3(b): same checks, but at least one is may on one side and
    /// must on the other.
    MustMayMismatch {
        /// The event whose guards differ in status.
        event: EventKey,
        /// Checks whose must-status differs.
        checks: CheckSet,
    },
    /// [`DiffMode::Disjunctive`] only: identical flat may and must sets,
    /// but the per-path check-set structure differs.
    PathSetMismatch {
        /// The event whose path structure differs.
        event: EventKey,
    },
}

impl fmt::Display for DifferenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferenceKind::MissingPolicy { checked } => {
                write!(
                    f,
                    "one implementation performs no checks (checked side: {checked:?})"
                )
            }
            DifferenceKind::CheckSetMismatch { event } => {
                write!(f, "different check sets before {event}")
            }
            DifferenceKind::MustMayMismatch { event, checks } => {
                write!(f, "may/must status of {checks} differs before {event}")
            }
            DifferenceKind::PathSetMismatch { event } => {
                write!(f, "per-path check structure differs before {event}")
            }
        }
    }
}

/// One side's policy evidence attached to a difference.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SideEvidence {
    /// Flat may checks for the differing event (or the whole entry for
    /// case 2).
    pub may: CheckSet,
    /// Must checks.
    pub must: CheckSet,
    /// Disjunctive may view.
    pub may_paths: Dnf,
}

impl SideEvidence {
    fn of_event(p: &EventPolicy) -> Self {
        SideEvidence {
            may: p.may,
            must: p.must,
            may_paths: p.may_paths.clone(),
        }
    }
}

/// A detected policy inconsistency for one API entry point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyDifference {
    /// The entry point's signature.
    pub signature: String,
    /// What differs.
    pub kind: DifferenceKind,
    /// Left side's evidence.
    pub left: SideEvidence,
    /// Right side's evidence.
    pub right: SideEvidence,
    /// Methods implicated in the difference: where the delta checks are
    /// performed (on the side that has them) and where the event lives.
    /// This is the "method containing the error" used to merge reports
    /// stemming from the same root cause.
    pub origins: BTreeSet<String>,
    /// The checks that differ between the sides.
    pub delta: CheckSet,
}

impl PolicyDifference {
    /// A stable key identifying the root cause: the differing checks plus
    /// the implicated methods. Entry points whose differences share this
    /// key are manifestations of one error.
    pub fn root_key(&self) -> String {
        let origins: Vec<&str> = self.origins.iter().map(String::as_str).collect();
        format!("{}|{}", self.delta, origins.join(","))
    }
}

/// Result of diffing two libraries.
#[derive(Clone, Debug, Default)]
pub struct DiffResult {
    /// Name of the left library.
    pub left_name: String,
    /// Name of the right library.
    pub right_name: String,
    /// Number of entry points present (by signature) in both libraries —
    /// Table 3's "Matching APIs".
    pub matching_apis: usize,
    /// All detected differences, one or more per entry point.
    pub differences: Vec<PolicyDifference>,
}

impl DiffResult {
    /// Entry points with at least one difference.
    pub fn differing_entry_count(&self) -> usize {
        self.differences
            .iter()
            .map(|d| d.signature.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Collects the methods implicated in a set of delta checks: where each
/// delta check is performed, per side; falls back to the event origins when
/// the delta is empty.
fn origins_for(
    left: &EntryPolicy,
    right: &EntryPolicy,
    event: Option<&EventKey>,
    delta: CheckSet,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for check in delta.iter() {
        for side in [left, right] {
            if let Some(o) = side.check_origins.get(&check.index()) {
                out.extend(o.iter().cloned());
            }
        }
    }
    if out.is_empty() {
        if let Some(ev) = event {
            for side in [left, right] {
                if let Some(o) = side.event_origins.get(ev) {
                    out.extend(o.iter().cloned());
                }
            }
        }
    }
    out
}

/// Diffs the policies of one entry point present in both implementations
/// using the paper's comparison ([`DiffMode::Paper`]).
pub fn diff_entry(left: &EntryPolicy, right: &EntryPolicy) -> Vec<PolicyDifference> {
    diff_entry_with(left, right, DiffMode::Paper)
}

/// Diffs one entry point under the chosen [`DiffMode`].
pub fn diff_entry_with(
    left: &EntryPolicy,
    right: &EntryPolicy,
    mode: DiffMode,
) -> Vec<PolicyDifference> {
    let (l_empty, r_empty) = (left.has_no_checks(), right.has_no_checks());
    // Case 1: neither side checks anything.
    if l_empty && r_empty {
        return Vec::new();
    }
    // Case 2: exactly one side has a policy.
    if l_empty != r_empty {
        let checked = if l_empty { Side::Right } else { Side::Left };
        let delta = left.all_checks().union(right.all_checks());
        let origins = origins_for(left, right, None, delta);
        let evidence = |e: &EntryPolicy| {
            let mut ev = SideEvidence {
                may: e.all_checks(),
                ..Default::default()
            };
            for p in e.events.values() {
                ev.must = ev.must.union(p.must);
            }
            ev
        };
        return vec![PolicyDifference {
            signature: left.signature.clone(),
            kind: DifferenceKind::MissingPolicy { checked },
            left: evidence(left),
            right: evidence(right),
            origins,
            delta,
        }];
    }
    // Case 3: match events; ignore events unique to one implementation.
    let mut out = Vec::new();
    for (key, lp) in &left.events {
        let Some(rp) = right.events.get(key) else {
            continue;
        };
        if lp.may != rp.may {
            let delta = lp.may.difference(rp.may).union(rp.may.difference(lp.may));
            out.push(PolicyDifference {
                signature: left.signature.clone(),
                kind: DifferenceKind::CheckSetMismatch { event: key.clone() },
                left: SideEvidence::of_event(lp),
                right: SideEvidence::of_event(rp),
                origins: origins_for(left, right, Some(key), delta),
                delta,
            });
        } else if lp.must != rp.must {
            let delta = lp
                .must
                .difference(rp.must)
                .union(rp.must.difference(lp.must));
            out.push(PolicyDifference {
                signature: left.signature.clone(),
                kind: DifferenceKind::MustMayMismatch {
                    event: key.clone(),
                    checks: delta,
                },
                left: SideEvidence::of_event(lp),
                right: SideEvidence::of_event(rp),
                origins: origins_for(left, right, Some(key), delta),
                delta,
            });
        } else if mode == DiffMode::Disjunctive && lp.may_paths != rp.may_paths {
            // Same checks, same statuses — but reached along differently
            // shaped paths. Delta: checks on paths unique to either side.
            let unique_l: CheckSet = lp
                .may_paths
                .disjuncts()
                .iter()
                .filter(|d| !rp.may_paths.disjuncts().contains(d))
                .fold(CheckSet::empty(), |acc, &d| {
                    acc.union(CheckSet::from_bits(d))
                });
            let unique_r: CheckSet = rp
                .may_paths
                .disjuncts()
                .iter()
                .filter(|d| !lp.may_paths.disjuncts().contains(d))
                .fold(CheckSet::empty(), |acc, &d| {
                    acc.union(CheckSet::from_bits(d))
                });
            let delta = unique_l.union(unique_r);
            out.push(PolicyDifference {
                signature: left.signature.clone(),
                kind: DifferenceKind::PathSetMismatch { event: key.clone() },
                left: SideEvidence::of_event(lp),
                right: SideEvidence::of_event(rp),
                origins: origins_for(left, right, Some(key), delta),
                delta,
            });
        }
    }
    out
}

/// Diffs all entry points shared by two library implementations (paper
/// mode).
pub fn diff_libraries(left: &LibraryPolicies, right: &LibraryPolicies) -> DiffResult {
    diff_libraries_with(left, right, DiffMode::Paper)
}

/// Diffs all shared entry points under the chosen [`DiffMode`].
pub fn diff_libraries_with(
    left: &LibraryPolicies,
    right: &LibraryPolicies,
    mode: DiffMode,
) -> DiffResult {
    let mut result = DiffResult {
        left_name: left.name.clone(),
        right_name: right.name.clone(),
        ..Default::default()
    };
    for (sig, le) in &left.entries {
        let Some(re) = right.entries.get(sig) else {
            continue;
        };
        result.matching_apis += 1;
        result.differences.extend(diff_entry_with(le, re, mode));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::Check;
    use crate::policy::Origins;

    fn entry(sig: &str, events: &[(EventKey, &[Check], &[Check])]) -> EntryPolicy {
        let mut e = EntryPolicy::new(sig.to_owned());
        for (key, must, may) in events {
            let must: CheckSet = must.iter().copied().collect();
            let may: CheckSet = may.iter().copied().collect();
            e.events.insert(
                key.clone(),
                EventPolicy {
                    must,
                    may,
                    may_paths: Dnf::of(may.bits()),
                },
            );
            let mut o = Origins::new();
            o.insert(format!("{sig}#impl"));
            e.event_origins.insert(key.clone(), o);
            for c in may.iter() {
                e.check_origins
                    .entry(c.index())
                    .or_default()
                    .insert(format!("{sig}#check_{c}"));
            }
        }
        e
    }

    fn native(n: &str) -> EventKey {
        EventKey::Native(n.into())
    }

    #[test]
    fn identical_policies_no_error() {
        let a = entry("C.m()", &[(native("x"), &[Check::Read], &[Check::Read])]);
        let b = entry("C.m()", &[(native("x"), &[Check::Read], &[Check::Read])]);
        assert!(diff_entry(&a, &b).is_empty());
    }

    #[test]
    fn both_empty_no_error() {
        let a = entry("C.m()", &[(EventKey::ApiReturn, &[], &[])]);
        let b = entry("C.m()", &[(EventKey::ApiReturn, &[], &[])]);
        assert!(diff_entry(&a, &b).is_empty());
    }

    #[test]
    fn case_2_missing_policy() {
        // Figure 7: Classpath's Socket.connect omits all checks.
        let jdk = entry(
            "Socket.connect()",
            &[(EventKey::ApiReturn, &[Check::Connect], &[Check::Connect])],
        );
        let classpath = entry("Socket.connect()", &[(EventKey::ApiReturn, &[], &[])]);
        let diffs = diff_entry(&jdk, &classpath);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(
            diffs[0].kind,
            DifferenceKind::MissingPolicy {
                checked: Side::Left
            }
        ));
        assert_eq!(diffs[0].delta, CheckSet::of(Check::Connect));
        assert!(!diffs[0].origins.is_empty());
    }

    #[test]
    fn case_3a_check_set_mismatch() {
        // Figure 1: Harmony misses checkAccept on the connect path.
        let jdk = entry(
            "DatagramSocket.connect()",
            &[(
                native("connect0"),
                &[],
                &[Check::Multicast, Check::Connect, Check::Accept],
            )],
        );
        let harmony = entry(
            "DatagramSocket.connect()",
            &[(native("connect0"), &[], &[Check::Multicast, Check::Connect])],
        );
        let diffs = diff_entry(&jdk, &harmony);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(
            diffs[0].kind,
            DifferenceKind::CheckSetMismatch { .. }
        ));
        assert_eq!(diffs[0].delta, CheckSet::of(Check::Accept));
    }

    #[test]
    fn case_3b_must_may_mismatch() {
        let a = entry("C.m()", &[(native("x"), &[Check::Read], &[Check::Read])]);
        let b = entry("C.m()", &[(native("x"), &[], &[Check::Read])]);
        let diffs = diff_entry(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(
            &diffs[0].kind,
            DifferenceKind::MustMayMismatch { checks, .. } if *checks == CheckSet::of(Check::Read)
        ));
    }

    #[test]
    fn unmatched_events_ignored() {
        let a = entry(
            "C.m()",
            &[
                (native("x"), &[Check::Read], &[Check::Read]),
                (native("only_in_a"), &[], &[]),
            ],
        );
        let b = entry(
            "C.m()",
            &[
                (native("x"), &[Check::Read], &[Check::Read]),
                (native("only_in_b"), &[Check::Exit], &[Check::Exit]),
            ],
        );
        assert!(diff_entry(&a, &b).is_empty());
    }

    #[test]
    fn diff_libraries_counts_matching_apis() {
        let mut l = LibraryPolicies {
            name: "L".into(),
            ..Default::default()
        };
        let mut r = LibraryPolicies {
            name: "R".into(),
            ..Default::default()
        };
        l.entries.insert(
            "C.m()".into(),
            entry("C.m()", &[(native("x"), &[Check::Read], &[Check::Read])]),
        );
        l.entries
            .insert("C.only_left()".into(), entry("C.only_left()", &[]));
        r.entries
            .insert("C.m()".into(), entry("C.m()", &[(native("x"), &[], &[])]));
        r.entries
            .insert("C.only_right()".into(), entry("C.only_right()", &[]));
        let d = diff_libraries(&l, &r);
        assert_eq!(d.matching_apis, 1);
        assert_eq!(d.differences.len(), 1);
        assert_eq!(d.differing_entry_count(), 1);
        assert_eq!(d.left_name, "L");
    }

    #[test]
    fn root_key_stable_across_entry_points() {
        // Two entry points manifesting the same missing check in the same
        // culprit method share a root key.
        let mut a1 = entry("C.m1()", &[(native("x"), &[], &[Check::Read])]);
        let mut b1 = entry("C.m1()", &[(native("x"), &[], &[])]);
        let mut a2 = entry("C.m2()", &[(native("x"), &[], &[Check::Read])]);
        let mut b2 = entry("C.m2()", &[(native("x"), &[], &[])]);
        for e in [&mut a1, &mut a2] {
            e.check_origins.clear();
            e.check_origins
                .entry(Check::Read.index())
                .or_default()
                .insert("C.sharedHelper".into());
        }
        for e in [&mut b1, &mut b2] {
            e.check_origins.clear();
        }
        let d1 = &diff_entry(&a1, &b1)[0];
        let d2 = &diff_entry(&a2, &b2)[0];
        assert_eq!(d1.root_key(), d2.root_key());
    }
}

#[cfg(test)]
mod diffmode_tests {
    use super::*;
    use crate::checks::Check;
    use spo_dataflow::BitSet32;

    /// Two implementations with equal flat may and must sets but different
    /// path structures: {{A},{B},{A,B}} vs {{A},{B}} (flat {A,B}, must ∅
    /// on both sides).
    fn structurally_different() -> (EntryPolicy, EntryPolicy) {
        let a = CheckSet::of(Check::Read);
        let b = CheckSet::of(Check::Write);
        let mk = |paths: Vec<BitSet32>| {
            let mut e = EntryPolicy::new("C.m()".into());
            let may_paths: Dnf = paths.into_iter().collect();
            let may = CheckSet::from_bits(may_paths.flat_union());
            e.events.insert(
                EventKey::ApiReturn,
                EventPolicy {
                    must: CheckSet::from_bits(may_paths.must_view()),
                    may,
                    may_paths,
                },
            );
            e
        };
        (
            mk(vec![a.bits(), b.bits(), a.union(b).bits()]),
            mk(vec![a.bits(), b.bits()]),
        )
    }

    #[test]
    fn paper_mode_ignores_path_structure() {
        let (l, r) = structurally_different();
        assert!(diff_entry_with(&l, &r, DiffMode::Paper).is_empty());
    }

    #[test]
    fn disjunctive_mode_flags_path_structure() {
        let (l, r) = structurally_different();
        let diffs = diff_entry_with(&l, &r, DiffMode::Disjunctive);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(
            diffs[0].kind,
            DifferenceKind::PathSetMismatch { .. }
        ));
        assert_eq!(
            diffs[0].delta,
            [Check::Read, Check::Write]
                .into_iter()
                .collect::<CheckSet>()
        );
    }

    #[test]
    fn disjunctive_mode_quiet_on_identical_paths() {
        let (l, _) = structurally_different();
        assert!(diff_entry_with(&l, &l.clone(), DiffMode::Disjunctive).is_empty());
    }
}
