//! The prior-work baselines the paper measures itself against (§7).
//!
//! * [`verify_mediation`] — a CMV-style complete-mediation verifier
//!   (Sistla et al.; also the shape of Koved et al.'s access-rights
//!   analysis): takes a *manually specified* policy of (check, event)
//!   pairs and reports every event occurrence not dominated by its check
//!   (i.e. the check is not in the MUST set). As §2 shows, this approach
//!   (a) needs someone to write the policy, and (b) *must* flag both
//!   implementations of Figure 1 — including the correct JDK one — because
//!   the correct policy there is a MAY policy: no single check dominates
//!   the event.
//!
//! * [`mine_rules`]/[`mining_deviations`] — a "bugs as deviant behaviour"
//!   code-miner (Engler et al., AutoISES): learns frequently co-occurring
//!   check-before-event pairs from one implementation and flags
//!   deviations. It fundamentally assumes the same pattern occurs many
//!   times; rare or unique policies (Figure 1's `checkMulticast` +
//!   `checkAccept` combination) fall below any support threshold, and
//!   lowering the threshold manufactures false positives (§1).

use crate::checks::Check;
use crate::events::EventKey;
use crate::policy::LibraryPolicies;
use std::collections::BTreeMap;

/// A manually specified complete-mediation policy: each event must be
/// dominated by its check.
#[derive(Clone, Debug, Default)]
pub struct MediationPolicy {
    /// Required (check, event) pairs.
    pub pairs: Vec<(Check, EventKey)>,
}

impl MediationPolicy {
    /// Builds a policy from pairs.
    pub fn new(pairs: Vec<(Check, EventKey)>) -> Self {
        MediationPolicy { pairs }
    }
}

/// One complete-mediation violation: the event is reachable in the entry
/// point without the required check on some path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MediationViolation {
    /// Entry-point signature.
    pub signature: String,
    /// The event that was reached.
    pub event: EventKey,
    /// The check that does not dominate it.
    pub check: Check,
}

/// Verifies a manual policy against extracted policies, CMV-style: for
/// every entry point and required pair, the check must be in the event's
/// MUST set.
pub fn verify_mediation(
    lib: &LibraryPolicies,
    policy: &MediationPolicy,
) -> Vec<MediationViolation> {
    let mut out = Vec::new();
    for (sig, entry) in &lib.entries {
        for (check, event) in &policy.pairs {
            let Some(p) = entry.events.get(event) else {
                continue;
            };
            if !p.must.contains(*check) {
                out.push(MediationViolation {
                    signature: sig.clone(),
                    event: event.clone(),
                    check: *check,
                });
            }
        }
    }
    out
}

/// A rule learned by the miner: entries reaching `event` usually perform
/// `check` first.
#[derive(Clone, PartialEq, Debug)]
pub struct MinedRule {
    /// The protecting check.
    pub check: Check,
    /// The protected event.
    pub event: EventKey,
    /// Number of entries following the rule.
    pub support: usize,
    /// Fraction of entries reaching the event that follow the rule.
    pub confidence: f64,
}

/// Mines frequent check-before-event patterns from one implementation's
/// extracted policies. A rule `(check, event)` is emitted when at least
/// `min_support` entries reach `event` with `check` in its may set and
/// the fraction of such entries among all reaching `event` is at least
/// `min_confidence`.
pub fn mine_rules(
    lib: &LibraryPolicies,
    min_support: usize,
    min_confidence: f64,
) -> Vec<MinedRule> {
    // event -> (total entries reaching it, per-check counts)
    let mut totals: BTreeMap<&EventKey, usize> = BTreeMap::new();
    let mut with_check: BTreeMap<(&EventKey, Check), usize> = BTreeMap::new();
    for entry in lib.entries.values() {
        for (event, p) in &entry.events {
            *totals.entry(event).or_default() += 1;
            for check in p.may.iter() {
                *with_check.entry((event, check)).or_default() += 1;
            }
        }
    }
    let mut rules = Vec::new();
    for ((event, check), support) in with_check {
        let total = totals[event];
        let confidence = support as f64 / total as f64;
        if support >= min_support && confidence >= min_confidence && confidence < 1.0 + f64::EPSILON
        {
            rules.push(MinedRule {
                check,
                event: event.clone(),
                support,
                confidence,
            });
        }
    }
    rules
}

/// A deviation from a mined rule: an entry reaches the event without the
/// check. The miner cannot tell real bugs from false positives; the
/// oracle's catalog can.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MiningDeviation {
    /// Entry-point signature.
    pub signature: String,
    /// The rule's event.
    pub event: EventKey,
    /// The rule's check, missing here.
    pub check: Check,
}

/// Flags every entry that reaches a rule's event without the rule's check.
pub fn mining_deviations(lib: &LibraryPolicies, rules: &[MinedRule]) -> Vec<MiningDeviation> {
    let mut out = Vec::new();
    for (sig, entry) in &lib.entries {
        for rule in rules {
            let Some(p) = entry.events.get(&rule.event) else {
                continue;
            };
            if !p.may.contains(rule.check) {
                out.push(MiningDeviation {
                    signature: sig.clone(),
                    event: rule.event.clone(),
                    check: rule.check,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::CheckSet;
    use crate::policy::{EntryPolicy, EventPolicy};
    use spo_dataflow::Dnf;

    fn entry(sig: &str, event: EventKey, must: &[Check], may: &[Check]) -> EntryPolicy {
        let mut e = EntryPolicy::new(sig.to_owned());
        let must: CheckSet = must.iter().copied().collect();
        let may: CheckSet = may.iter().copied().collect();
        e.events.insert(
            event,
            EventPolicy {
                must,
                may,
                may_paths: Dnf::of(may.bits()),
            },
        );
        e
    }

    fn lib(entries: Vec<EntryPolicy>) -> LibraryPolicies {
        let mut l = LibraryPolicies {
            name: "t".into(),
            ..Default::default()
        };
        for e in entries {
            l.entries.insert(e.signature.clone(), e);
        }
        l
    }

    fn native(n: &str) -> EventKey {
        EventKey::Native(n.into())
    }

    #[test]
    fn mediation_flags_missing_domination() {
        let l = lib(vec![
            entry("A.ok()", native("w"), &[Check::Write], &[Check::Write]),
            entry("A.bad()", native("w"), &[], &[Check::Write]),
        ]);
        let policy = MediationPolicy::new(vec![(Check::Write, native("w"))]);
        let v = verify_mediation(&l, &policy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].signature, "A.bad()");
    }

    #[test]
    fn mediation_false_positives_on_correct_may_policies() {
        // The Figure 1 situation: the correct implementation has
        // {{checkMulticast},{checkConnect,checkAccept}} — no single check
        // dominates, so a must-based verifier flags correct code.
        let mut e = entry(
            "DS.connect()",
            native("connect0"),
            &[],
            &[Check::Multicast, Check::Connect, Check::Accept],
        );
        let p = e.events.get_mut(&native("connect0")).unwrap();
        p.may_paths = [
            CheckSet::of(Check::Multicast).bits(),
            [Check::Connect, Check::Accept]
                .into_iter()
                .collect::<CheckSet>()
                .bits(),
        ]
        .into_iter()
        .collect();
        let l = lib(vec![e]);
        let policy = MediationPolicy::new(vec![(Check::Connect, native("connect0"))]);
        let v = verify_mediation(&l, &policy);
        assert_eq!(
            v.len(),
            1,
            "the verifier must (wrongly) flag the correct code"
        );
    }

    #[test]
    fn miner_learns_frequent_rules_and_flags_deviations() {
        let mut entries: Vec<EntryPolicy> = (0..9)
            .map(|i| {
                entry(
                    &format!("A.m{i}()"),
                    native("w"),
                    &[Check::Write],
                    &[Check::Write],
                )
            })
            .collect();
        entries.push(entry("A.devious()", native("w"), &[], &[]));
        let l = lib(entries);
        let rules = mine_rules(&l, 3, 0.8);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].check, Check::Write);
        assert_eq!(rules[0].support, 9);
        let dev = mining_deviations(&l, &rules);
        assert_eq!(dev.len(), 1);
        assert_eq!(dev[0].signature, "A.devious()");
    }

    #[test]
    fn miner_misses_unique_patterns() {
        // Figure 1's pattern occurs once: below any useful support
        // threshold, no rule is learned, the bug is invisible.
        let l = lib(vec![entry(
            "DS.connect()",
            native("connect0"),
            &[],
            &[Check::Multicast, Check::Connect],
        )]);
        let rules = mine_rules(&l, 3, 0.8);
        assert!(rules.is_empty());
        assert!(mining_deviations(&l, &rules).is_empty());
    }

    #[test]
    fn miner_threshold_tradeoff() {
        // 3 entries check, 2 don't: at high confidence no rule (no
        // deviations, bug missed); at low confidence a rule flags the 2 —
        // whether they are bugs or false positives the miner cannot know.
        let mut entries: Vec<EntryPolicy> = (0..3)
            .map(|i| {
                entry(
                    &format!("A.c{i}()"),
                    native("w"),
                    &[Check::Write],
                    &[Check::Write],
                )
            })
            .collect();
        entries.push(entry("A.u0()", native("w"), &[], &[]));
        entries.push(entry("A.u1()", native("w"), &[], &[]));
        let l = lib(entries);
        assert!(mine_rules(&l, 3, 0.9).is_empty());
        let low = mine_rules(&l, 3, 0.5);
        assert_eq!(low.len(), 1);
        assert_eq!(mining_deviations(&l, &low).len(), 2);
    }

    #[test]
    fn universal_rules_are_not_deviation_sources() {
        // confidence == 1.0 means nothing deviates; the rule is emitted
        // but produces no reports.
        let entries: Vec<EntryPolicy> = (0..5)
            .map(|i| {
                entry(
                    &format!("A.m{i}()"),
                    native("w"),
                    &[Check::Write],
                    &[Check::Write],
                )
            })
            .collect();
        let l = lib(entries);
        let rules = mine_rules(&l, 3, 0.8);
        assert!(mining_deviations(&l, &rules).is_empty());
    }
}
