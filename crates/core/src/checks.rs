//! The 31 `SecurityManager` security checks.
//!
//! "The SecurityManager class in Java provides 31 methods that perform
//! security checks for user code and libraries. [...] We restrict our
//! analysis to these methods. [...] Our analysis keeps track of which of
//! the 31 security checks is invoked at any given point." (§3)
//!
//! Java 6's `SecurityManager` reaches 31 via overloads that differ only in
//! parameter *types* (e.g. `checkAccess(Thread)` vs
//! `checkAccess(ThreadGroup)`). JIR resolves overloads by name and arity,
//! so the runtime prelude gives each of the 31 checks a distinct method
//! name, suffixing type-overloads (`checkAccessGroup`,
//! `checkConnectContext`, `checkReadFd`, ...). The set size and semantics
//! are unchanged.

use spo_dataflow::BitSet32;
use std::fmt;

/// The class whose methods are security checks.
pub const SECURITY_MANAGER_CLASS: &str = "java.lang.SecurityManager";

macro_rules! checks {
    ($($variant:ident = $idx:expr => $name:literal / $argc:expr),+ $(,)?) => {
        /// One of the 31 `SecurityManager` check methods.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u8)]
        pub enum Check {
            $(
                #[doc = concat!("`SecurityManager.", $name, "`")]
                $variant = $idx,
            )+
        }

        /// All 31 checks, in index order.
        pub const ALL_CHECKS: [Check; 31] = [$(Check::$variant),+];

        impl Check {
            /// The check's method name in the runtime prelude.
            pub fn method_name(self) -> &'static str {
                match self {
                    $(Check::$variant => $name,)+
                }
            }

            /// The check's declared arity in the runtime prelude.
            pub fn argc(self) -> u32 {
                match self {
                    $(Check::$variant => $argc,)+
                }
            }

            /// Looks up a check by method name.
            pub fn from_name(name: &str) -> Option<Check> {
                match name {
                    $($name => Some(Check::$variant),)+
                    _ => None,
                }
            }

            /// The check's dense index (0..31).
            pub fn index(self) -> u8 {
                self as u8
            }

            /// The check with the given dense index.
            pub fn from_index(i: u8) -> Option<Check> {
                match i {
                    $($idx => Some(Check::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

checks! {
    Accept = 0 => "checkAccept" / 2,
    Access = 1 => "checkAccess" / 1,
    AccessGroup = 2 => "checkAccessGroup" / 1,
    AwtEventQueueAccess = 3 => "checkAwtEventQueueAccess" / 0,
    Connect = 4 => "checkConnect" / 2,
    ConnectContext = 5 => "checkConnectContext" / 3,
    CreateClassLoader = 6 => "checkCreateClassLoader" / 0,
    Delete = 7 => "checkDelete" / 1,
    Exec = 8 => "checkExec" / 1,
    Exit = 9 => "checkExit" / 1,
    Link = 10 => "checkLink" / 1,
    Listen = 11 => "checkListen" / 1,
    MemberAccess = 12 => "checkMemberAccess" / 2,
    Multicast = 13 => "checkMulticast" / 1,
    MulticastTtl = 14 => "checkMulticastTtl" / 2,
    PackageAccess = 15 => "checkPackageAccess" / 1,
    PackageDefinition = 16 => "checkPackageDefinition" / 1,
    Permission = 17 => "checkPermission" / 1,
    PermissionContext = 18 => "checkPermissionContext" / 2,
    PrintJobAccess = 19 => "checkPrintJobAccess" / 0,
    PropertiesAccess = 20 => "checkPropertiesAccess" / 0,
    PropertyAccess = 21 => "checkPropertyAccess" / 1,
    Read = 22 => "checkRead" / 1,
    ReadFd = 23 => "checkReadFd" / 1,
    ReadContext = 24 => "checkReadContext" / 2,
    SecurityAccess = 25 => "checkSecurityAccess" / 1,
    SetFactory = 26 => "checkSetFactory" / 0,
    SystemClipboardAccess = 27 => "checkSystemClipboardAccess" / 0,
    TopLevelWindow = 28 => "checkTopLevelWindow" / 1,
    Write = 29 => "checkWrite" / 1,
    WriteFd = 30 => "checkWriteFd" / 1,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.method_name())
    }
}

/// A set of [`Check`]s, backed by the 31-bit powerset lattice of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CheckSet(BitSet32);

impl CheckSet {
    /// The empty set.
    pub const fn empty() -> Self {
        CheckSet(BitSet32::empty())
    }

    /// Wraps a raw bitset.
    pub const fn from_bits(bits: BitSet32) -> Self {
        CheckSet(bits)
    }

    /// The underlying bitset.
    pub const fn bits(self) -> BitSet32 {
        self.0
    }

    /// Singleton set.
    pub fn of(check: Check) -> Self {
        CheckSet(BitSet32::singleton(check.index()))
    }

    /// Adds a check.
    pub fn insert(&mut self, check: Check) {
        self.0.insert(check.index());
    }

    /// Membership test.
    pub fn contains(self, check: Check) -> bool {
        self.0.contains(check.index())
    }

    /// Set union.
    pub fn union(self, other: Self) -> Self {
        CheckSet(self.0.union(other.0))
    }

    /// Set intersection.
    pub fn intersect(self, other: Self) -> Self {
        CheckSet(self.0.intersect(other.0))
    }

    /// Checks present in `self` but not `other`.
    pub fn difference(self, other: Self) -> Self {
        CheckSet(self.0.difference(other.0))
    }

    /// Subset test.
    pub fn is_subset(self, other: Self) -> bool {
        self.0.is_subset(other.0)
    }

    /// Emptiness test.
    pub fn is_empty(self) -> bool {
        self.0.is_empty()
    }

    /// Number of checks.
    pub fn len(self) -> u32 {
        self.0.len()
    }

    /// Iterates over member checks in index order.
    pub fn iter(self) -> impl Iterator<Item = Check> {
        self.0.iter().filter_map(Check::from_index)
    }
}

impl FromIterator<Check> for CheckSet {
    fn from_iter<T: IntoIterator<Item = Check>>(iter: T) -> Self {
        let mut s = CheckSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for CheckSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for CheckSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Recognizes a call site as one of the 31 security checks: the statically
/// named callee class must be `java.lang.SecurityManager` and the method
/// name one of the check names. Returns the check.
pub fn check_of_call(program: &spo_jir::Program, call: &spo_jir::Call) -> Option<Check> {
    if program.str(call.callee.class) != SECURITY_MANAGER_CLASS {
        return None;
    }
    Check::from_name(program.str(call.callee.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_31_checks() {
        assert_eq!(ALL_CHECKS.len(), 31);
        // Indices are dense and in order.
        for (i, c) in ALL_CHECKS.iter().enumerate() {
            assert_eq!(c.index() as usize, i);
            assert_eq!(Check::from_index(i as u8), Some(*c));
        }
        assert_eq!(Check::from_index(31), None);
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut names: Vec<&str> = ALL_CHECKS.iter().map(|c| c.method_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
        for c in ALL_CHECKS {
            assert_eq!(Check::from_name(c.method_name()), Some(c));
        }
        assert_eq!(Check::from_name("checkNothing"), None);
    }

    #[test]
    fn checkset_operations() {
        let a: CheckSet = [Check::Connect, Check::Accept].into_iter().collect();
        let b: CheckSet = [Check::Connect, Check::Multicast].into_iter().collect();
        assert_eq!(a.intersect(b), CheckSet::of(Check::Connect));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.difference(b), CheckSet::of(Check::Accept));
        assert!(CheckSet::of(Check::Connect).is_subset(a));
        assert!(a.contains(Check::Accept));
        assert!(!a.contains(Check::Exit));
    }

    #[test]
    fn checkset_displays_names() {
        let s: CheckSet = [Check::Accept, Check::Connect].into_iter().collect();
        assert_eq!(s.to_string(), "{checkAccept, checkConnect}");
        assert_eq!(CheckSet::empty().to_string(), "{}");
    }

    #[test]
    fn check_of_call_requires_security_manager_class() {
        let p = spo_jir::parse_program(
            r#"
class Other {
  method public void checkConnect(java.lang.String host, int port) { return; }
}
class T {
  method public void m(java.lang.SecurityManager sm, Other o, java.lang.String h) {
    virtualinvoke sm.checkConnect(h, 80);
    virtualinvoke o.checkConnect(h, 80);
    virtualinvoke sm.notACheck(h);
    return;
  }
}
"#,
        )
        .unwrap();
        let t = p.class_by_str("T").unwrap();
        let body = p.class(t).methods[0].body.as_ref().unwrap();
        let calls: Vec<_> = body.stmts.iter().filter_map(|s| s.as_call()).collect();
        assert_eq!(check_of_call(&p, calls[0]), Some(Check::Connect));
        assert_eq!(check_of_call(&p, calls[1]), None);
        assert_eq!(check_of_call(&p, calls[2]), None);
    }
}
