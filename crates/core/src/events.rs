//! Security-sensitive events.
//!
//! "The Java Native Interface (JNI) defines all interactions with the
//! outside environment [...] We therefore define all calls to native
//! methods as security-sensitive events. In addition, we consider all API
//! returns to be security-sensitive events." (§3)
//!
//! The *broad* definition (§3, "Broader definition of security-sensitive
//! events") additionally marks reads/writes of private variables and
//! accesses to API parameters — the definition needed to catch the
//! hypothetical Figure 3 bug.

use std::fmt;

/// Which definition of security-sensitive events the analysis uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EventDef {
    /// JNI (native) calls and API returns only — the paper's primary
    /// configuration (≤16,700 policies per library).
    #[default]
    Narrow,
    /// Narrow plus private-variable reads/writes and API-parameter
    /// accesses (>90,000 policies per library).
    Broad,
}

/// Identifies one security-sensitive event of an API entry point.
///
/// Keys are compared *across independent implementations* of the same API,
/// so they are name-based: implementations matched on the entry-point
/// signature can structure their internals differently, but an event named
/// the same thing (the same native routine, the same private datum) is "the
/// same event" (§5; events unique to one implementation are ignored).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventKey {
    /// Return from the API entry point, exposing internal state to the
    /// caller.
    ApiReturn,
    /// A call to the named native (JNI) method; keyed by the method's
    /// simple name.
    Native(String),
    /// Broad only: a read of the named private variable or API parameter.
    DataRead(String),
    /// Broad only: a write of the named private variable or API parameter.
    DataWrite(String),
}

impl EventKey {
    /// Returns `true` for events produced only under [`EventDef::Broad`].
    pub fn is_broad(&self) -> bool {
        matches!(self, EventKey::DataRead(_) | EventKey::DataWrite(_))
    }
}

impl fmt::Display for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKey::ApiReturn => f.write_str("API return"),
            EventKey::Native(n) => write!(f, "native call {n}"),
            EventKey::DataRead(n) => write!(f, "read of {n}"),
            EventKey::DataWrite(n) => write!(f, "write of {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broad_predicate() {
        assert!(!EventKey::ApiReturn.is_broad());
        assert!(!EventKey::Native("connect0".into()).is_broad());
        assert!(EventKey::DataRead("data1".into()).is_broad());
        assert!(EventKey::DataWrite("data1".into()).is_broad());
    }

    #[test]
    fn display_forms() {
        assert_eq!(EventKey::ApiReturn.to_string(), "API return");
        assert_eq!(
            EventKey::Native("load0".into()).to_string(),
            "native call load0"
        );
        assert_eq!(EventKey::DataRead("x".into()).to_string(), "read of x");
    }

    #[test]
    fn ordering_is_stable_for_report_determinism() {
        let mut keys = [
            EventKey::Native("b".into()),
            EventKey::ApiReturn,
            EventKey::Native("a".into()),
        ];
        keys.sort();
        assert_eq!(keys[0], EventKey::ApiReturn);
        assert_eq!(keys[1], EventKey::Native("a".into()));
    }
}
