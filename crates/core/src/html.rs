//! Self-contained HTML rendering of oracle reports, for sharing triage
//! results outside the terminal.

use crate::diff::DiffResult;
use crate::policy::render_dnf;
use crate::report::ReportGroup;
use std::fmt::Write as _;

/// Escapes text for HTML contexts.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '&' => "&amp;".chars().collect::<Vec<_>>(),
            '<' => "&lt;".chars().collect(),
            '>' => "&gt;".chars().collect(),
            '"' => "&quot;".chars().collect(),
            other => vec![other],
        })
        .collect()
}

/// Renders a pairing's grouped report as a single self-contained HTML
/// document (inline CSS, no external assets).
pub fn render_html(result: &DiffResult, groups: &[ReportGroup]) -> String {
    let mut sorted: Vec<&ReportGroup> = groups.iter().collect();
    sorted.sort_by_key(|g| std::cmp::Reverse(g.manifestation_count()));
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>security policy oracle: {} vs {}</title>",
        esc(&result.left_name),
        esc(&result.right_name)
    );
    out.push_str(
        "<style>\
         body{font-family:system-ui,sans-serif;margin:2rem;max-width:70rem}\
         h1{font-size:1.4rem} .summary{color:#444}\
         .group{border:1px solid #ccc;border-radius:6px;padding:0.8rem 1rem;margin:1rem 0}\
         .kind{font-weight:600} .cause{font-size:0.85rem;color:#666;margin-left:0.5rem}\
         .delta{color:#b00020;font-family:monospace}\
         table{border-collapse:collapse;margin:0.5rem 0}\
         td,th{border:1px solid #ddd;padding:0.25rem 0.6rem;font-family:monospace;font-size:0.85rem}\
         .manifests{font-size:0.85rem;color:#333}\
         </style></head><body>\n",
    );
    let _ = write!(
        out,
        "<h1>Policy differences: {} vs {}</h1>\n<p class=\"summary\">{} matching APIs, \
         {} distinct difference(s), {} manifestation(s).</p>\n",
        esc(&result.left_name),
        esc(&result.right_name),
        result.matching_apis,
        groups.len(),
        groups
            .iter()
            .map(ReportGroup::manifestation_count)
            .sum::<usize>(),
    );
    for g in sorted {
        let d = &g.representative;
        out.push_str("<div class=\"group\">\n");
        let _ = writeln!(
            out,
            "<div><span class=\"kind\">{}</span><span class=\"cause\">{} cause, {} \
             manifestation(s)</span></div>",
            esc(&d.kind.to_string()),
            g.cause,
            g.manifestation_count(),
        );
        let _ = writeln!(
            out,
            "<div>delta checks: <span class=\"delta\">{}</span></div>",
            esc(&d.delta.to_string())
        );
        let _ = writeln!(
            out,
            "<table><tr><th></th><th>must</th><th>may (per path)</th></tr>\
             <tr><td>{}</td><td>{}</td><td>{}</td></tr>\
             <tr><td>{}</td><td>{}</td><td>{}</td></tr></table>",
            esc(&result.left_name),
            esc(&d.left.must.to_string()),
            esc(&render_dnf(&d.left.may_paths)),
            esc(&result.right_name),
            esc(&d.right.must.to_string()),
            esc(&render_dnf(&d.right.may_paths)),
        );
        if !d.origins.is_empty() {
            let origins: Vec<String> = d.origins.iter().map(|o| esc(o)).collect();
            let _ = writeln!(out, "<div>implicated methods: {}</div>", origins.join(", "));
        }
        let sample: Vec<String> = g.manifestations.iter().take(6).map(|m| esc(m)).collect();
        let _ = writeln!(
            out,
            "<div class=\"manifests\">e.g. {}{}</div>",
            sample.join(", "),
            if g.manifestations.len() > 6 {
                ", …"
            } else {
                ""
            },
        );
        out.push_str("</div>\n");
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{Check, CheckSet};
    use crate::diff::{DifferenceKind, PolicyDifference, SideEvidence};
    use crate::events::EventKey;
    use crate::report::{group_differences, RootCause};

    fn sample() -> (DiffResult, Vec<ReportGroup>) {
        let diff = PolicyDifference {
            signature: "api.C.m(int)".into(),
            kind: DifferenceKind::CheckSetMismatch {
                event: EventKey::Native("write0<script>".into()),
            },
            left: SideEvidence {
                may: CheckSet::of(Check::Write),
                must: CheckSet::empty(),
                may_paths: spo_dataflow::Dnf::of(CheckSet::of(Check::Write).bits()),
            },
            right: SideEvidence::default(),
            origins: ["api.C.helper".to_owned()].into(),
            delta: CheckSet::of(Check::Write),
        };
        let result = DiffResult {
            left_name: "vendor<a>".into(),
            right_name: "vendor-b".into(),
            matching_apis: 3,
            differences: vec![diff],
        };
        let groups = group_differences(&result, &Default::default());
        (result, groups)
    }

    #[test]
    fn html_contains_the_report_content() {
        let (result, groups) = sample();
        let html = render_html(&result, &groups);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("checkWrite"));
        assert!(html.contains("api.C.helper"));
        assert!(html.contains("api.C.m(int)"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn html_escapes_untrusted_names() {
        let (result, groups) = sample();
        let html = render_html(&result, &groups);
        assert!(!html.contains("<script>"), "event name must be escaped");
        assert!(html.contains("&lt;script&gt;"));
        assert!(html.contains("vendor&lt;a&gt;"));
    }

    #[test]
    fn groups_sorted_by_manifestations() {
        let (result, mut groups) = sample();
        // Add a bigger group and confirm it renders first.
        let mut big = groups[0].clone();
        big.root_key = "other".into();
        big.manifestations = (0..5).map(|i| format!("api.Big.m{i}()")).collect();
        big.representative.delta = CheckSet::of(Check::Exit);
        big.cause = RootCause::Interprocedural;
        groups.push(big);
        let html = render_html(&result, &groups);
        let big_pos = html.find("checkExit").unwrap();
        let small_pos = html.find("checkWrite").unwrap();
        assert!(big_pos < small_pos);
    }
}
