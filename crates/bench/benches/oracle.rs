//! Criterion micro/macro benchmarks for the oracle pipeline components:
//! parsing, call-graph construction, SPDA/ISPA policy extraction under each
//! memoization scope (Table 2's ablation in benchmark form), policy
//! differencing, and the Dnf lattice operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spo_core::{AnalysisOptions, Analyzer, MemoScope};
use spo_corpus::{figures::FIGURE1, generate, CorpusConfig, Lib};
use spo_dataflow::{BitSet32, Dnf, JoinLattice};
use std::hint::black_box;

/// A small corpus reused across benches (deterministic).
fn bench_corpus() -> spo_corpus::Corpus {
    generate(&CorpusConfig { scale: 0.05, ..Default::default() })
}

fn bench_parser(c: &mut Criterion) {
    let corpus = bench_corpus();
    let src = corpus.sources[&Lib::Jdk].clone();
    let bytes = src.len() as u64;
    let mut g = c.benchmark_group("parser");
    g.throughput(criterion::Throughput::Bytes(bytes));
    g.bench_function("parse_jdk_source", |b| {
        b.iter(|| {
            let mut p = spo_corpus::prelude_program();
            spo_jir::parse_into(black_box(&src), &mut p).unwrap();
            black_box(p.class_count())
        })
    });
    g.finish();
}

fn bench_callgraph(c: &mut Criterion) {
    let corpus = bench_corpus();
    let program = corpus.program(Lib::Jdk);
    c.bench_function("callgraph/from_entry_points", |b| {
        b.iter(|| {
            let h = spo_resolve::Hierarchy::new(black_box(program));
            let cg = spo_resolve::CallGraph::from_entry_points(&h);
            black_box(cg.reachable_count())
        })
    });
}

fn bench_spda_figure1(c: &mut Criterion) {
    // Policy extraction for the paper's motivating example: one entry point
    // with the unique disjunctive policy.
    let program = FIGURE1.program(Lib::Jdk);
    c.bench_function("ispa/figure1_entry", |b| {
        b.iter(|| {
            let analyzer = Analyzer::new(black_box(&program), AnalysisOptions::default());
            let lib = analyzer.analyze_library("jdk");
            black_box(lib.entries.len())
        })
    });
}

fn bench_memo_scopes(c: &mut Criterion) {
    // Table 2 as a benchmark: whole-library policy extraction under each
    // memoization scope.
    let corpus = bench_corpus();
    let program = corpus.program(Lib::Jdk);
    let mut g = c.benchmark_group("memoization");
    g.sample_size(10);
    for (name, scope) in [
        ("none", MemoScope::None),
        ("per_entry", MemoScope::PerEntry),
        ("global", MemoScope::Global),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let opts = AnalysisOptions { memo: scope, ..Default::default() };
                let lib = Analyzer::new(black_box(program), opts).analyze_library("jdk");
                black_box(lib.stats.frames_analyzed)
            })
        });
    }
    g.finish();
}

fn bench_differencing(c: &mut Criterion) {
    let corpus = bench_corpus();
    let jdk = Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default())
        .analyze_library("jdk");
    let harmony = Analyzer::new(corpus.program(Lib::Harmony), AnalysisOptions::default())
        .analyze_library("harmony");
    c.bench_function("diff/jdk_vs_harmony", |b| {
        b.iter(|| {
            let d = spo_core::diff_libraries(black_box(&jdk), black_box(&harmony));
            black_box(d.differences.len())
        })
    });
}

fn bench_dnf(c: &mut Criterion) {
    let mut g = c.benchmark_group("dnf");
    g.bench_function("join_disjoint", |b| {
        let left: Dnf = (0..16u8).map(BitSet32::singleton).collect();
        let right: Dnf = (16..31u8).map(BitSet32::singleton).collect();
        b.iter_batched(
            || left.clone(),
            |mut l| {
                l.join(black_box(&right));
                black_box(l)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("gen_check", |b| {
        let base: Dnf = (0..16u8).map(BitSet32::singleton).collect();
        b.iter_batched(
            || base.clone(),
            |mut d| {
                d.gen(30);
                black_box(d)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_broad_events(c: &mut Criterion) {
    let corpus = bench_corpus();
    let program = corpus.program(Lib::Harmony);
    let mut g = c.benchmark_group("event_definition");
    g.sample_size(10);
    for (name, events) in [
        ("narrow", spo_core::EventDef::Narrow),
        ("broad", spo_core::EventDef::Broad),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let opts = AnalysisOptions { events, ..Default::default() };
                let lib = Analyzer::new(black_box(program), opts).analyze_library("harmony");
                black_box(lib.may_policy_count())
            })
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let corpus = bench_corpus();
    let program = corpus.program(Lib::Jdk);
    c.bench_function("throws/analyze_library", |b| {
        b.iter(|| {
            let t = spo_core::ThrowsAnalyzer::new(black_box(program)).analyze_library("jdk");
            black_box(t.entries.len())
        })
    });
    let jdk = Analyzer::new(program, AnalysisOptions::default()).analyze_library("jdk");
    let exported = spo_core::export_policies(&jdk);
    c.bench_function("exchange/export", |b| {
        b.iter(|| black_box(spo_core::export_policies(black_box(&jdk))).len())
    });
    c.bench_function("exchange/import", |b| {
        b.iter(|| {
            let lib = spo_core::import_policies(black_box(&exported)).unwrap();
            black_box(lib.entries.len())
        })
    });
    c.bench_function("baseline/mine_rules", |b| {
        b.iter(|| black_box(spo_core::mine_rules(black_box(&jdk), 3, 0.8)).len())
    });
    c.bench_function("resolve/lint_program", |b| {
        b.iter(|| black_box(spo_resolve::lint_program(black_box(program))).len())
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_callgraph,
    bench_spda_figure1,
    bench_memo_scopes,
    bench_differencing,
    bench_dnf,
    bench_broad_events,
    bench_extensions,
);
criterion_main!(benches);
