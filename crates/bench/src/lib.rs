//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each binary regenerates one table of the paper's evaluation (§6) over
//! the synthetic corpus and prints measured-vs-paper rows. Scale is
//! controlled by the `SPO_SCALE` environment variable (default `1.0`,
//! approximating the paper's library sizes).

use spo_core::{AnalysisOptions, LibraryPolicies};
use spo_corpus::{generate, Corpus, CorpusConfig, Lib};
use spo_engine::AnalysisEngine;
use spo_obs::{Recorder, Snapshot};

/// Reads the corpus scale from `SPO_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("SPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Generates the corpus at the environment-selected scale, printing a
/// header.
pub fn corpus_from_env() -> Corpus {
    let scale = scale_from_env();
    let config = CorpusConfig {
        scale,
        ..Default::default()
    };
    eprintln!(
        "generating corpus (scale {scale}, seed {:#x}) ...",
        config.seed
    );
    let t = std::time::Instant::now();
    let corpus = generate(&config);
    eprintln!("generated in {:?}", t.elapsed());
    corpus
}

/// Analyzes all three implementations through the parallel engine (each
/// library's entry points fan out across the worker pool; results are
/// identical to a serial run).
pub fn analyze_all(corpus: &Corpus, options: AnalysisOptions) -> Vec<(Lib, LibraryPolicies)> {
    let engine = AnalysisEngine::default();
    Lib::ALL
        .iter()
        .map(|&lib| {
            let (policies, stats) =
                engine.analyze_library(corpus.program(lib), lib.name(), options);
            eprintln!("  {lib}: {stats}");
            (lib, policies)
        })
        .collect()
}

/// Analyzes one library with an enabled [`Recorder`] and returns the
/// `spo-stats/1` snapshot.
///
/// The table binaries keep their *timed* runs recorder-disabled (the
/// disabled recorder is a no-op, but a belt-and-braces guarantee that
/// instrumentation can't perturb the published timings) and derive
/// cache-efficiency and fixpoint-cost columns from a separate
/// instrumented run through this helper.
pub fn instrumented_stats(
    corpus: &Corpus,
    lib: Lib,
    options: AnalysisOptions,
    jobs: usize,
) -> Snapshot {
    let rec = Recorder::new();
    let engine = AnalysisEngine::new(jobs).with_recorder(rec.clone());
    let _ = engine.analyze_library(corpus.program(lib), lib.name(), options);
    rec.snapshot()
}

/// Cache-efficiency and fixpoint-cost columns derived from a
/// `spo-stats/1` snapshot, shared by the `BENCH_*.json` emitters.
#[derive(Debug, Default)]
pub struct DerivedCosts {
    /// Summary-memo hits (`ispa.memo.hits`).
    pub memo_hits: u64,
    /// Summary-memo misses (`ispa.memo.misses`).
    pub memo_misses: u64,
    /// Shared-store lookup hits, MAY + MUST (`store.*.hits`).
    pub store_hits: u64,
    /// Shared-store lookup misses, MAY + MUST (`store.*.misses`).
    pub store_misses: u64,
    /// Shared-store contended shard acquisitions (`store.*.contended`).
    pub store_contended: u64,
    /// Committed frames (`fixpoint.transfers` observation count).
    pub frames: u64,
    /// Total committed statement transfers (`fixpoint.transfers` sum).
    pub fixpoint_transfers: u64,
    /// Total committed re-pass transfers (`fixpoint.repasses` sum).
    pub fixpoint_repasses: u64,
}

impl DerivedCosts {
    /// Extracts the derived columns from a snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let work = |k: &str| snap.work.get(k).copied().unwrap_or(0);
        let hist = |k: &str| snap.histograms.get(k).cloned().unwrap_or_default();
        let transfers = hist("fixpoint.transfers");
        DerivedCosts {
            memo_hits: work("ispa.memo.hits"),
            memo_misses: work("ispa.memo.misses"),
            store_hits: work("store.may.hits") + work("store.must.hits"),
            store_misses: work("store.may.misses") + work("store.must.misses"),
            store_contended: work("store.may.contended") + work("store.must.contended"),
            frames: transfers.count,
            fixpoint_transfers: transfers.sum,
            fixpoint_repasses: hist("fixpoint.repasses").sum,
        }
    }

    /// Memo hit rate in `[0, 1]` (0.0 when no lookups happened).
    pub fn memo_hit_rate(&self) -> f64 {
        rate(self.memo_hits, self.memo_misses)
    }

    /// Shared-store hit rate in `[0, 1]`.
    pub fn store_hit_rate(&self) -> f64 {
        rate(self.store_hits, self.store_misses)
    }

    /// Mean statement transfers per committed fixpoint solve.
    pub fn transfers_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.fixpoint_transfers as f64 / self.frames as f64
        }
    }

    /// Fraction of transfers spent re-visiting already-seen statements.
    pub fn repass_fraction(&self) -> f64 {
        if self.fixpoint_transfers == 0 {
            0.0
        } else {
            self.fixpoint_repasses as f64 / self.fixpoint_transfers as f64
        }
    }

    /// Renders the columns as the body of a JSON object (no braces).
    pub fn json_fields(&self, indent: &str) -> String {
        format!(
            "{indent}\"memo_hits\": {}, \"memo_misses\": {}, \"memo_hit_rate\": {:.4},\n\
             {indent}\"store_hits\": {}, \"store_misses\": {}, \"store_contended\": {}, \
             \"store_hit_rate\": {:.4},\n\
             {indent}\"frames\": {}, \"fixpoint_transfers\": {}, \"fixpoint_repasses\": {}, \
             \"transfers_per_frame\": {:.2}, \"repass_fraction\": {:.4}",
            self.memo_hits,
            self.memo_misses,
            self.memo_hit_rate(),
            self.store_hits,
            self.store_misses,
            self.store_contended,
            self.store_hit_rate(),
            self.frames,
            self.fixpoint_transfers,
            self.fixpoint_repasses,
            self.transfers_per_frame(),
            self.repass_fraction(),
        )
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Re-indents a rendered JSON document so it can be embedded as a value
/// inside a larger hand-rolled document: every line after the first is
/// prefixed with `indent` spaces, and the trailing newline is dropped.
pub fn embed_json(json: &str, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::new();
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str(line);
    }
    out
}

/// A fixed-width table printer for paper-style tables.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats the paper's `distinct (manifestations)` cell.
pub fn dm(distinct: usize, manifestations: usize) -> String {
    format!("{distinct} ({manifestations})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    fn dm_format() {
        assert_eq!(dm(6, 23), "6 (23)");
    }

    #[test]
    fn embed_json_indents_continuation_lines() {
        let doc = "{\n  \"a\": 1\n}\n";
        assert_eq!(embed_json(doc, 4), "{\n      \"a\": 1\n    }");
        assert_eq!(embed_json("{}", 2), "{}");
    }

    #[test]
    fn derived_costs_from_instrumented_run() {
        let corpus = generate(&CorpusConfig::test_sized());
        let snap = instrumented_stats(&corpus, Lib::Jdk, AnalysisOptions::default(), 1);
        let costs = DerivedCosts::from_snapshot(&snap);
        assert!(costs.frames > 0);
        assert!(costs.fixpoint_transfers >= costs.frames);
        assert!(costs.transfers_per_frame() >= 1.0);
        assert!((0.0..=1.0).contains(&costs.memo_hit_rate()));
        assert!((0.0..=1.0).contains(&costs.repass_fraction()));
        let fields = costs.json_fields("  ");
        assert!(fields.contains("\"transfers_per_frame\""));
        assert!(fields.contains("\"store_contended\""));
    }

    #[test]
    fn parallel_analysis_matches_serial() {
        use spo_core::Analyzer;
        let corpus = generate(&CorpusConfig::test_sized());
        let par = analyze_all(&corpus, AnalysisOptions::default());
        for (lib, policies) in &par {
            let serial = Analyzer::new(corpus.program(*lib), AnalysisOptions::default())
                .analyze_library(lib.name());
            assert_eq!(policies.entries.len(), serial.entries.len());
            for (sig, e) in &serial.entries {
                assert_eq!(&policies.entries[sig].events, &e.events, "{lib} {sig}");
            }
        }
    }
}
