//! Shared harness utilities for the table-regeneration binaries.
//!
//! Each binary regenerates one table of the paper's evaluation (§6) over
//! the synthetic corpus and prints measured-vs-paper rows. Scale is
//! controlled by the `SPO_SCALE` environment variable (default `1.0`,
//! approximating the paper's library sizes).

use spo_core::{AnalysisOptions, LibraryPolicies};
use spo_corpus::{generate, Corpus, CorpusConfig, Lib};
use spo_engine::AnalysisEngine;

/// Reads the corpus scale from `SPO_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("SPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Generates the corpus at the environment-selected scale, printing a
/// header.
pub fn corpus_from_env() -> Corpus {
    let scale = scale_from_env();
    let config = CorpusConfig {
        scale,
        ..Default::default()
    };
    eprintln!(
        "generating corpus (scale {scale}, seed {:#x}) ...",
        config.seed
    );
    let t = std::time::Instant::now();
    let corpus = generate(&config);
    eprintln!("generated in {:?}", t.elapsed());
    corpus
}

/// Analyzes all three implementations through the parallel engine (each
/// library's entry points fan out across the worker pool; results are
/// identical to a serial run).
pub fn analyze_all(corpus: &Corpus, options: AnalysisOptions) -> Vec<(Lib, LibraryPolicies)> {
    let engine = AnalysisEngine::default();
    Lib::ALL
        .iter()
        .map(|&lib| {
            let (policies, stats) =
                engine.analyze_library(corpus.program(lib), lib.name(), options);
            eprintln!("  {lib}: {stats}");
            (lib, policies)
        })
        .collect()
}

/// A fixed-width table printer for paper-style tables.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats the paper's `distinct (manifestations)` cell.
pub fn dm(distinct: usize, manifestations: usize) -> String {
    format!("{distinct} ({manifestations})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    fn dm_format() {
        assert_eq!(dm(6, 23), "6 (23)");
    }

    #[test]
    fn parallel_analysis_matches_serial() {
        use spo_core::Analyzer;
        let corpus = generate(&CorpusConfig::test_sized());
        let par = analyze_all(&corpus, AnalysisOptions::default());
        for (lib, policies) in &par {
            let serial = Analyzer::new(corpus.program(*lib), AnalysisOptions::default())
                .analyze_library(lib.name());
            assert_eq!(policies.entries.len(), serial.entries.len());
            for (sig, e) in &serial.entries {
                assert_eq!(&policies.entries[sig].events, &e.events, "{lib} {sig}");
            }
        }
    }
}
