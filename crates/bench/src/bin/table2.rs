//! Regenerates **Table 2 — Analysis time** for the MAY and MUST passes
//! under the three memoization configurations: no summaries, per-entry
//! summaries, and global summaries.
//!
//! The paper reports minutes on 2011 hardware for 600 KLoC subjects; the
//! reproduction target is the *shape* — per-entry memoization beats no
//! memoization, and global memoization beats both by a further large
//! factor (the paper's overall 15–65×).
//!
//! ```text
//! cargo run -p spo-bench --release --bin table2
//! ```

use spo_bench::{corpus_from_env, Table};
use spo_core::{AnalysisOptions, Analyzer, MemoScope};
use spo_corpus::Lib;

/// Paper values in minutes: rows (no-memo, per-entry, global) × (may, must)
/// per library.
const PAPER_MAY: [(Lib, [usize; 3]); 3] = [
    (Lib::Jdk, [300, 180, 10]),
    (Lib::Harmony, [190, 130, 13]),
    (Lib::Classpath, [340, 190, 20]),
];
const PAPER_MUST: [(Lib, [usize; 3]); 3] = [
    (Lib::Jdk, [560, 50, 10]),
    (Lib::Harmony, [290, 40, 12]),
    (Lib::Classpath, [650, 50, 10]),
];

fn main() {
    let corpus = corpus_from_env();
    let scopes = [
        ("No summaries", MemoScope::None),
        ("Summaries (per entry point)", MemoScope::PerEntry),
        ("Summaries (global)", MemoScope::Global),
    ];

    // measurements[scope][lib] = (may_ms, must_ms)
    let mut measured = vec![vec![(0.0f64, 0.0f64); 3]; 3];
    for (si, (name, scope)) in scopes.iter().enumerate() {
        for (li, lib) in Lib::ALL.iter().enumerate() {
            let options = AnalysisOptions { memo: *scope, ..Default::default() };
            let analyzer = Analyzer::new(corpus.program(*lib), options);
            let policies = analyzer.analyze_library(lib.name());
            let may_ms = policies.stats.may_nanos as f64 / 1e6;
            let must_ms = policies.stats.must_nanos as f64 / 1e6;
            measured[si][li] = (may_ms, must_ms);
            eprintln!(
                "{name:<28} {lib:<10} may {may_ms:>9.1} ms  must {must_ms:>9.1} ms  \
                 ({} frames, {} memo hits)",
                policies.stats.frames_analyzed, policies.stats.memo_hits
            );
        }
    }

    for (pass, paper, pick) in [
        ("MAY", &PAPER_MAY, 0usize),
        ("MUST", &PAPER_MUST, 1usize),
    ] {
        let mut table = Table::new(vec![
            "configuration",
            "jdk ms",
            "(paper min)",
            "harmony ms",
            "(paper min)",
            "classpath ms",
            "(paper min)",
        ]);
        for (si, (name, _)) in scopes.iter().enumerate() {
            let mut row = vec![name.to_string()];
            for (li, lib) in Lib::ALL.iter().enumerate() {
                let v = if pick == 0 { measured[si][li].0 } else { measured[si][li].1 };
                row.push(format!("{v:.1}"));
                let p = paper.iter().find(|(l, _)| l == lib).unwrap().1[si];
                row.push(p.to_string());
            }
            table.row(row);
        }
        println!("\nTable 2 ({pass} pass): analysis time, measured (ms) vs paper (minutes)\n");
        println!("{}", table.render());
    }

    // Speedup summary (the paper's headline: 1.5–13x from per-entry
    // summaries, a further 3–18x from global reuse, 15–65x overall).
    let mut table = Table::new(vec!["library", "no-memo/per-entry", "per-entry/global", "overall"]);
    for (li, lib) in Lib::ALL.iter().enumerate() {
        let total = |si: usize| measured[si][li].0 + measured[si][li].1;
        table.row(vec![
            lib.to_string(),
            format!("{:.1}x", total(0) / total(1)),
            format!("{:.1}x", total(1) / total(2)),
            format!("{:.1}x", total(0) / total(2)),
        ]);
    }
    println!("Memoization speedups (paper: 1.5-13x, 3-18x, 15-65x)\n");
    println!("{}", table.render());
}
