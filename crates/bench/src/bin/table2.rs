//! Regenerates **Table 2 — Analysis time** for the MAY and MUST passes
//! under the three memoization configurations: no summaries, per-entry
//! summaries, and global summaries — plus the engine's parallel
//! global-memo configuration, which the paper's serial analysis had no
//! counterpart for.
//!
//! The paper reports minutes on 2011 hardware for 600 KLoC subjects; the
//! reproduction target is the *shape* — per-entry memoization beats no
//! memoization, and global memoization beats both by a further large
//! factor (the paper's overall 15–65×).
//!
//! Besides the console tables, the binary writes `BENCH_table2.json`
//! (wall-clock and memo hit rates per configuration, machine-readable)
//! into the current directory. The timed runs keep the recorder disabled
//! so instrumentation can't perturb the published timings; a separate
//! pair of instrumented global-memo runs (serial and parallel) supplies
//! the cache-efficiency and fixpoint-cost columns plus full embedded
//! `spo-stats/1` snapshots.
//!
//! ```text
//! cargo run -p spo-bench --release --bin table2
//! ```

use spo_bench::{
    corpus_from_env, embed_json, instrumented_stats, scale_from_env, DerivedCosts, Table,
};
use spo_cache::PolicyCache;
use spo_core::{AnalysisOptions, MemoScope};
use spo_corpus::Lib;
use spo_engine::{AnalysisEngine, EngineStats, Publication};
use spo_guard::GuardConfig;
use spo_obs::Snapshot;
use spo_serve::{OptionsSpec, Registry};
use std::sync::Arc;

/// Paper values in minutes: rows (no-memo, per-entry, global) × (may, must)
/// per library.
const PAPER_MAY: [(Lib, [usize; 3]); 3] = [
    (Lib::Jdk, [300, 180, 10]),
    (Lib::Harmony, [190, 130, 13]),
    (Lib::Classpath, [340, 190, 20]),
];
const PAPER_MUST: [(Lib, [usize; 3]); 3] = [
    (Lib::Jdk, [560, 50, 10]),
    (Lib::Harmony, [290, 40, 12]),
    (Lib::Classpath, [650, 50, 10]),
];

/// One measured configuration of one library.
struct Measurement {
    config: &'static str,
    jobs: usize,
    lib: Lib,
    stats: EngineStats,
}

impl Measurement {
    fn may_ms(&self) -> f64 {
        self.stats.analysis.may_nanos as f64 / 1e6
    }
    fn must_ms(&self) -> f64 {
        self.stats.analysis.must_nanos as f64 / 1e6
    }
    fn wall_ms(&self) -> f64 {
        self.stats.wall_nanos as f64 / 1e6
    }
    fn hit_rate(&self) -> f64 {
        let a = &self.stats.analysis;
        if a.memo_hits + a.memo_misses == 0 {
            0.0
        } else {
            a.memo_hits as f64 / (a.memo_hits + a.memo_misses) as f64
        }
    }
    /// Lock-wait latency quantile across every SharedStore shard, in
    /// microseconds (0.0 when the run never contended a shard).
    fn lock_wait_us(&self, q: f64) -> f64 {
        let w = self.stats.lock_wait();
        if w.count == 0 {
            0.0
        } else {
            w.quantile(q) as f64 / 1e3
        }
    }
    /// One-line shard-contention summary: how many lock acquisitions
    /// blocked, and what blocking cost when it happened.
    fn contention_summary(&self) -> String {
        let w = self.stats.lock_wait();
        if w.count == 0 {
            "uncontended".to_owned()
        } else {
            format!(
                "{} waits, p50 {:.1} us, p99 {:.1} us",
                w.count,
                self.lock_wait_us(0.5),
                self.lock_wait_us(0.99),
            )
        }
    }
}

fn measure(
    corpus: &spo_corpus::Corpus,
    config: &'static str,
    jobs: usize,
    scope: MemoScope,
) -> Vec<Measurement> {
    let engine = AnalysisEngine::new(jobs);
    Lib::ALL
        .iter()
        .map(|&lib| {
            let options = AnalysisOptions {
                memo: scope,
                ..Default::default()
            };
            let (_, stats) = engine.analyze_library(corpus.program(lib), lib.name(), options);
            let m = Measurement {
                config,
                jobs: stats.workers,
                lib,
                stats,
            };
            eprintln!(
                "{config:<28} {lib:<10} may {:>9.1} ms  must {:>9.1} ms  wall {:>9.1} ms  \
                 ({} frames, {} memo hits, {} workers)",
                m.may_ms(),
                m.must_ms(),
                m.wall_ms(),
                m.stats.analysis.frames_analyzed,
                m.stats.analysis.memo_hits,
                m.stats.workers,
            );
            m
        })
        .collect()
}

/// The incremental configuration: populate the persistent summary cache
/// from a baseline run, apply a single-method body edit to each library,
/// then time the edited corpus cold (no cache) and warm (cache attached,
/// so only the edited method's cone re-analyzes). Returns the two
/// measurement rows `(cold_after_edit, warm_after_edit)`.
fn measure_warm_cache(corpus: &spo_corpus::Corpus) -> (Vec<Measurement>, Vec<Measurement>) {
    // Page-cache and allocator noise can dominate a ~20 ms run, so each
    // configuration keeps the best of TRIALS trials. Every warm trial
    // restarts from a copy of the freshly populated cache: the engine
    // writes the edited roots back, which would otherwise turn later
    // trials into all-hit runs that no longer measure the edit.
    const TRIALS: usize = 3;
    let options = AnalysisOptions {
        memo: MemoScope::Global,
        ..Default::default()
    };
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &lib in Lib::ALL.iter() {
        let dir = std::env::temp_dir().join(format!(
            "spo-table2-cache-{}-{}",
            std::process::id(),
            lib.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(PolicyCache::open(&dir).expect("cache directory"));
        AnalysisEngine::new(1)
            .with_cache(Arc::clone(&cache))
            .analyze_library(corpus.program(lib), lib.name(), options);
        drop(cache);
        let populated: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
            .expect("cache directory")
            .filter_map(|e| e.ok())
            .map(|e| (e.path(), std::fs::read(e.path()).expect("cache file")))
            .collect();

        // Single-method edit: a redundant goto in the first method body
        // changes exactly one method's content hash (no declarations
        // move, so the structural salt is untouched).
        let text = spo_jir::print_program(corpus.program(lib));
        let edited = text.replacen("    return;", "    goto resume;\n  resume:\n    return;", 1);
        assert_ne!(text, edited, "{lib}: single-method edit did not apply");
        let program = spo_jir::parse_program(&edited).expect("edited program parses");

        for (config, cached, out) in [
            ("Cold after edit (no cache)", false, &mut cold),
            ("Warm after edit (cached)", true, &mut warm),
        ] {
            let mut best: Option<Measurement> = None;
            for _ in 0..TRIALS {
                let engine = if cached {
                    for (path, bytes) in &populated {
                        std::fs::write(path, bytes).expect("restore cache file");
                    }
                    AnalysisEngine::new(1)
                        .with_cache(Arc::new(PolicyCache::open(&dir).expect("cache directory")))
                } else {
                    AnalysisEngine::new(1)
                };
                let (_, stats) = engine.analyze_library(&program, lib.name(), options);
                let m = Measurement {
                    config,
                    jobs: stats.workers,
                    lib,
                    stats,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| m.stats.wall_nanos < b.stats.wall_nanos)
                {
                    best = Some(m);
                }
            }
            let m = best.expect("at least one trial");
            eprintln!(
                "{config:<28} {lib:<10} wall {:>9.1} ms  ({} cache hits, {} misses)",
                m.wall_ms(),
                m.stats.cache_hits,
                m.stats.cache_misses,
            );
            out.push(m);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    (cold, warm)
}

/// Warm-query latency through the resident registry (`spo serve`,
/// DESIGN.md §12).
struct ServeLatency {
    /// One cold request: full analysis of the library plus report
    /// rendering — what a one-shot `spo analyze` pays after parsing.
    cold_ms: f64,
    /// Client-observed warm-query latency percentiles over `queries`
    /// single-entry-point queries served from the resident policies.
    p50_ms: f64,
    p99_ms: f64,
    queries: usize,
}

impl ServeLatency {
    fn speedup(&self) -> f64 {
        if self.p50_ms > 0.0 {
            self.cold_ms / self.p50_ms
        } else {
            0.0
        }
    }
}

/// Stands up an in-process `spo-serve` registry on the jdk library, pays
/// one cold analyze, then times warm queries against the resident
/// policies — the daemon's `query` path minus the socket hop.
fn measure_serve(corpus: &spo_corpus::Corpus) -> ServeLatency {
    use std::time::Instant;
    const QUERIES: usize = 100;
    let path = std::env::temp_dir().join(format!("spo-table2-serve-{}.jir", std::process::id()));
    std::fs::write(&path, spo_jir::print_program(corpus.program(Lib::Jdk)))
        .expect("write serve corpus");
    let registry = Registry::new(1, None, spo_obs::Recorder::disabled());
    registry
        .load("jdk", &[path.to_string_lossy().into_owned()])
        .expect("load serve corpus");
    let _ = std::fs::remove_file(&path);
    let entry = registry.get("jdk").expect("loaded program");
    let (guard, spec) = (GuardConfig::default(), OptionsSpec::default());

    let cold = Instant::now();
    let (a, warm) = registry.analysis(&entry, spec, &guard);
    assert!(!warm, "first serve request must be cold");
    let _ = spo_core::render_analysis(&a.lib);
    let cold_ms = cold.elapsed().as_secs_f64() * 1e3;

    // Query an entry point that actually carries a policy (checkless
    // entries render as the empty string, by the listing's contract).
    let sig = a
        .lib
        .entries
        .iter()
        .find(|(_, e)| !e.has_no_checks())
        .map(|(sig, _)| sig.clone())
        .expect("an entry point with checks");
    let mut lat: Vec<f64> = (0..QUERIES)
        .map(|_| {
            let t = Instant::now();
            let (a, warm) = registry.analysis(&entry, spec, &guard);
            let report = spo_core::render_entry(&sig, &a.lib.entries[&sig]);
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            assert!(warm && !report.is_empty(), "queries must serve warm");
            elapsed
        })
        .collect();
    lat.sort_by(f64::total_cmp);
    ServeLatency {
        cold_ms,
        p50_ms: lat[QUERIES / 2],
        p99_ms: lat[QUERIES * 99 / 100],
        queries: QUERIES,
    }
}

/// Robustness headline numbers: fault counts from a seeded in-process
/// chaos exercise of the cache flush path, plus the reconnect count a
/// retrying rpc client needed against a drop-injecting daemon.
struct ChaosRobustness {
    soak_faults_injected: u64,
    soak_recovered: u64,
    rpc_retry_count: u64,
}

/// Drives the crash-safe cache and the daemon/client retry loop under
/// seeded `spo-chaos` fault plans — the same plans `spo chaos soak`
/// arms, scaled down to a deterministic in-process exercise. The
/// interesting output is that the run *finishes with correct results*;
/// the counters published here size how much fault traffic it absorbed.
fn measure_chaos(corpus: &spo_corpus::Corpus) -> ChaosRobustness {
    use spo_chaos::{sites, FaultPlan};
    // Cache flush under injected short writes, rename failures, fsync
    // errors, and bit flips: five cold analyze+flush cycles, each with
    // its own seed.
    let dir = std::env::temp_dir().join(format!("spo-table2-chaos-{}", std::process::id()));
    let (mut injected, mut recovered) = (0u64, 0u64);
    for seed in 0..5u64 {
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(PolicyCache::open(&dir).expect("open chaos cache"));
        let plan = FaultPlan::seeded(0xC4A0 + seed).sites_at(
            &[
                sites::CACHE_WRITE_SHORT,
                sites::CACHE_RENAME_FAIL,
                sites::CACHE_FSYNC_FAIL,
                sites::CACHE_BITFLIP,
            ],
            0.4,
        );
        cache.set_fault_plan(plan.clone());
        let engine = AnalysisEngine::new(1).with_cache(Arc::clone(&cache));
        let (lib, _) = engine.analyze_library(
            corpus.program(Lib::Jdk),
            "jdk",
            AnalysisOptions {
                memo: MemoScope::Global,
                ..Default::default()
            },
        );
        assert!(!lib.entries.is_empty(), "chaos run still analyzes");
        injected += plan.injected();
        recovered += plan.recovered();
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Daemon/client retry: a real `spo-serve` daemon on a Unix socket
    // with a one-shot connection drop armed; the client loop mirrors
    // `spo rpc`'s retry discipline and reports how many reconnects the
    // injected faults cost.
    let rpc_retry_count = measure_rpc_retries(corpus);
    ChaosRobustness {
        soak_faults_injected: injected,
        soak_recovered: recovered,
        rpc_retry_count,
    }
}

/// Stands up an in-process daemon with `serve.conn.drop:once` armed and
/// replays an idempotent query until a complete response arrives,
/// counting reconnects (expected: exactly one).
fn measure_rpc_retries(corpus: &spo_corpus::Corpus) -> u64 {
    use spo_chaos::{sites, FaultPlan};
    use std::io::{BufRead, BufReader, Write};
    let jir = std::env::temp_dir().join(format!("spo-table2-rpc-{}.jir", std::process::id()));
    std::fs::write(&jir, spo_jir::print_program(corpus.program(Lib::Jdk)))
        .expect("write rpc corpus");
    let sock = std::env::temp_dir().join(format!("spo-table2-rpc-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    // The daemon thread captures the *global* plan at startup; disarm it
    // again before returning so nothing later in the process probes it.
    spo_chaos::install(FaultPlan::seeded(0x57A11).site_once(sites::SERVE_CONN_DROP));
    let config = spo_serve::ServeConfig {
        socket: Some(sock.clone()),
        jobs: 1,
        preload: vec![("jdk".to_owned(), vec![jir.to_string_lossy().into_owned()])],
        recorder: spo_obs::Recorder::new(),
        ..Default::default()
    };
    let daemon = std::thread::spawn(move || spo_serve::run(config));
    let t0 = std::time::Instant::now();
    while !sock.exists() {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "daemon never bound"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let query = r#"{"spo-rpc":1,"id":1,"method":"query","params":{"name":"jdk"}}"#;
    let mut retries = 0u64;
    loop {
        let attempt = || -> std::io::Result<String> {
            let mut s = std::os::unix::net::UnixStream::connect(&sock)?;
            writeln!(s, "{query}")?;
            s.flush()?;
            let mut line = String::new();
            let n = BufReader::new(s).read_line(&mut line)?;
            if n == 0 || !line.ends_with('\n') {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "dropped mid-response",
                ));
            }
            Ok(line)
        };
        match attempt() {
            Ok(line) => {
                assert!(line.contains("\"status\":\"ok\""), "query succeeds: {line}");
                break;
            }
            Err(_) => {
                retries += 1;
                assert!(retries < 16, "retry loop must converge");
            }
        }
    }
    if let Ok(mut s) = std::os::unix::net::UnixStream::connect(&sock) {
        let _ = writeln!(s, r#"{{"spo-rpc":1,"id":2,"method":"shutdown"}}"#);
        let _ = s.flush();
        let mut line = String::new();
        let _ = BufReader::new(s).read_line(&mut line);
    }
    let _ = daemon
        .join()
        .expect("daemon thread")
        .expect("daemon drains");
    spo_chaos::install(FaultPlan::disabled());
    let _ = std::fs::remove_file(&jir);
    retries
}

/// Compiled-index latency (`spo cache export-index` / `spo index`,
/// DESIGN.md §16) at one corpus scale: build both libraries' indexes,
/// then time single-entry-point queries against the parsed jdk index and
/// one full jdk-vs-harmony diff answered purely from the two indexes.
struct IndexLatency {
    scale: f64,
    entry_points: usize,
    bytes: usize,
    build_ms: f64,
    parse_ms: f64,
    queries: usize,
    query_p50_us: f64,
    query_p99_us: f64,
    diff_ms: f64,
}

fn measure_index(corpus: &spo_corpus::Corpus, scale: f64) -> IndexLatency {
    use std::time::Instant;
    let options = AnalysisOptions {
        memo: MemoScope::Global,
        ..Default::default()
    };
    let intra = AnalysisOptions {
        interprocedural: false,
        ..options
    };
    let engine = AnalysisEngine::new(1);
    let compile = |lib: Lib| {
        let (full, _) = engine.analyze_library(corpus.program(lib), lib.name(), options);
        let (ablation, _) = engine.analyze_library(corpus.program(lib), lib.name(), intra);
        (full, ablation)
    };
    let (jdk_full, jdk_intra) = compile(Lib::Jdk);
    let (har_full, har_intra) = compile(Lib::Harmony);
    let t = Instant::now();
    let jdk_bytes = spo_index::IndexBuilder::new("left", &options, &jdk_full, &jdk_intra)
        .build()
        .expect("jdk index builds");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let har_bytes = spo_index::IndexBuilder::new("right", &options, &har_full, &har_intra)
        .build()
        .expect("harmony index builds");
    let t = Instant::now();
    let index = spo_index::PolicyIndex::parse(&jdk_bytes).expect("jdk index parses");
    let parse_ms = t.elapsed().as_secs_f64() * 1e3;

    // Query latency: binary search + blob decode + render per query, the
    // daemon's warm-index path. Stride the entry points down to at most
    // 1024 timed queries so the scale-10 run stays short.
    let sigs: Vec<&str> = index
        .records()
        .map(|r| index.signature_of(r).expect("signature decodes"))
        .collect();
    let stride = (sigs.len() / 1024).max(1);
    let mut lat: Vec<f64> = sigs
        .iter()
        .step_by(stride)
        .map(|sig| {
            let t = Instant::now();
            let report = index.query(sig).expect("query decodes");
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert!(report.is_some(), "indexed entry point answers");
            us
        })
        .collect();
    let queries = lat.len();
    lat.sort_by(f64::total_cmp);

    // Diff latency: parse both indexes, reconstruct the four libraries,
    // and run the oracle — everything `spo index diff` does after read().
    let t = Instant::now();
    let right = spo_index::PolicyIndex::parse(&har_bytes).expect("harmony index parses");
    let (lf, li) = index.to_libraries().expect("jdk libraries decode");
    let (rf, ri) = right.to_libraries().expect("harmony libraries decode");
    let (report, _) = spo_index::diff_rendered(&lf, &li, &rf, &ri);
    let diff_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!report.is_empty(), "index diff renders");

    IndexLatency {
        scale,
        entry_points: index.len(),
        bytes: jdk_bytes.len(),
        build_ms,
        parse_ms,
        queries,
        query_p50_us: lat[queries / 2],
        query_p99_us: lat[queries * 99 / 100],
        diff_ms,
    }
}

/// One (jobs × publication) cell of the scale sweep.
struct SweepRow {
    jobs: usize,
    publication: &'static str,
    stats: EngineStats,
}

impl SweepRow {
    fn wall_ms(&self) -> f64 {
        self.stats.wall_nanos as f64 / 1e6
    }
    fn lock_wait_us(&self, q: f64) -> f64 {
        let w = self.stats.lock_wait();
        if w.count == 0 {
            0.0
        } else {
            w.quantile(q) as f64 / 1e3
        }
    }
}

/// One swept corpus scale and its grid of runs.
struct SweepScale {
    scale: f64,
    entry_points: usize,
    rows: Vec<SweepRow>,
}

fn env_list(var: &str, default: &str) -> Vec<f64> {
    std::env::var(var)
        .unwrap_or_else(|_| default.to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// The scale sweep: for each corpus scale in `SPO_SWEEP_SCALES` (default
/// `1,10`), analyze the jdk implementation under global memoization at
/// each worker count in `SPO_SWEEP_JOBS` (default `1,2,4,8`), once with
/// write-behind publication and once with the direct-publication
/// baseline. Cross-jobs speedup is only meaningful relative to the
/// machine's core count, which the JSON records alongside the rows.
fn measure_scale_sweep() -> (usize, Vec<SweepScale>, Option<IndexLatency>) {
    use spo_corpus::{generate, CorpusConfig};
    let scales = env_list("SPO_SWEEP_SCALES", "1,10");
    let jobs: Vec<usize> = env_list("SPO_SWEEP_JOBS", "1,2,4,8")
        .into_iter()
        .map(|j| j as usize)
        .filter(|&j| j > 0)
        .collect();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let options = AnalysisOptions {
        memo: MemoScope::Global,
        ..Default::default()
    };
    let max_scale = scales.iter().copied().fold(f64::MIN, f64::max);
    let mut index_latency = None;
    let mut out = Vec::new();
    for &scale in &scales {
        eprintln!("scale sweep: generating jdk corpus at scale {scale} ...");
        let corpus = generate(&CorpusConfig {
            scale,
            ..Default::default()
        });
        let program = corpus.program(Lib::Jdk);
        let entry_points = spo_resolve::entry_points(program).len();
        // One untimed warm-up run per scale: the first analysis of a
        // freshly generated corpus pays page faults and allocator growth
        // that would otherwise be billed to whichever grid cell runs
        // first.
        let _ = AnalysisEngine::new(1).analyze_library(program, "jdk", options);
        let mut rows = Vec::new();
        for &j in &jobs {
            for (publication, name) in [
                (Publication::WriteBehind, "write_behind"),
                (Publication::Direct, "direct"),
            ] {
                // Best of 3 trials by wall clock: a single scheduler
                // preemption while a shard lock is held shows up as a
                // milliseconds-long wait outlier, and the sweep is about
                // the publication protocol, not the host's time slicing.
                let stats = (0..3)
                    .map(|_| {
                        let engine = AnalysisEngine::new(j).with_publication(publication);
                        engine.analyze_library(program, "jdk", options).1
                    })
                    .min_by_key(|s| s.wall_nanos)
                    .expect("at least one trial");
                let row = SweepRow {
                    jobs: j,
                    publication: name,
                    stats,
                };
                eprintln!(
                    "scale {scale:>4} jobs {j} {name:<12} wall {:>9.1} ms  \
                     lock p99 {:>7.1} us  {} flushes  {} batches stolen",
                    row.wall_ms(),
                    row.lock_wait_us(0.99),
                    row.stats.writeback_flushes,
                    row.stats.batches_stolen,
                );
                rows.push(row);
            }
        }
        out.push(SweepScale {
            scale,
            entry_points,
            rows,
        });
        // Compiled-index latency rides on the largest swept corpus — the
        // sub-millisecond query budget only means something at scale.
        if scale == max_scale {
            eprintln!("scale {scale}: measuring compiled-index latency ...");
            let lat = measure_index(&corpus, scale);
            eprintln!(
                "scale {scale:>4} index: build {:>7.1} ms  parse {:>6.2} ms  query p50 {:>6.1} us  \
                 p99 {:>6.1} us  diff {:>7.1} ms  ({} entries, {} bytes)",
                lat.build_ms,
                lat.parse_ms,
                lat.query_p50_us,
                lat.query_p99_us,
                lat.diff_ms,
                lat.entry_points,
                lat.bytes,
            );
            index_latency = Some(lat);
        }
    }
    (cores, out, index_latency)
}

/// One instrumented (recorder-enabled) global-memo run of one library.
struct Instrumented {
    config: &'static str,
    jobs: usize,
    lib: Lib,
    snapshot: Snapshot,
    costs: DerivedCosts,
}

fn instrument(corpus: &spo_corpus::Corpus, config: &'static str, jobs: usize) -> Vec<Instrumented> {
    let options = AnalysisOptions {
        memo: MemoScope::Global,
        ..Default::default()
    };
    Lib::ALL
        .iter()
        .map(|&lib| {
            let snapshot = instrumented_stats(corpus, lib, options, jobs);
            let costs = DerivedCosts::from_snapshot(&snapshot);
            eprintln!(
                "{config:<28} {lib:<10} store hit rate {:>5.1}%  contended {:>6}  \
                 transfers/frame {:>6.1}  repass {:>5.1}%",
                100.0 * costs.store_hit_rate(),
                costs.store_contended,
                costs.transfers_per_frame(),
                100.0 * costs.repass_fraction(),
            );
            Instrumented {
                config,
                jobs,
                lib,
                snapshot,
                costs,
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    scale: f64,
    runs: &[Vec<Measurement>],
    instrumented: &[Vec<Instrumented>],
    serve: &ServeLatency,
    index: Option<&IndexLatency>,
    chaos: &ChaosRobustness,
    cores: usize,
    sweep: &[SweepScale],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scale\": {scale},");
    out.push_str("  \"configurations\": [\n");
    for (ci, ms) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"config\": \"{}\",", json_escape(ms[0].config));
        let _ = writeln!(out, "      \"jobs\": {},", ms[0].jobs);
        out.push_str("      \"libraries\": [\n");
        for (li, m) in ms.iter().enumerate() {
            let a = &m.stats.analysis;
            let _ = writeln!(
                out,
                "        {{ \"library\": \"{}\", \"may_ms\": {:.3}, \"must_ms\": {:.3}, \
                 \"wall_ms\": {:.3}, \"frames\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
                 \"memo_hit_rate\": {:.4}, \"steals\": {}, \"batches_stolen\": {}, \
                 \"contended\": {}, \
                 \"lock_wait_events\": {}, \"lock_wait_p50_us\": {:.3}, \
                 \"lock_wait_p99_us\": {:.3}, \"contention\": \"{}\", \
                 \"cache_hits\": {}, \"cache_misses\": {} }}{}",
                m.lib.name(),
                m.may_ms(),
                m.must_ms(),
                m.wall_ms(),
                a.frames_analyzed,
                a.memo_hits,
                a.memo_misses,
                m.hit_rate(),
                m.stats.steals,
                m.stats.batches_stolen,
                m.stats.contended(),
                m.stats.lock_wait().count,
                m.lock_wait_us(0.5),
                m.lock_wait_us(0.99),
                json_escape(&m.contention_summary()),
                m.stats.cache_hits,
                m.stats.cache_misses,
                if li + 1 < ms.len() { "," } else { "" },
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(out, "    }}{}", if ci + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"stats_schema\": \"{}\",", spo_obs::SCHEMA);
    out.push_str("  \"instrumented\": [\n");
    for (ci, inst) in instrumented.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"config\": \"{}\",",
            json_escape(inst[0].config)
        );
        let _ = writeln!(out, "      \"jobs\": {},", inst[0].jobs);
        out.push_str("      \"libraries\": [\n");
        for (li, i) in inst.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"library\": \"{}\",", i.lib.name());
            let _ = writeln!(out, "{},", i.costs.json_fields("          "));
            let _ = writeln!(
                out,
                "          \"stats\": {}",
                embed_json(&i.snapshot.to_json(), 10)
            );
            let _ = writeln!(
                out,
                "        }}{}",
                if li + 1 < inst.len() { "," } else { "" }
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(
            out,
            "    }}{}",
            if ci + 1 < instrumented.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    // Scale sweep: jdk under global memo across corpus scales × worker
    // counts × publication modes. `parallel_speedup` is relative to the
    // jobs=1 run of the same scale and publication mode; `cores` bounds
    // what any cross-jobs speedup can honestly reach on this machine.
    out.push_str("  \"scale_sweep\": {\n");
    let _ = writeln!(out, "    \"cores\": {cores},");
    out.push_str("    \"scales\": [\n");
    for (si, s) in sweep.iter().enumerate() {
        let _ = writeln!(out, "      {{");
        let _ = writeln!(out, "        \"scale\": {},", s.scale);
        let _ = writeln!(out, "        \"entry_points\": {},", s.entry_points);
        out.push_str("        \"rows\": [\n");
        for (ri, r) in s.rows.iter().enumerate() {
            let baseline = s
                .rows
                .iter()
                .find(|b| b.jobs == 1 && b.publication == r.publication)
                .map_or(0.0, SweepRow::wall_ms);
            let speedup = if r.wall_ms() > 0.0 {
                baseline / r.wall_ms()
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "          {{ \"jobs\": {}, \"publication\": \"{}\", \"workers\": {}, \
                 \"oversubscribed\": {}, \
                 \"wall_ms\": {:.3}, \"parallel_speedup\": {:.3}, \
                 \"lock_wait_events\": {}, \"lock_wait_p50_us\": {:.3}, \
                 \"lock_wait_p99_us\": {:.3}, \"steals\": {}, \"batches_stolen\": {}, \
                 \"batches_formed\": {}, \"writeback.flushes\": {}, \
                 \"writeback.deferred_hits\": {} }}{}",
                r.jobs,
                r.publication,
                r.stats.workers,
                r.stats.workers > cores,
                r.wall_ms(),
                speedup,
                r.stats.lock_wait().count,
                r.lock_wait_us(0.5),
                r.lock_wait_us(0.99),
                r.stats.steals,
                r.stats.batches_stolen,
                r.stats.batches_formed,
                r.stats.writeback_flushes,
                r.stats.writeback_deferred_hits,
                if ri + 1 < s.rows.len() { "," } else { "" },
            );
        }
        out.push_str("        ]\n");
        let _ = writeln!(
            out,
            "      }}{}",
            if si + 1 < sweep.len() { "," } else { "" }
        );
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    // Headline: parallel global vs serial global, total wall clock.
    // Oversubscribed measurements (more workers than cores — scheduler
    // time slicing, not engine parallelism) are excluded: on such hosts
    // the headline falls back to the serial run's 1.0 rather than
    // publishing a number that reads as a parallelism regression.
    let total_wall = |ms: &[Measurement]| ms.iter().map(Measurement::wall_ms).sum::<f64>();
    let serial_global = total_wall(&runs[2]);
    let parallel_oversubscribed = runs[3].iter().any(|m| m.stats.workers > cores);
    let parallel_global = if parallel_oversubscribed {
        serial_global
    } else {
        total_wall(&runs[3])
    };
    let _ = writeln!(out, "  \"serial_global_wall_ms\": {serial_global:.3},");
    let _ = writeln!(out, "  \"parallel_global_wall_ms\": {parallel_global:.3},");
    let _ = writeln!(
        out,
        "  \"parallel_oversubscribed\": {parallel_oversubscribed},"
    );
    let _ = writeln!(
        out,
        "  \"parallel_speedup\": {:.3},",
        serial_global / parallel_global
    );
    // Incremental headline: cold vs warm re-analysis after a
    // single-method edit, total wall clock over the corpus.
    let by_config = |name: &str| {
        runs.iter()
            .find(|ms| ms[0].config == name)
            .map(|ms| total_wall(ms))
    };
    let cold_edit = by_config("Cold after edit (no cache)").unwrap_or(0.0);
    let warm_edit = by_config("Warm after edit (cached)").unwrap_or(0.0);
    let _ = writeln!(out, "  \"cold_edit_wall_ms\": {cold_edit:.3},");
    let _ = writeln!(out, "  \"warm_edit_wall_ms\": {warm_edit:.3},");
    let _ = writeln!(
        out,
        "  \"warm_cache_speedup\": {:.3},",
        if warm_edit > 0.0 {
            cold_edit / warm_edit
        } else {
            0.0
        }
    );
    // Serving headline: warm resident queries vs the cold analyze they
    // replace (`spo serve`; acceptance floor 10x).
    let _ = writeln!(out, "  \"serve_queries\": {},", serve.queries);
    let _ = writeln!(out, "  \"serve_cold_analyze_ms\": {:.3},", serve.cold_ms);
    let _ = writeln!(out, "  \"serve_query_p50_ms\": {:.4},", serve.p50_ms);
    let _ = writeln!(out, "  \"serve_query_p99_ms\": {:.4},", serve.p99_ms);
    let _ = writeln!(out, "  \"serve_warm_speedup\": {:.1},", serve.speedup());
    // Compiled-index headline (`spo index`, measured at the largest sweep
    // scale): query latency is binary search + blob decode + render on a
    // parsed index; the budget is sub-millisecond p99 at scale 10.
    if let Some(ix) = index {
        let _ = writeln!(out, "  \"index_scale\": {},", ix.scale);
        let _ = writeln!(out, "  \"index_entry_points\": {},", ix.entry_points);
        let _ = writeln!(out, "  \"index_bytes\": {},", ix.bytes);
        let _ = writeln!(out, "  \"index_build_ms\": {:.3},", ix.build_ms);
        let _ = writeln!(out, "  \"index_parse_ms\": {:.3},", ix.parse_ms);
        let _ = writeln!(out, "  \"index_queries\": {},", ix.queries);
        let _ = writeln!(out, "  \"index_query_p50_us\": {:.2},", ix.query_p50_us);
        let _ = writeln!(out, "  \"index_query_p99_us\": {:.2},", ix.query_p99_us);
        let _ = writeln!(out, "  \"index_diff_ms\": {:.3},", ix.diff_ms);
    }
    // Robustness headline: seeded chaos exercise of the crash-safe cache
    // and the rpc retry loop (results stay correct; these size the fault
    // traffic absorbed along the way).
    let _ = writeln!(
        out,
        "  \"soak_faults_injected\": {},",
        chaos.soak_faults_injected
    );
    let _ = writeln!(out, "  \"soak_recovered\": {},", chaos.soak_recovered);
    let _ = writeln!(out, "  \"rpc_retry_count\": {}", chaos.rpc_retry_count);
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let corpus = corpus_from_env();
    let scale = scale_from_env();

    // The three serial configurations of the paper's Table 2 (engine with
    // one worker ≡ serial analyzer), plus the parallel global-memo run.
    let mut runs = vec![
        measure(&corpus, "No summaries", 1, MemoScope::None),
        measure(
            &corpus,
            "Summaries (per entry point)",
            1,
            MemoScope::PerEntry,
        ),
        measure(&corpus, "Summaries (global)", 1, MemoScope::Global),
        measure(
            &corpus,
            "Summaries (global, parallel)",
            0,
            MemoScope::Global,
        ),
    ];

    for (pass, paper, pick) in [("MAY", &PAPER_MAY, 0usize), ("MUST", &PAPER_MUST, 1usize)] {
        let mut table = Table::new(vec![
            "configuration",
            "jdk ms",
            "(paper min)",
            "harmony ms",
            "(paper min)",
            "classpath ms",
            "(paper min)",
        ]);
        for ms in runs.iter().take(3) {
            let mut row = vec![ms[0].config.to_string()];
            for m in ms {
                let v = if pick == 0 { m.may_ms() } else { m.must_ms() };
                row.push(format!("{v:.1}"));
                let paper_row = paper.iter().find(|(l, _)| *l == m.lib).unwrap().1;
                let si = runs
                    .iter()
                    .position(|r| r[0].config == ms[0].config)
                    .unwrap();
                row.push(paper_row[si].to_string());
            }
            table.row(row);
        }
        println!("\nTable 2 ({pass} pass): analysis time, measured (ms) vs paper (minutes)\n");
        println!("{}", table.render());
    }

    // Speedup summary (the paper's headline: 1.5–13x from per-entry
    // summaries, a further 3–18x from global reuse, 15–65x overall).
    let mut table = Table::new(vec![
        "library",
        "no-memo/per-entry",
        "per-entry/global",
        "overall",
    ]);
    for (li, first) in runs[0].iter().enumerate() {
        let total = |ci: usize| runs[ci][li].may_ms() + runs[ci][li].must_ms();
        table.row(vec![
            first.lib.to_string(),
            format!("{:.1}x", total(0) / total(1)),
            format!("{:.1}x", total(1) / total(2)),
            format!("{:.1}x", total(0) / total(2)),
        ]);
    }
    println!("Memoization speedups (paper: 1.5-13x, 3-18x, 15-65x)\n");
    println!("{}", table.render());

    // Parallel headline: wall clock of the engine's parallel global-memo
    // run against the serial global-memo run.
    let mut table = Table::new(vec![
        "library",
        "serial wall ms",
        "parallel wall ms",
        "speedup",
        "batches stolen",
        "shard contention",
    ]);
    for (serial, par) in runs[2].iter().zip(&runs[3]) {
        let (s, p) = (serial.wall_ms(), par.wall_ms());
        table.row(vec![
            serial.lib.to_string(),
            format!("{s:.1}"),
            format!("{p:.1}"),
            format!("{:.1}x", s / p),
            format!("{} ({} roots)", par.stats.batches_stolen, par.stats.steals),
            par.contention_summary(),
        ]);
    }
    println!(
        "Parallel engine (global memo, {} workers)\n",
        runs[3][0].jobs
    );
    println!("{}", table.render());

    // Incremental configuration: persistent-cache warm start after a
    // single-method edit (no paper counterpart — the paper re-ran the
    // whole analysis on every change).
    eprintln!("measuring warm-cache incremental runs ...");
    let (cold_edit, warm_edit) = measure_warm_cache(&corpus);
    let mut table = Table::new(vec![
        "library",
        "cold edit wall ms",
        "warm edit wall ms",
        "speedup",
        "roots reanalyzed",
    ]);
    for (c, w) in cold_edit.iter().zip(&warm_edit) {
        table.row(vec![
            c.lib.to_string(),
            format!("{:.1}", c.wall_ms()),
            format!("{:.1}", w.wall_ms()),
            format!("{:.1}x", c.wall_ms() / w.wall_ms()),
            format!(
                "{}/{}",
                w.stats.cache_misses,
                w.stats.cache_hits + w.stats.cache_misses
            ),
        ]);
    }
    println!("Incremental re-analysis after a single-method edit (--cache-dir)\n");
    println!("{}", table.render());
    runs.push(cold_edit);
    runs.push(warm_edit);

    // Resident-daemon warm queries (spo serve): one cold analyze, then
    // repeat queries answered from the warm policy map.
    eprintln!("measuring resident (spo serve) warm-query latency ...");
    let serve = measure_serve(&corpus);
    let mut table = Table::new(vec![
        "cold analyze ms",
        "warm query p50 ms",
        "warm query p99 ms",
        "speedup",
    ]);
    table.row(vec![
        format!("{:.1}", serve.cold_ms),
        format!("{:.4}", serve.p50_ms),
        format!("{:.4}", serve.p99_ms),
        format!("{:.0}x", serve.speedup()),
    ]);
    println!(
        "Resident warm queries, jdk, {} queries (spo serve)\n",
        serve.queries
    );
    println!("{}", table.render());

    // Instrumented (recorder-enabled) global-memo runs — separate from the
    // timed runs so the recorder can't perturb the timings above.
    eprintln!("instrumenting global-memo runs (recorder enabled) ...");
    let instrumented = vec![
        instrument(&corpus, "Summaries (global)", 1),
        instrument(&corpus, "Summaries (global, parallel)", 0),
    ];

    let mut table = Table::new(vec![
        "configuration",
        "library",
        "store hit rate",
        "contended",
        "transfers/frame",
        "repass fraction",
    ]);
    for inst in &instrumented {
        for i in inst {
            table.row(vec![
                i.config.to_string(),
                i.lib.to_string(),
                format!("{:.1}%", 100.0 * i.costs.store_hit_rate()),
                i.costs.store_contended.to_string(),
                format!("{:.1}", i.costs.transfers_per_frame()),
                format!("{:.1}%", 100.0 * i.costs.repass_fraction()),
            ]);
        }
    }
    println!("Cache efficiency and fixpoint cost (instrumented runs)\n");
    println!("{}", table.render());

    // Scale sweep: does parallel analysis win at scale, and what does
    // summary publication cost in lock waits when it matters?
    eprintln!("measuring scale sweep (SPO_SWEEP_SCALES x SPO_SWEEP_JOBS) ...");
    let (cores, sweep, index) = measure_scale_sweep();
    let mut table = Table::new(vec![
        "scale",
        "jobs",
        "publication",
        "wall ms",
        "speedup",
        "lock p99 us",
        "wb flushes",
        "batches stolen",
    ]);
    for s in &sweep {
        for r in &s.rows {
            let baseline = s
                .rows
                .iter()
                .find(|b| b.jobs == 1 && b.publication == r.publication)
                .map_or(0.0, SweepRow::wall_ms);
            // An oversubscribed cell (workers > cores) measures the
            // host's time slicing, not the engine; label it instead of
            // printing a speedup that reads as a regression.
            let speedup = if r.stats.workers > cores {
                "(oversubscribed)".to_owned()
            } else {
                format!("{:.2}x", baseline / r.wall_ms().max(1e-9))
            };
            table.row(vec![
                format!("{}", s.scale),
                r.jobs.to_string(),
                r.publication.to_string(),
                format!("{:.1}", r.wall_ms()),
                speedup,
                format!("{:.1}", r.lock_wait_us(0.99)),
                r.stats.writeback_flushes.to_string(),
                r.stats.batches_stolen.to_string(),
            ]);
        }
    }
    println!("Scale sweep, jdk, global memo ({cores} cores)\n");
    println!("{}", table.render());

    // Compiled-index latency (spo index): query/diff without the engine.
    if let Some(ix) = &index {
        let mut table = Table::new(vec![
            "scale",
            "entries",
            "build ms",
            "parse ms",
            "query p50 us",
            "query p99 us",
            "diff ms",
        ]);
        table.row(vec![
            format!("{}", ix.scale),
            ix.entry_points.to_string(),
            format!("{:.1}", ix.build_ms),
            format!("{:.2}", ix.parse_ms),
            format!("{:.1}", ix.query_p50_us),
            format!("{:.1}", ix.query_p99_us),
            format!("{:.1}", ix.diff_ms),
        ]);
        println!(
            "Compiled policy index, jdk, {} queries (spo index)\n",
            ix.queries
        );
        println!("{}", table.render());
    }

    // Chaos robustness: seeded fault plans against the cache flush path
    // and the daemon/client loop; correctness is asserted inside, the
    // counters are the published output.
    eprintln!("measuring chaos robustness (seeded fault injection) ...");
    let chaos = measure_chaos(&corpus);
    let mut table = Table::new(vec![
        "soak faults injected",
        "soak recovered",
        "rpc retries",
    ]);
    table.row(vec![
        chaos.soak_faults_injected.to_string(),
        chaos.soak_recovered.to_string(),
        chaos.rpc_retry_count.to_string(),
    ]);
    println!("Chaos robustness (seeded fault injection)\n");
    println!("{}", table.render());

    match write_json(
        "BENCH_table2.json",
        scale,
        &runs,
        &instrumented,
        &serve,
        index.as_ref(),
        &chaos,
        cores,
        &sweep,
    ) {
        Ok(()) => eprintln!("wrote BENCH_table2.json"),
        Err(e) => eprintln!("BENCH_table2.json: {e}"),
    }
}
