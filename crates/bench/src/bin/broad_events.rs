//! Regenerates the **§3 broad-events experiment**: policy counts under the
//! narrow (JNI + API returns) vs broad (plus private-variable and
//! parameter accesses) definitions of security-sensitive events, and the
//! Figure 3 class of bug only the broad definition can see.
//!
//! Paper: broad generates >90,000 policies per library vs ≤16,700 narrow,
//! found no additional bugs on the JCL, but is required for Figure 3.
//!
//! ```text
//! cargo run -p spo-bench --release --bin broad_events
//! ```

use security_policy_oracle::compare_implementations;
use spo_bench::{analyze_all, corpus_from_env, Table};
use spo_core::{AnalysisOptions, EventDef};
use spo_corpus::figures::FIGURE3;
use spo_corpus::Lib;
use std::collections::BTreeSet;

fn main() {
    let corpus = corpus_from_env();

    let narrow = analyze_all(&corpus, AnalysisOptions::default());
    let broad = analyze_all(
        &corpus,
        AnalysisOptions {
            events: EventDef::Broad,
            ..Default::default()
        },
    );

    let mut table = Table::new(vec![
        "library",
        "narrow policies",
        "broad policies",
        "ratio",
        "(paper)",
    ]);
    for ((lib, n), (_, b)) in narrow.iter().zip(&broad) {
        let np = n.may_policy_count() + n.must_policy_count();
        let bp = b.may_policy_count() + b.must_policy_count();
        table.row(vec![
            lib.to_string(),
            np.to_string(),
            bp.to_string(),
            format!("{:.1}x", bp as f64 / np as f64),
            "<=16,700 vs >90,000 (~5.4x)".to_owned(),
        ]);
    }
    println!("\nBroad vs narrow security-sensitive events: policy volume\n");
    println!("{}", table.render());

    // On the corpus (as on the JCL), broad events surface no *new* root
    // causes beyond the narrow run for the same pairing.
    let (a, b) = (Lib::Jdk, Lib::Harmony);
    let run = |events| {
        compare_implementations(
            corpus.program(a),
            a.name(),
            corpus.program(b),
            b.name(),
            AnalysisOptions {
                events,
                ..Default::default()
            },
        )
    };
    let narrow_run = run(EventDef::Narrow);
    let broad_run = run(EventDef::Broad);
    let classify = |groups: &[spo_core::ReportGroup]| -> BTreeSet<String> {
        groups
            .iter()
            .filter_map(|g| corpus.catalog.classify(g).map(|bug| bug.id.clone()))
            .collect()
    };
    let narrow_bugs = classify(&narrow_run.groups);
    let broad_bugs = classify(&broad_run.groups);
    let new: Vec<&String> = broad_bugs.difference(&narrow_bugs).collect();
    println!(
        "{a} vs {b}: narrow finds {} distinct bugs, broad finds {}; new under broad: {:?}",
        narrow_bugs.len(),
        broad_bugs.len(),
        new
    );
    println!("(paper: no additional bugs on the JCL under the broad definition)");

    // Figure 3: the hypothetical bug ONLY broad events detect.
    let impl1 = FIGURE3.program(Lib::Jdk);
    let impl2 = FIGURE3.program(Lib::Harmony);
    let fig3_narrow =
        compare_implementations(&impl1, "impl1", &impl2, "impl2", AnalysisOptions::default());
    let fig3_broad = compare_implementations(
        &impl1,
        "impl1",
        &impl2,
        "impl2",
        AnalysisOptions {
            events: EventDef::Broad,
            ..Default::default()
        },
    );
    println!(
        "\nFigure 3 scenario: narrow reports {} difference(s), broad reports {}",
        fig3_narrow.groups.len(),
        fig3_broad.groups.len()
    );
    println!("(paper: detectable only with the broad definition — expect 0 vs >0)");
    if !fig3_broad.groups.is_empty() {
        println!("\n{}", fig3_broad.render());
    }
}
