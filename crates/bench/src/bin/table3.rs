//! Regenerates **Table 3 — Security vulnerabilities and interoperability
//! errors detected by security policy differencing**: per pairing, the
//! matching-API counts, ICP-eliminated false positives, residual false
//! positives, root-cause breakdown, and the vulnerability/interop tallies
//! with ground-truth classification.
//!
//! Besides the console tables, the binary writes `BENCH_table3.json` into
//! the current directory: the differencing columns per pairing plus
//! cache-efficiency and fixpoint-cost columns and the full embedded
//! `spo-stats/1` snapshot of each pairing's ICP-on comparison.
//!
//! ```text
//! cargo run -p spo-bench --release --bin table3
//! ```

use security_policy_oracle::{compare_implementations, compare_implementations_with};
use spo_bench::{corpus_from_env, dm, embed_json, scale_from_env, DerivedCosts, Table};
use spo_core::{AnalysisOptions, ReportGroup, RootCause};
use spo_corpus::{BugCategory, Corpus, Lib};
use spo_engine::AnalysisEngine;
use spo_obs::{Recorder, Snapshot};
use std::collections::BTreeSet;

const PAIRINGS: [(Lib, Lib); 3] = [
    (Lib::Classpath, Lib::Harmony),
    (Lib::Jdk, Lib::Harmony),
    (Lib::Jdk, Lib::Classpath),
];

/// Paper values per pairing (CvH, JvH, JvC).
struct PaperCol {
    matching: usize,
    icp_fp: (usize, usize),
    fps: (usize, usize),
    intra: (usize, usize),
    inter: (usize, usize),
    mustmay: (usize, usize),
    total: (usize, usize),
    interop: (usize, usize),
}

const fn paper_col(i: usize) -> PaperCol {
    match i {
        0 => PaperCol {
            matching: 4_161,
            icp_fp: (4, 63),
            fps: (3, 3),
            intra: (1, 1),
            inter: (14, 140),
            mustmay: (0, 0),
            total: (15, 142),
            interop: (3, 115),
        },
        1 => PaperCol {
            matching: 4_449,
            icp_fp: (4, 35),
            fps: (3, 3),
            intra: (5, 6),
            inter: (13, 43),
            mustmay: (1, 5),
            total: (19, 54),
            interop: (9, 39),
        },
        _ => PaperCol {
            matching: 4_758,
            icp_fp: (4, 74),
            fps: (0, 0),
            intra: (2, 3),
            inter: (16, 300),
            mustmay: (0, 0),
            total: (18, 303),
            interop: (5, 222),
        },
    }
}

/// Paper vulnerability cells: per pairing, (left-lib vulns, right-lib
/// vulns) as (distinct, manifestations).
const PAPER_VULNS: [((usize, usize), (usize, usize)); 3] =
    [((5, 12), (4, 11)), ((1, 2), (6, 10)), ((5, 21), (8, 60))];

struct MeasuredCol {
    matching: usize,
    icp_fp: (usize, usize),
    fps: (usize, usize),
    intra: (usize, usize),
    inter: (usize, usize),
    mustmay: (usize, usize),
    total: (usize, usize),
    interop: (usize, usize),
    vulns_left: (usize, usize),
    vulns_right: (usize, usize),
    unmatched: usize,
    /// `spo-stats/1` snapshot of the ICP-on comparison (both sides).
    snapshot: Snapshot,
}

fn measure(corpus: &Corpus, a: Lib, b: Lib) -> MeasuredCol {
    // The ICP-on comparison runs instrumented; its snapshot feeds the
    // cache-efficiency and fixpoint-cost columns of BENCH_table3.json.
    let rec = Recorder::new();
    let engine = AnalysisEngine::default().with_recorder(rec.clone());
    let on = compare_implementations_with(
        corpus.program(a),
        a.name(),
        corpus.program(b),
        b.name(),
        AnalysisOptions::default(),
        &engine,
    );
    let off = compare_implementations(
        corpus.program(a),
        a.name(),
        corpus.program(b),
        b.name(),
        AnalysisOptions {
            icp: false,
            ..Default::default()
        },
    );
    let on_keys: BTreeSet<&str> = on.groups.iter().map(|g| g.root_key.as_str()).collect();
    let eliminated: Vec<&ReportGroup> = off
        .groups
        .iter()
        .filter(|g| !on_keys.contains(g.root_key.as_str()))
        .collect();

    let mut col = MeasuredCol {
        matching: on.diff.matching_apis,
        icp_fp: (
            eliminated.len(),
            eliminated.iter().map(|g| g.manifestation_count()).sum(),
        ),
        fps: (0, 0),
        intra: (0, 0),
        inter: (0, 0),
        mustmay: (0, 0),
        total: (0, 0),
        interop: (0, 0),
        vulns_left: (0, 0),
        vulns_right: (0, 0),
        unmatched: 0,
        snapshot: rec.snapshot(),
    };
    for g in &on.groups {
        let m = g.manifestation_count();
        col.total.0 += 1;
        col.total.1 += m;
        match g.cause {
            RootCause::Intraprocedural => {
                col.intra.0 += 1;
                col.intra.1 += m;
            }
            RootCause::Interprocedural => {
                col.inter.0 += 1;
                col.inter.1 += m;
            }
            RootCause::MustMay => {
                col.mustmay.0 += 1;
                col.mustmay.1 += m;
            }
        }
        match corpus.catalog.classify(g) {
            Some(bug) => match bug.category {
                BugCategory::Vulnerability => {
                    let slot = if bug.buggy_lib == a {
                        &mut col.vulns_left
                    } else {
                        &mut col.vulns_right
                    };
                    slot.0 += 1;
                    slot.1 += m;
                }
                BugCategory::Interop => {
                    col.interop.0 += 1;
                    col.interop.1 += m;
                }
                BugCategory::FalsePositive => {
                    col.fps.0 += 1;
                    col.fps.1 += m;
                }
                BugCategory::IcpOnly => col.unmatched += 1,
            },
            None => col.unmatched += 1,
        }
    }
    col
}

fn main() {
    let corpus = corpus_from_env();
    let t0 = std::time::Instant::now();
    let cols: Vec<MeasuredCol> = PAIRINGS
        .iter()
        .map(|&(a, b)| measure(&corpus, a, b))
        .collect();
    eprintln!(
        "differenced all three pairings (ICP on and off) in {:?}",
        t0.elapsed()
    );

    let mut table = Table::new(vec![
        "row",
        "Classpath v Harmony",
        "(paper)",
        "JDK v Harmony",
        "(paper)",
        "JDK v Classpath",
        "(paper)",
    ]);
    let row3 = |table: &mut Table,
                name: &str,
                f: &dyn Fn(&MeasuredCol) -> String,
                p: &dyn Fn(&PaperCol) -> String| {
        let mut row = vec![name.to_owned()];
        for (i, col) in cols.iter().enumerate() {
            row.push(f(col));
            row.push(p(&paper_col(i)));
        }
        table.row(row);
    };
    row3(
        &mut table,
        "Matching APIs",
        &|c| c.matching.to_string(),
        &|p| p.matching.to_string(),
    );
    row3(
        &mut table,
        "FPs eliminated by ICP",
        &|c| dm(c.icp_fp.0, c.icp_fp.1),
        &|p| dm(p.icp_fp.0, p.icp_fp.1),
    );
    row3(
        &mut table,
        "False positives",
        &|c| dm(c.fps.0, c.fps.1),
        &|p| dm(p.fps.0, p.fps.1),
    );
    row3(
        &mut table,
        "Root cause: intraprocedural",
        &|c| dm(c.intra.0, c.intra.1),
        &|p| dm(p.intra.0, p.intra.1),
    );
    row3(
        &mut table,
        "Root cause: interprocedural",
        &|c| dm(c.inter.0, c.inter.1),
        &|p| dm(p.inter.0, p.inter.1),
    );
    row3(
        &mut table,
        "Root cause: MUST/MAY",
        &|c| dm(c.mustmay.0, c.mustmay.1),
        &|p| dm(p.mustmay.0, p.mustmay.1),
    );
    row3(
        &mut table,
        "Total differences",
        &|c| dm(c.total.0, c.total.1),
        &|p| dm(p.total.0, p.total.1),
    );
    row3(
        &mut table,
        "Total interoperability bugs",
        &|c| dm(c.interop.0, c.interop.1),
        &|p| dm(p.interop.0, p.interop.1),
    );

    println!("\nTable 3: security policy differencing results (measured vs paper)\n");
    println!("{}", table.render());

    let mut vt = Table::new(vec![
        "pairing",
        "vulns (left lib)",
        "(paper)",
        "vulns (right lib)",
        "(paper)",
    ]);
    for (i, ((a, b), col)) in PAIRINGS.iter().zip(&cols).enumerate() {
        let (pl, pr) = PAPER_VULNS[i];
        vt.row(vec![
            format!("{a} v {b}"),
            dm(col.vulns_left.0, col.vulns_left.1),
            dm(pl.0, pl.1),
            dm(col.vulns_right.0, col.vulns_right.1),
            dm(pr.0, pr.1),
        ]);
    }
    println!("Security vulnerabilities per pairing\n");
    println!("{}", vt.render());

    let totals: Vec<String> = Lib::ALL
        .iter()
        .map(|&l| format!("{l} {}", corpus.catalog.total_vulnerabilities(l)))
        .collect();
    println!("Total distinct vulnerabilities (paper: JDK 6, Harmony 6, Classpath 8):");
    println!("  {}", totals.join(", "));
    let unmatched: usize = cols.iter().map(|c| c.unmatched).sum();
    println!("\nUnplanned/unclassified reported differences across all pairings: {unmatched}");
    println!("(0 = every report traces to an injected bug: no intrinsic false positives)");

    match write_json("BENCH_table3.json", &cols) {
        Ok(()) => eprintln!("wrote BENCH_table3.json"),
        Err(e) => eprintln!("BENCH_table3.json: {e}"),
    }
}

fn write_json(path: &str, cols: &[MeasuredCol]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scale\": {},", scale_from_env());
    let _ = writeln!(out, "  \"stats_schema\": \"{}\",", spo_obs::SCHEMA);
    out.push_str("  \"pairings\": [\n");
    let pair_json =
        |(d, m): (usize, usize)| format!("{{ \"distinct\": {d}, \"manifestations\": {m} }}");
    for (i, ((a, b), col)) in PAIRINGS.iter().zip(cols).enumerate() {
        let costs = DerivedCosts::from_snapshot(&col.snapshot);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"left\": \"{}\",", a.name());
        let _ = writeln!(out, "      \"right\": \"{}\",", b.name());
        let _ = writeln!(out, "      \"matching_apis\": {},", col.matching);
        let _ = writeln!(out, "      \"icp_eliminated\": {},", pair_json(col.icp_fp));
        let _ = writeln!(out, "      \"false_positives\": {},", pair_json(col.fps));
        let _ = writeln!(out, "      \"intraprocedural\": {},", pair_json(col.intra));
        let _ = writeln!(out, "      \"interprocedural\": {},", pair_json(col.inter));
        let _ = writeln!(out, "      \"must_may\": {},", pair_json(col.mustmay));
        let _ = writeln!(out, "      \"total\": {},", pair_json(col.total));
        let _ = writeln!(out, "      \"interop\": {},", pair_json(col.interop));
        let _ = writeln!(out, "      \"vulns_left\": {},", pair_json(col.vulns_left));
        let _ = writeln!(
            out,
            "      \"vulns_right\": {},",
            pair_json(col.vulns_right)
        );
        let _ = writeln!(out, "      \"unclassified\": {},", col.unmatched);
        let _ = writeln!(out, "{},", costs.json_fields("      "));
        let _ = writeln!(
            out,
            "      \"stats\": {}",
            embed_json(&col.snapshot.to_json(), 6)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < cols.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}
