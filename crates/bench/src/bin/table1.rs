//! Regenerates **Table 1 — Library characteristics**: non-comment LoC,
//! entry points, entry points with security checks, and may/must policy
//! counts per implementation, alongside the paper's values.
//!
//! ```text
//! cargo run -p spo-bench --release --bin table1
//! ```

use spo_bench::{analyze_all, corpus_from_env, Table};
use spo_core::AnalysisOptions;
use spo_corpus::Lib;

/// Paper values: (loc, entry points, entries w/ checks, may, must).
const PAPER: [(Lib, [usize; 5]); 3] = [
    (Lib::Jdk, [632_000, 6_008, 239, 9_580, 7_181]),
    (Lib::Harmony, [572_000, 5_835, 262, 7_126, 6_757]),
    (Lib::Classpath, [563_000, 4_563, 250, 4_652, 4_208]),
];

fn main() {
    let corpus = corpus_from_env();
    let t0 = std::time::Instant::now();
    let results = analyze_all(&corpus, AnalysisOptions::default());
    eprintln!("analyzed all three libraries in {:?}", t0.elapsed());

    let mut table = Table::new(vec![
        "metric",
        "jdk",
        "(paper)",
        "harmony",
        "(paper)",
        "classpath",
        "(paper)",
    ]);
    let paper = |lib: Lib, i: usize| {
        PAPER
            .iter()
            .find(|(l, _)| *l == lib)
            .map(|(_, v)| v[i].to_string())
            .unwrap_or_default()
    };
    let metric = |table: &mut Table, name: &str, idx: usize, f: &dyn Fn(Lib) -> usize| {
        let mut row: Vec<String> = vec![name.to_owned()];
        for lib in Lib::ALL {
            row.push(f(lib).to_string());
            row.push(paper(lib, idx));
        }
        table.row(row);
    };
    let get = |lib: Lib| {
        results
            .iter()
            .find(|(l, _)| *l == lib)
            .map(|(_, p)| p)
            .expect("all libs analyzed")
    };
    metric(&mut table, "Non-comment lines of code", 0, &|l| {
        corpus.loc(l)
    });
    metric(&mut table, "Entry points", 1, &|l| {
        get(l).stats.entry_points
    });
    metric(&mut table, "Entry points w/ security checks", 2, &|l| {
        get(l).entries_with_checks()
    });
    metric(&mut table, "may security policies", 3, &|l| {
        get(l).may_policy_count()
    });
    metric(&mut table, "must security policies", 4, &|l| {
        get(l).must_policy_count()
    });

    println!("\nTable 1: Library characteristics (measured vs paper)\n");
    println!("{}", table.render());
    println!(
        "note: the corpus is a scaled synthetic stand-in for the 2.5 MLoC Java\n\
         Class Library; shape (relative sizes, may > must, small checked\n\
         fraction) is the reproduction target, not absolute values."
    );
}
