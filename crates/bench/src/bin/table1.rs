//! Regenerates **Table 1 — Library characteristics**: non-comment LoC,
//! entry points, entry points with security checks, and may/must policy
//! counts per implementation, alongside the paper's values.
//!
//! Besides the console table, the binary writes `BENCH_table1.json` into
//! the current directory: the measured characteristics per library plus
//! cache-efficiency and fixpoint-cost columns and the full embedded
//! `spo-stats/1` snapshot from an instrumented run.
//!
//! ```text
//! cargo run -p spo-bench --release --bin table1
//! ```

use spo_bench::{
    analyze_all, corpus_from_env, embed_json, instrumented_stats, scale_from_env, DerivedCosts,
    Table,
};
use spo_core::{AnalysisOptions, LibraryPolicies};
use spo_corpus::{Corpus, Lib};

/// Paper values: (loc, entry points, entries w/ checks, may, must).
const PAPER: [(Lib, [usize; 5]); 3] = [
    (Lib::Jdk, [632_000, 6_008, 239, 9_580, 7_181]),
    (Lib::Harmony, [572_000, 5_835, 262, 7_126, 6_757]),
    (Lib::Classpath, [563_000, 4_563, 250, 4_652, 4_208]),
];

fn main() {
    let corpus = corpus_from_env();
    let t0 = std::time::Instant::now();
    let results = analyze_all(&corpus, AnalysisOptions::default());
    eprintln!("analyzed all three libraries in {:?}", t0.elapsed());

    let mut table = Table::new(vec![
        "metric",
        "jdk",
        "(paper)",
        "harmony",
        "(paper)",
        "classpath",
        "(paper)",
    ]);
    let paper = |lib: Lib, i: usize| {
        PAPER
            .iter()
            .find(|(l, _)| *l == lib)
            .map(|(_, v)| v[i].to_string())
            .unwrap_or_default()
    };
    let metric = |table: &mut Table, name: &str, idx: usize, f: &dyn Fn(Lib) -> usize| {
        let mut row: Vec<String> = vec![name.to_owned()];
        for lib in Lib::ALL {
            row.push(f(lib).to_string());
            row.push(paper(lib, idx));
        }
        table.row(row);
    };
    let get = |lib: Lib| {
        results
            .iter()
            .find(|(l, _)| *l == lib)
            .map(|(_, p)| p)
            .expect("all libs analyzed")
    };
    metric(&mut table, "Non-comment lines of code", 0, &|l| {
        corpus.loc(l)
    });
    metric(&mut table, "Entry points", 1, &|l| {
        get(l).stats.entry_points
    });
    metric(&mut table, "Entry points w/ security checks", 2, &|l| {
        get(l).entries_with_checks()
    });
    metric(&mut table, "may security policies", 3, &|l| {
        get(l).may_policy_count()
    });
    metric(&mut table, "must security policies", 4, &|l| {
        get(l).must_policy_count()
    });

    println!("\nTable 1: Library characteristics (measured vs paper)\n");
    println!("{}", table.render());
    println!(
        "note: the corpus is a scaled synthetic stand-in for the 2.5 MLoC Java\n\
         Class Library; shape (relative sizes, may > must, small checked\n\
         fraction) is the reproduction target, not absolute values."
    );

    match write_json("BENCH_table1.json", &corpus, &results) {
        Ok(()) => eprintln!("wrote BENCH_table1.json"),
        Err(e) => eprintln!("BENCH_table1.json: {e}"),
    }
}

fn write_json(
    path: &str,
    corpus: &Corpus,
    results: &[(Lib, LibraryPolicies)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"scale\": {},", scale_from_env());
    let _ = writeln!(out, "  \"stats_schema\": \"{}\",", spo_obs::SCHEMA);
    out.push_str("  \"libraries\": [\n");
    for (li, (lib, policies)) in results.iter().enumerate() {
        let snap = instrumented_stats(corpus, *lib, AnalysisOptions::default(), 0);
        let costs = DerivedCosts::from_snapshot(&snap);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"library\": \"{}\",", lib.name());
        let _ = writeln!(out, "      \"loc\": {},", corpus.loc(*lib));
        let _ = writeln!(
            out,
            "      \"entry_points\": {},",
            policies.stats.entry_points
        );
        let _ = writeln!(
            out,
            "      \"entries_with_checks\": {},",
            policies.entries_with_checks()
        );
        let _ = writeln!(
            out,
            "      \"may_policies\": {},",
            policies.may_policy_count()
        );
        let _ = writeln!(
            out,
            "      \"must_policies\": {},",
            policies.must_policy_count()
        );
        let _ = writeln!(out, "{},", costs.json_fields("      "));
        let _ = writeln!(out, "      \"stats\": {}", embed_json(&snap.to_json(), 6));
        let _ = writeln!(
            out,
            "    }}{}",
            if li + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}
