//! Writes the synthetic three-implementation corpus to disk as `.jir`
//! files, so the `spo` CLI (and anything else) can consume it:
//!
//! ```text
//! cargo run -p spo-bench --release --bin gencorpus -- --out /tmp/corpus --scale 0.1
//! spo diff /tmp/corpus/prelude.jir /tmp/corpus/jdk.jir \
//!      --vs /tmp/corpus/prelude.jir /tmp/corpus/harmony.jir
//! ```
//!
//! Emits `prelude.jir`, one `<lib>.jir` per implementation (figures
//! included), and `catalog.txt` with the ground-truth bug census.

use spo_corpus::figures::{ALL_FIGURES, FP_GET_PROPERTY};
use spo_corpus::{generate, CorpusConfig, Lib};
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let mut out_dir = PathBuf::from("corpus-out");
    // `SPO_SCALE` (the knob every table binary honours) seeds the default;
    // `--scale` still wins when both are given.
    let mut scale = std::env::var("SPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1f64);
    let mut seed = CorpusConfig::default().seed;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number")
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let corpus = generate(&CorpusConfig { seed, scale });

    std::fs::write(out_dir.join("prelude.jir"), spo_corpus::prelude_source())
        .expect("write prelude");
    let (mut entry_points, mut methods, mut bytes) = (0usize, 0usize, 0usize);
    for lib in Lib::ALL {
        let mut src = String::new();
        for fig in ALL_FIGURES.iter().chain([&FP_GET_PROPERTY]) {
            if let Some(s) = fig.source(lib) {
                src.push_str(s);
                src.push('\n');
            }
        }
        src.push_str(&corpus.sources[&lib]);
        let path = out_dir.join(format!("{lib}.jir"));
        std::fs::write(&path, &src).expect("write library source");
        eprintln!("wrote {} ({} bytes)", path.display(), src.len());
        let program = corpus.program(lib);
        entry_points += spo_resolve::entry_points(program).len();
        methods += program.all_methods().count();
        bytes += src.len();
    }

    let mut catalog = String::from("# ground-truth bug census (id lib category kind culprit)\n");
    for bug in &corpus.catalog.bugs {
        writeln!(
            catalog,
            "{}\t{}\t{:?}\t{:?}\t{}",
            bug.id, bug.buggy_lib, bug.category, bug.kind, bug.culprit
        )
        .unwrap();
    }
    std::fs::write(out_dir.join("catalog.txt"), catalog).expect("write catalog");
    eprintln!("wrote {}", out_dir.join("catalog.txt").display());
    // One greppable line for sweep scripts.
    println!("corpus scale={scale} entry_points={entry_points} methods={methods} bytes={bytes}");
}
