//! Compares the oracle against the prior-work baselines it displaces
//! (§1/§2/§7): a CMV-style complete-mediation verifier and a
//! bugs-as-deviant-behaviour code miner, over the full synthetic corpus
//! with ground truth.
//!
//! The paper's argument, quantified: the miner finds nothing within a
//! single (internally consistent) implementation and floods with false
//! positives as thresholds drop; the must-based verifier needs a manual
//! policy and flags correct may-policy code; the oracle finds the planted
//! census with zero unplanned reports.
//!
//! ```text
//! cargo run -p spo-bench --release --bin baselines
//! ```

use security_policy_oracle::compare_implementations;
use spo_bench::{corpus_from_env, Table};
use spo_core::{
    mine_rules, mining_deviations, verify_mediation, AnalysisOptions, Analyzer, Check, EventKey,
    MediationPolicy,
};
use spo_corpus::{BugCategory, Lib};

fn main() {
    let corpus = corpus_from_env();
    let harmony = Analyzer::new(corpus.program(Lib::Harmony), AnalysisOptions::default())
        .analyze_library("harmony");
    let jdk =
        Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default()).analyze_library("jdk");

    // --- The oracle.
    let report = compare_implementations(
        corpus.program(Lib::Jdk),
        "jdk",
        corpus.program(Lib::Harmony),
        "harmony",
        AnalysisOptions::default(),
    );
    let (mut oracle_real, mut oracle_fp) = (0usize, 0usize);
    for g in &report.groups {
        match corpus.catalog.classify(g) {
            Some(bug) if bug.category != BugCategory::FalsePositive => oracle_real += 1,
            _ => oracle_fp += 1,
        }
    }

    // --- Code miner at several thresholds, on Harmony alone.
    let mut table = Table::new(vec![
        "approach",
        "input needed",
        "real bugs found",
        "false positives",
    ]);
    table.row(vec![
        "policy oracle (this paper)".to_owned(),
        "2 implementations".to_owned(),
        oracle_real.to_string(),
        oracle_fp.to_string(),
    ]);
    for (sup, conf) in [(5usize, 0.95f64), (3, 0.8), (2, 0.5), (2, 0.3)] {
        let rules = mine_rules(&harmony, sup, conf);
        let deviations = mining_deviations(&harmony, &rules);
        // A deviation is "real" if its entry manifests a planted harmony
        // vulnerability.
        let vuln_sigs: Vec<&str> = report
            .groups
            .iter()
            .filter(|g| {
                corpus.catalog.classify(g).is_some_and(|b| {
                    b.buggy_lib == Lib::Harmony && b.category == BugCategory::Vulnerability
                })
            })
            .flat_map(|g| g.manifestations.iter().map(String::as_str))
            .collect();
        let real = deviations
            .iter()
            .filter(|d| vuln_sigs.contains(&d.signature.as_str()))
            .count();
        table.row(vec![
            format!("miner (sup>={sup}, conf>={conf})"),
            "1 implementation".to_owned(),
            real.to_string(),
            (deviations.len() - real).to_string(),
        ]);
    }

    // --- CMV-style verifier with a hand-written policy over the bug-plan
    // checks, applied to the *correct* jdk side: every may-policy site is a
    // false positive.
    let manual_policy = MediationPolicy::new(
        [Check::Read, Check::Write, Check::Connect, Check::Permission]
            .into_iter()
            .map(|c| (c, EventKey::ApiReturn))
            .collect(),
    );
    let violations = verify_mediation(&jdk, &manual_policy);
    table.row(vec![
        "CMV-style verifier (manual policy)".to_owned(),
        "1 impl + manual policy".to_owned(),
        "n/a (flags non-dominated events)".to_owned(),
        violations.len().to_string(),
    ]);

    println!("\nOracle vs prior-work baselines, jdk/harmony pairing\n");
    println!("{}", table.render());
    println!(
        "Paper's claims quantified: mining within one (internally consistent)\n\
         implementation finds none of the planted cross-implementation bugs\n\
         and accumulates false positives as thresholds drop; must-based\n\
         verification of a blanket manual policy flags every may-policy and\n\
         unchecked entry point. The oracle needs no policy and reports only\n\
         real differences."
    );
}
