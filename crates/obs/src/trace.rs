//! # spo-trace — flight-recorder timeline tracing
//!
//! A bounded per-lane ring buffer of timestamped events (spans, instants,
//! counter samples) exported as Chrome Trace Event / Perfetto-compatible
//! JSON under the versioned [`TRACE_SCHEMA`] (`spo-trace/1`).
//!
//! The layer mirrors the [`Recorder`](crate::Recorder) cost model: a
//! [`Tracer`] is either **enabled** (owns shared lane state) or
//! **disabled** (`Option<Arc<…>>` is `None`), and every operation on a
//! disabled tracer or lane is a branch-and-return that never reads the
//! clock. Each lane — one per engine worker, plus a main lane — is an
//! independent bounded ring: when full, the oldest event is dropped and
//! counted, so a runaway analysis can never exhaust memory through its
//! own telemetry.
//!
//! ## Determinism boundary
//!
//! Trace events are wall-clock timestamps and live strictly *outside* the
//! deterministic report/stats surface: nothing in this module feeds the
//! `counters`/`histograms` sections of `spo-stats/1`, and report bytes are
//! byte-identical with tracing on or off, at any worker count.
//!
//! ## Thread-local lane binding
//!
//! Deep layers (the shared policy store, the dataflow fixpoint, the
//! summary cache) emit events without threading a lane handle through
//! every signature: a worker [`bind`]s its lane to the current thread and
//! the free functions ([`instant_now`], [`span_now`], [`complete_since`])
//! write to whatever lane is bound — or do nothing when none is.
//!
//! # Examples
//!
//! ```
//! use spo_obs::trace::{self, Tracer};
//!
//! let tracer = Tracer::new();
//! let lane = tracer.lane("worker00");
//! {
//!     let _guard = trace::bind(&lane);
//!     let _span = trace::span_now("root", "engine");
//!     trace::instant_now("cache.miss", "cache");
//! }
//! let doc = tracer.to_chrome_json();
//! spo_obs::json::validate_trace(&doc).unwrap();
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The JSON trace schema version emitted by [`Tracer::to_chrome_json`]
/// and required by [`crate::json::validate_trace`].
pub const TRACE_SCHEMA: &str = "spo-trace/1";

/// Default per-lane ring capacity (events). At ~4 events per analyzed
/// root this holds several thousand roots per worker before eviction.
pub const DEFAULT_LANE_CAPACITY: usize = 16_384;

/// What a recorded event is, in Chrome Trace Event terms.
#[derive(Clone, Debug)]
enum EventKind {
    /// A `ph: "X"` complete event with an explicit duration.
    Complete { dur_nanos: u64 },
    /// A `ph: "i"` thread-scoped instant event.
    Instant,
    /// A `ph: "C"` counter sample.
    Counter { value: u64 },
}

/// One recorded event: name, category, nanoseconds since the tracer
/// epoch, and kind-specific payload.
#[derive(Clone, Debug)]
struct Event {
    name: String,
    cat: &'static str,
    ts_nanos: u64,
    kind: EventKind,
}

/// One lane's shared state: a bounded event ring plus an eviction count.
#[derive(Debug)]
struct LaneBuf {
    /// Chrome `tid` (1-based registration order).
    tid: u64,
    /// Human-readable lane name, exported as `thread_name` metadata.
    name: String,
    /// Shared epoch — all lanes of one tracer timestamp from it.
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl LaneBuf {
    fn push(&self, ev: Event) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ev);
    }
}

/// Shared state of one enabled tracer: the epoch and the registered lanes.
#[derive(Debug)]
struct TracerShared {
    epoch: Instant,
    lane_capacity: usize,
    lanes: Mutex<Vec<Arc<LaneBuf>>>,
}

/// The flight-recorder handle. Enabled tracers own the lane registry;
/// disabled tracers (the default) make every operation a no-op branch.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerShared>>,
}

impl Tracer {
    /// Creates an enabled tracer with the default per-lane capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// Creates an enabled tracer whose lanes each hold at most
    /// `lane_capacity` events (minimum 16) before dropping the oldest.
    pub fn with_capacity(lane_capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerShared {
                epoch: Instant::now(),
                lane_capacity: lane_capacity.max(16),
                lanes: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Creates a disabled tracer: every lane it hands out is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Returns `true` if events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a new lane (timeline row). Each call creates a fresh
    /// lane; on a disabled tracer the returned handle is a no-op.
    pub fn lane(&self, name: &str) -> TraceLane {
        let Some(shared) = &self.inner else {
            return TraceLane::disabled();
        };
        let mut lanes = shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let buf = Arc::new(LaneBuf {
            tid: lanes.len() as u64 + 1,
            name: name.to_owned(),
            epoch: shared.epoch,
            capacity: shared.lane_capacity,
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        });
        lanes.push(Arc::clone(&buf));
        TraceLane { inner: Some(buf) }
    }

    /// Total events evicted from full rings across all lanes.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            s.lanes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|l| l.dropped.load(Ordering::Relaxed))
                .sum()
        })
    }

    /// Total events currently held across all lanes.
    pub fn event_count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            s.lanes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|l| l.events.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
                .sum()
        })
    }

    /// Serializes every lane to a Chrome Trace Event / Perfetto-compatible
    /// JSON object: `{"schema":"spo-trace/1", …, "traceEvents":[…]}`.
    /// Timestamps are microseconds since the tracer epoch (µs with ns
    /// precision, per the trace-event spec); each lane becomes one `tid`
    /// with a `thread_name` metadata record. A disabled tracer serializes
    /// to a schema-valid empty trace.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"displayTimeUnit\":\"ms\",\"dropped\":");
        out.push_str(&self.dropped().to_string());
        out.push_str(",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&ev);
        };
        if let Some(shared) = &self.inner {
            let lanes = shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
            for lane in lanes.iter() {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        lane.tid,
                        crate::json::escape(&lane.name),
                    ),
                );
            }
            for lane in lanes.iter() {
                let events = lane.events.lock().unwrap_or_else(|e| e.into_inner());
                for ev in events.iter() {
                    push(&mut out, render_event(lane.tid, ev));
                }
            }
        }
        out.push_str(if first { "]}\n" } else { "\n]}\n" });
        out
    }
}

/// Formats nanoseconds as fractional microseconds (`123.456`), the
/// trace-event spec's timestamp unit at full clock precision.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn render_event(tid: u64, ev: &Event) -> String {
    let head = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        crate::json::escape(&ev.name),
        ev.cat,
        tid,
        micros(ev.ts_nanos),
    );
    match ev.kind {
        EventKind::Complete { dur_nanos } => {
            format!("{head},\"ph\":\"X\",\"dur\":{}}}", micros(dur_nanos))
        }
        EventKind::Instant => format!("{head},\"ph\":\"i\",\"s\":\"t\"}}"),
        EventKind::Counter { value } => {
            format!("{head},\"ph\":\"C\",\"args\":{{\"value\":{value}}}}}",)
        }
    }
}

/// A cheap per-thread handle onto one lane of a [`Tracer`]. The default
/// handle (and every handle from a disabled tracer) is a no-op.
#[derive(Clone, Debug, Default)]
pub struct TraceLane {
    inner: Option<Arc<LaneBuf>>,
}

impl TraceLane {
    /// A no-op lane, what a disabled [`Tracer`] hands out.
    pub fn disabled() -> TraceLane {
        TraceLane { inner: None }
    }

    /// Returns `true` if events written to this lane are retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span: a guard that records one complete (`ph: "X"`) event
    /// covering its lifetime when dropped. On a disabled lane the guard
    /// never reads the clock.
    pub fn span(&self, name: &str, cat: &'static str) -> TraceSpan {
        match &self.inner {
            Some(_) => TraceSpan {
                lane: self.clone(),
                name: name.to_owned(),
                cat,
                start: Some(Instant::now()),
            },
            None => TraceSpan::noop(),
        }
    }

    /// Records a thread-scoped instant (`ph: "i"`) event.
    pub fn instant(&self, name: &str, cat: &'static str) {
        if let Some(buf) = &self.inner {
            buf.push(Event {
                name: name.to_owned(),
                cat,
                ts_nanos: buf.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Instant,
            });
        }
    }

    /// Records a counter sample (`ph: "C"`) — a gauge value at one point
    /// in time, rendered by viewers as a stacked area track.
    pub fn counter(&self, name: &str, cat: &'static str, value: u64) {
        if let Some(buf) = &self.inner {
            buf.push(Event {
                name: name.to_owned(),
                cat,
                ts_nanos: buf.epoch.elapsed().as_nanos() as u64,
                kind: EventKind::Counter { value },
            });
        }
    }

    /// Records a complete (`ph: "X"`) event for an interval timed by the
    /// caller: from `start` (captured before the work) to now. Used where
    /// the interval is only interesting in hindsight, e.g. a shard lock
    /// acquire that actually blocked.
    pub fn complete_since(&self, start: Instant, name: &str, cat: &'static str) {
        if let Some(buf) = &self.inner {
            let ts_nanos = start.saturating_duration_since(buf.epoch).as_nanos() as u64;
            buf.push(Event {
                name: name.to_owned(),
                cat,
                ts_nanos,
                kind: EventKind::Complete {
                    dur_nanos: start.elapsed().as_nanos() as u64,
                },
            });
        }
    }
}

/// Span guard returned by [`TraceLane::span`] / [`span_now`]: emits one
/// complete event covering its lifetime when dropped.
#[derive(Debug)]
pub struct TraceSpan {
    lane: TraceLane,
    name: String,
    cat: &'static str,
    start: Option<Instant>,
}

impl TraceSpan {
    fn noop() -> TraceSpan {
        TraceSpan {
            lane: TraceLane::disabled(),
            name: String::new(),
            cat: "",
            start: None,
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let (Some(start), Some(buf)) = (self.start, &self.lane.inner) {
            let ts_nanos = start.saturating_duration_since(buf.epoch).as_nanos() as u64;
            buf.push(Event {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                ts_nanos,
                kind: EventKind::Complete {
                    dur_nanos: start.elapsed().as_nanos() as u64,
                },
            });
        }
    }
}

thread_local! {
    /// The lane bound to the current thread, if any. Deep layers emit
    /// through this so tracing needs no signature changes.
    static CURRENT: RefCell<Option<TraceLane>> = const { RefCell::new(None) };
}

/// Guard returned by [`bind`]: restores the previously bound lane (or
/// none) when dropped, so bindings nest.
#[derive(Debug)]
pub struct Bound {
    prev: Option<TraceLane>,
}

impl Drop for Bound {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Binds `lane` as the current thread's trace lane until the returned
/// guard drops. Binding a disabled lane effectively unbinds (free
/// functions become no-ops), which is what a tracing-off worker wants.
pub fn bind(lane: &TraceLane) -> Bound {
    let prev = CURRENT.with(|c| {
        c.borrow_mut()
            .replace(lane.clone())
            .filter(|l| l.is_enabled())
    });
    Bound { prev }
}

/// Returns `true` if the current thread has an enabled lane bound —
/// lets manually-timed call sites skip reading the clock entirely.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(TraceLane::is_enabled))
}

/// Records an instant event on the current thread's lane, if any.
pub fn instant_now(name: &str, cat: &'static str) {
    CURRENT.with(|c| {
        if let Some(lane) = c.borrow().as_ref() {
            lane.instant(name, cat);
        }
    });
}

/// Starts a span on the current thread's lane (a no-op guard when none
/// is bound).
pub fn span_now(name: &str, cat: &'static str) -> TraceSpan {
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some(lane) => lane.span(name, cat),
        None => TraceSpan::noop(),
    })
}

/// Records a caller-timed complete event (`start` → now) on the current
/// thread's lane, if any. Pair with [`is_active`] to avoid the clock
/// read when tracing is off.
pub fn complete_since(start: Instant, name: &str, cat: &'static str) {
    CURRENT.with(|c| {
        if let Some(lane) = c.borrow().as_ref() {
            lane.complete_since(start, name, cat);
        }
    });
}

/// Records a counter sample on the current thread's lane, if any.
pub fn counter_now(name: &str, cat: &'static str, value: u64) {
    CURRENT.with(|c| {
        if let Some(lane) = c.borrow().as_ref() {
            lane.counter(name, cat, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn disabled_tracer_is_noop_and_schema_valid() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let lane = tracer.lane("worker00");
        assert!(!lane.is_enabled());
        let _span = lane.span("root", "engine");
        lane.instant("x", "engine");
        lane.counter("depth", "engine", 3);
        lane.complete_since(Instant::now(), "wait", "store");
        assert_eq!(tracer.event_count(), 0);
        let doc = tracer.to_chrome_json();
        json::validate_trace(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn events_round_trip_through_chrome_json() {
        let tracer = Tracer::new();
        let lane = tracer.lane("worker00");
        {
            let _span = lane.span("com.example.Main.run()", "root");
            lane.instant("cache.miss", "cache");
        }
        lane.counter("queue.depth", "serve", 2);
        let start = Instant::now();
        lane.complete_since(start, "lock_wait", "store");
        assert_eq!(tracer.event_count(), 4);
        let doc = tracer.to_chrome_json();
        json::validate_trace(&doc).unwrap();
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"worker00\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"schema\":\"spo-trace/1\""));
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let tracer = Tracer::with_capacity(16);
        let lane = tracer.lane("main");
        for i in 0..40 {
            lane.instant(&format!("ev{i}"), "test");
        }
        assert_eq!(tracer.event_count(), 16);
        assert_eq!(tracer.dropped(), 24);
        let doc = tracer.to_chrome_json();
        json::validate_trace(&doc).unwrap();
        // The oldest events were evicted; the newest survive.
        assert!(!doc.contains("\"ev0\""));
        assert!(doc.contains("\"ev39\""));
        assert!(doc.contains("\"dropped\":24"));
    }

    #[test]
    fn lanes_get_distinct_tids_in_registration_order() {
        let tracer = Tracer::new();
        let a = tracer.lane("main");
        let b = tracer.lane("worker00");
        a.instant("a", "test");
        b.instant("b", "test");
        let doc = tracer.to_chrome_json();
        let a_meta = doc.find("\"main\"").unwrap();
        let b_meta = doc.find("\"worker00\"").unwrap();
        assert!(a_meta < b_meta);
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("\"tid\":2"));
    }

    #[test]
    fn thread_local_binding_nests_and_restores() {
        assert!(!is_active());
        instant_now("ignored", "test"); // no lane bound: no-op
        let tracer = Tracer::new();
        let outer = tracer.lane("outer");
        let inner = tracer.lane("inner");
        {
            let _o = bind(&outer);
            assert!(is_active());
            instant_now("on-outer", "test");
            {
                let _i = bind(&inner);
                instant_now("on-inner", "test");
                let _s = span_now("inner-span", "test");
            }
            instant_now("outer-again", "test");
        }
        assert!(!is_active());
        let doc = tracer.to_chrome_json();
        json::validate_trace(&doc).unwrap();
        assert_eq!(tracer.event_count(), 4);
        // Binding a disabled lane unbinds.
        let _g = bind(&TraceLane::disabled());
        assert!(!is_active());
    }

    #[test]
    fn complete_since_has_duration_and_nonnegative_ts() {
        let tracer = Tracer::new();
        let lane = tracer.lane("main");
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        lane.complete_since(start, "wait", "store");
        let doc = tracer.to_chrome_json();
        json::validate_trace(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let wait = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("wait"))
            .unwrap();
        assert_eq!(wait.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(wait.get("dur").is_some());
    }
}
