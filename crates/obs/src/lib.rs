//! # spo-obs — observability for the security policy oracle
//!
//! The analysis pipeline's measurement layer: hierarchical spans, atomic
//! counters, and log₂-bucketed histograms behind a cheap [`Recorder`]
//! handle, snapshot into a stable, versioned, machine-readable JSON stats
//! schema (see [`SCHEMA`]).
//!
//! The crate is std-only (the workspace builds offline) and every hot-path
//! operation on a **disabled** recorder is a single `Option` branch: the
//! instrumented crates hold pre-registered [`Counter`]/[`Histogram`]
//! handles, and a disabled recorder hands out empty handles whose methods
//! compile to a branch-and-return.
//!
//! ## Metric taxonomy
//!
//! Metrics live in four sections, chosen by which registration method was
//! used. The split encodes a determinism contract:
//!
//! | section      | registered via              | determinism                  |
//! |--------------|-----------------------------|------------------------------|
//! | `counters`   | [`Recorder::counter`]       | schedule-independent         |
//! | `histograms` | [`Recorder::histogram`]     | schedule-independent         |
//! | `work`       | [`Recorder::work_counter`]  | scheduling/cache dependent   |
//! | `durations`  | [`Recorder::span`] / [`Recorder::duration`] | wall-clock   |
//!
//! `counters` and `histograms` must be byte-identical across worker counts
//! for the same input — the analysis crates only record into them through a
//! commit protocol that counts each unit of logical work exactly once.
//! `work` holds genuinely scheduling-dependent counts (memo hits, lock
//! contention, steals) and `durations` holds wall-clock span timings; both
//! vary run to run and are excluded from determinism comparisons.
//!
//! # Examples
//!
//! ```
//! use spo_obs::Recorder;
//!
//! let rec = Recorder::new();
//! let transfers = rec.counter("dataflow.transfers");
//! transfers.add(42);
//! rec.histogram("fixpoint.transfers").record(42);
//! {
//!     let _guard = rec.span("ispa.may");
//!     // ... timed work ...
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["dataflow.transfers"], 42);
//! spo_obs::json::validate_stats(&snap.to_json()).unwrap();
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The JSON stats schema version emitted by [`Snapshot::to_json`] and
/// required by [`json::validate_stats`].
pub const SCHEMA: &str = "spo-stats/1";

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index of a value: 0 for 0, else `1 + floor(log2(v))`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive value range covered by a bucket index.
pub fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1 => (1, 1),
        _ => (1 << (i - 1), (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1)),
    }
}

/// One log₂-bucketed histogram cell: total count, total sum, per-bucket
/// counts. All updates are relaxed atomics — totals are exact because every
/// record touches each field exactly once.
#[derive(Debug)]
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistCell {
    fn default() -> HistCell {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistCell {
    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }

    fn absorb(&self, snap: &HistSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for &(i, n) in &snap.buckets {
            self.buckets[i as usize].fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Registry of one enabled recorder: four name→cell maps, one per schema
/// section. Hot paths never touch the maps — they hold [`Counter`] /
/// [`Histogram`] handles registered once up front.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    work: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
    durations: Mutex<BTreeMap<String, Arc<HistCell>>>,
    diagnostics: Mutex<Vec<DiagRecord>>,
}

/// One degradation event recorded into the snapshot's `diagnostics`
/// section: a quarantined root, an exhausted budget, a recovered parse
/// error. All fields are plain strings so the schema stays independent of
/// the guard layer's types.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct DiagRecord {
    /// Pipeline stage (`parse`, `analysis`) — primary sort key.
    pub phase: String,
    /// The degraded unit: entry-point signature, file, or class.
    pub root: String,
    /// Degradation cause label (`panic`, `budget-steps`, `cancel`, …).
    pub cause: String,
    /// `warning` or `error`.
    pub severity: String,
    /// Human-readable detail.
    pub message: String,
}

fn counter_cell(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>, name: &str) -> Arc<AtomicU64> {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(name.to_owned()).or_default())
}

fn hist_cell(map: &Mutex<BTreeMap<String, Arc<HistCell>>>, name: &str) -> Arc<HistCell> {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(name.to_owned()).or_default())
}

/// A monotonically increasing counter handle. Cloning shares the cell; the
/// default handle is a no-op (what a disabled [`Recorder`] hands out).
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (no-op on a disabled handle).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 on a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram handle. Cloning shares the cell; the default
/// handle is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// Creates an always-enabled histogram that belongs to no recorder —
    /// the cell behind per-shard lock-wait profiling and the serve
    /// daemon's per-method latency gauges, where the owner snapshots
    /// (and optionally re-publishes) the values itself.
    pub fn standalone() -> Histogram {
        Histogram(Some(Arc::new(HistCell::default())))
    }

    /// Records one observation (no-op on a disabled handle).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.record(v);
        }
    }

    /// Number of recorded observations (0 on a disabled handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Immutable view of the current values (empty on a disabled handle).
    pub fn snapshot(&self) -> HistSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistSnapshot::default, |c| c.snapshot())
    }
}

/// A hierarchical span guard: records its wall-clock lifetime into the
/// `durations` section when dropped. Child spans nest by dotted name.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: String,
    start: Option<Instant>,
}

impl Span {
    /// Starts a child span named `parent.child`.
    pub fn child(&self, name: &str) -> Span {
        if self.start.is_some() {
            self.rec.span(&format!("{}.{}", self.name, name))
        } else {
            Span {
                rec: Recorder::disabled(),
                name: String::new(),
                start: None,
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec
                .duration(&self.name)
                .record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// The observability handle threaded through the analysis pipeline.
///
/// A recorder is either **enabled** (owns a registry of metric cells) or
/// **disabled** (every operation is a branch on `None`). Cloning an enabled
/// recorder shares its registry, so the engine, the analyzer, and the CLI
/// can all record into one set of metrics.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// Creates an enabled recorder with an empty registry.
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// Creates a disabled recorder: every handle it gives out is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Returns `true` if metrics are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh recorder in the same mode (enabled/disabled) with its own
    /// registry — used for per-worker collection later merged with
    /// [`Recorder::absorb`].
    pub fn child(&self) -> Recorder {
        if self.is_enabled() {
            Recorder::new()
        } else {
            Recorder::disabled()
        }
    }

    /// Registers (or finds) a **deterministic** counter: its value must be
    /// a pure function of the analyzed input, independent of worker count
    /// and scheduling. Lands in the `counters` schema section.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| counter_cell(&r.counters, name)))
    }

    /// Registers (or finds) a **scheduling-dependent** counter (cache hits,
    /// contention, steals…). Lands in the `work` schema section.
    pub fn work_counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| counter_cell(&r.work, name)))
    }

    /// Registers (or finds) a **deterministic** log₂ histogram. Lands in
    /// the `histograms` schema section.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| hist_cell(&r.histograms, name)))
    }

    /// Registers (or finds) a duration histogram (nanoseconds). Lands in
    /// the `durations` schema section.
    pub fn duration(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| hist_cell(&r.durations, name)))
    }

    /// Starts a span: a guard that records its wall-clock lifetime into
    /// `durations` under `name` when dropped. On a disabled recorder the
    /// guard does not even read the clock.
    pub fn span(&self, name: &str) -> Span {
        if self.is_enabled() {
            Span {
                rec: self.clone(),
                name: name.to_owned(),
                start: Some(Instant::now()),
            }
        } else {
            Span {
                rec: Recorder::disabled(),
                name: String::new(),
                start: None,
            }
        }
    }

    /// Convenience: register-and-add a deterministic counter. Hot paths
    /// should hold a [`Counter`] handle instead.
    pub fn add(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Merges an externally collected histogram into the `durations`
    /// section under `name` — how the engine publishes the per-shard
    /// lock-wait histograms that [`Histogram::standalone`] cells collect
    /// inside the store. No-op on a disabled recorder.
    pub fn record_duration_snapshot(&self, name: &str, snap: &HistSnapshot) {
        if let Some(r) = &self.inner {
            hist_cell(&r.durations, name).absorb(snap);
        }
    }

    /// Records one degradation event into the `diagnostics` section. The
    /// snapshot sorts records, so emission order (and hence scheduling)
    /// does not leak into the serialized output.
    pub fn diagnostic(&self, severity: &str, phase: &str, root: &str, cause: &str, message: &str) {
        if let Some(r) = &self.inner {
            r.diagnostics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(DiagRecord {
                    phase: phase.to_owned(),
                    root: root.to_owned(),
                    cause: cause.to_owned(),
                    severity: severity.to_owned(),
                    message: message.to_owned(),
                });
        }
    }

    /// Merges another recorder's current values into this one (counter
    /// sums, histogram bucket sums, appended diagnostics). Merging is
    /// commutative up to diagnostic order, which the snapshot re-sorts;
    /// callers that hold several per-worker recorders should still absorb
    /// them in worker-id order so any future non-commutative extension
    /// stays deterministic.
    pub fn absorb(&self, other: &Recorder) {
        let (Some(into), Some(_)) = (&self.inner, &other.inner) else {
            return;
        };
        let snap = other.snapshot();
        for (name, v) in &snap.counters {
            counter_cell(&into.counters, name).fetch_add(*v, Ordering::Relaxed);
        }
        for (name, v) in &snap.work {
            counter_cell(&into.work, name).fetch_add(*v, Ordering::Relaxed);
        }
        for (name, h) in &snap.histograms {
            hist_cell(&into.histograms, name).absorb(h);
        }
        for (name, h) in &snap.durations {
            hist_cell(&into.durations, name).absorb(h);
        }
        if !snap.diagnostics.is_empty() {
            into.diagnostics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(snap.diagnostics);
        }
    }

    /// Snapshots every metric into an immutable, serializable view. A
    /// disabled recorder snapshots to an empty (but schema-valid) snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let Some(r) = &self.inner else {
            return Snapshot::default();
        };
        let counters = |m: &Mutex<BTreeMap<String, Arc<AtomicU64>>>| {
            m.lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect()
        };
        let hists = |m: &Mutex<BTreeMap<String, Arc<HistCell>>>| {
            m.lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect()
        };
        let mut diagnostics = r
            .diagnostics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        diagnostics.sort();
        Snapshot {
            counters: counters(&r.counters),
            work: counters(&r.work),
            histograms: hists(&r.histograms),
            durations: hists(&r.durations),
            diagnostics,
        }
    }
}

/// Immutable view of one histogram: count, sum, and sparse (bucket, count)
/// pairs in ascending bucket order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (nanoseconds for duration histograms).
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bucket_bound(&self) -> u64 {
        self.buckets
            .last()
            .map_or(0, |&(i, _)| bucket_range(i as usize).1)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest observation — the log₂-bucket
    /// estimate behind the serving layer's p50/p99 latency reporting.
    /// Returns 0 when empty; `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_range(i as usize).1;
            }
        }
        self.max_bucket_bound()
    }

    /// Bucket-wise accumulation of another snapshot into this one — the
    /// snapshot-level counterpart of [`Recorder::absorb`] for histograms
    /// collected outside a recorder.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut map: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *map.entry(i).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.buckets = map.into_iter().collect();
    }

    /// Bucket-wise difference `self − before` (saturating), for deriving
    /// one run's observations from a monotonically accumulating cell —
    /// e.g. a resident store's lock-wait histogram across warm requests.
    pub fn saturating_delta(&self, before: &HistSnapshot) -> HistSnapshot {
        let prior: BTreeMap<u8, u64> = before.buckets.iter().copied().collect();
        HistSnapshot {
            count: self.count.saturating_sub(before.count),
            sum: self.sum.saturating_sub(before.sum),
            buckets: self
                .buckets
                .iter()
                .filter_map(|&(i, n)| {
                    let left = n.saturating_sub(prior.get(&i).copied().unwrap_or(0));
                    (left > 0).then_some((i, left))
                })
                .collect(),
        }
    }
}

/// An immutable snapshot of a [`Recorder`]: the four schema sections.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Scheduling/cache-dependent counters.
    pub work: BTreeMap<String, u64>,
    /// Deterministic log₂ histograms.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Wall-clock span histograms (nanoseconds).
    pub durations: BTreeMap<String, HistSnapshot>,
    /// Degradation events, sorted by (phase, root, cause, severity,
    /// message). Empty on a clean run. Budget- and panic-caused records are
    /// deterministic; deadline/cancel records depend on wall clock, which
    /// is why the section stays out of [`Snapshot::deterministic_json`].
    pub diagnostics: Vec<DiagRecord>,
}

fn json_hist(out: &mut String, h: &HistSnapshot) {
    out.push_str("{ \"count\": ");
    out.push_str(&h.count.to_string());
    out.push_str(", \"sum\": ");
    out.push_str(&h.sum.to_string());
    out.push_str(", \"buckets\": { ");
    for (i, (b, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{b}\": {n}"));
    }
    out.push_str(if h.buckets.is_empty() { "} }" } else { " } }" });
}

fn json_counter_section(out: &mut String, name: &str, map: &BTreeMap<String, u64>, last: bool) {
    out.push_str(&format!("  \"{name}\": {{\n"));
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {}{}\n", json::escape(k), v, comma));
    }
    out.push_str(if last { "  }\n" } else { "  },\n" });
}

fn json_hist_section(
    out: &mut String,
    name: &str,
    map: &BTreeMap<String, HistSnapshot>,
    last: bool,
) {
    out.push_str(&format!("  \"{name}\": {{\n"));
    for (i, (k, h)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": ", json::escape(k)));
        json_hist(out, h);
        out.push_str(comma);
        out.push('\n');
    }
    out.push_str(if last { "  }\n" } else { "  },\n" });
}

fn json_diag_section(out: &mut String, diags: &[DiagRecord]) {
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{ \"severity\": \"{}\", \"phase\": \"{}\", \"root\": \"{}\", \
             \"cause\": \"{}\", \"message\": \"{}\" }}",
            json::escape(&d.severity),
            json::escape(&d.phase),
            json::escape(&d.root),
            json::escape(&d.cause),
            json::escape(&d.message),
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n  ]\n" });
}

impl Snapshot {
    /// Serializes the snapshot to the versioned JSON stats schema
    /// ([`SCHEMA`]). Output is byte-deterministic: sections and keys are
    /// emitted in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        json_counter_section(&mut out, "counters", &self.counters, false);
        json_hist_section(&mut out, "histograms", &self.histograms, false);
        json_counter_section(&mut out, "work", &self.work, false);
        json_hist_section(&mut out, "durations", &self.durations, false);
        json_diag_section(&mut out, &self.diagnostics);
        out.push_str("}\n");
        out
    }

    /// Serializes only the deterministic sections (`counters` and
    /// `histograms`) — the byte-comparable core used by determinism tests.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        json_counter_section(&mut out, "counters", &self.counters, false);
        json_hist_section(&mut out, "histograms", &self.histograms, true);
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable multi-line summary (the CLI's `--stats`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== spo stats ({SCHEMA}) ==\n"));
        let width = self
            .counters
            .keys()
            .chain(self.work.keys())
            .chain(self.histograms.keys())
            .chain(self.durations.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters (deterministic):\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (deterministic, log2 buckets):\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<width$}  count {}  sum {}  mean {:.1}  max<= {}\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.max_bucket_bound(),
                ));
            }
        }
        if !self.work.is_empty() {
            out.push_str("work (scheduling-dependent):\n");
            for (k, v) in &self.work {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        if !self.durations.is_empty() {
            out.push_str("durations (wall clock):\n");
            for (k, h) in &self.durations {
                out.push_str(&format!(
                    "  {k:<width$}  count {}  total {:.3}ms  mean {:.3}ms\n",
                    h.count,
                    h.sum as f64 / 1e6,
                    h.mean() / 1e6,
                ));
            }
        }
        if !self.diagnostics.is_empty() {
            out.push_str("diagnostics (degradations):\n");
            for d in &self.diagnostics {
                out.push_str(&format!(
                    "  {} [{}] {}: {}: {}\n",
                    d.severity, d.phase, d.root, d.cause, d.message
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = bucket_range(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn disabled_recorder_is_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        rec.histogram("h").record(9);
        let _span = rec.span("s");
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.durations.is_empty());
        json::validate_stats(&snap.to_json()).unwrap();
    }

    #[test]
    fn counters_and_histograms_roundtrip() {
        let rec = Recorder::new();
        let c = rec.counter("a.b");
        c.add(3);
        c.incr();
        rec.work_counter("w").add(7);
        let h = rec.histogram("h");
        for v in [0, 1, 5, 5, 1024] {
            h.record(v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["a.b"], 4);
        assert_eq!(snap.work["w"], 7);
        let hs = &snap.histograms["h"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1035);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (3, 2), (11, 1)]);
        assert_eq!(hs.max_bucket_bound(), 2047);
    }

    #[test]
    fn quantiles_pick_bucket_upper_bounds() {
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
        // 5 observations: buckets (1,1)→[1,1], (3,3)→[4,7], (11,1)→[1024,2047].
        let hs = HistSnapshot {
            count: 5,
            sum: 1 + 4 + 5 + 6 + 1024,
            buckets: vec![(1, 1), (3, 3), (11, 1)],
        };
        assert_eq!(hs.quantile(0.0), 1); // clamped, first observation
        assert_eq!(hs.quantile(0.5), 7); // 3rd of 5 lands in bucket 3
        assert_eq!(hs.quantile(0.99), 2047);
        assert_eq!(hs.quantile(2.0), 2047); // clamped
    }

    #[test]
    fn quantile_and_bucket_range_edge_cases() {
        // Empty histogram: every quantile is 0, as is the max bound.
        let empty = HistSnapshot::default();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);
        assert_eq!(empty.max_bucket_bound(), 0);

        // Single-bucket histogram: every quantile lands in that bucket.
        let single = HistSnapshot {
            count: 7,
            sum: 7 * 5,
            buckets: vec![(3, 7)], // bucket 3 covers [4, 7]
        };
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 7, "q={q}");
        }

        // q = 0.0 has rank clamped up to 1: the smallest observation.
        let hs = HistSnapshot {
            count: 4,
            sum: 1 + 2 + 2 + 1024,
            buckets: vec![(1, 1), (2, 2), (11, 1)],
        };
        assert_eq!(hs.quantile(0.0), 1);
        // q above 1.0 clamps to the maximum observation's bucket.
        assert_eq!(hs.quantile(1.0), 2047);
        assert_eq!(hs.quantile(7.5), 2047);
        assert_eq!(hs.quantile(f64::INFINITY), 2047);
        // Rank landing exactly on a cumulative bucket boundary stays in
        // that bucket: rank 3 of 4 (q = 0.75) is the last observation of
        // bucket 2, not the first of bucket 11.
        assert_eq!(hs.quantile(0.75), 3);
        // One observation past the boundary moves to the next bucket.
        assert_eq!(hs.quantile(0.76), 2047);

        // bucket_range endpoints: adjacent buckets tile the u64 line.
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        for i in 1..HIST_BUCKETS - 1 {
            let (_, hi) = bucket_range(i);
            let (lo_next, _) = bucket_range(i + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
        }
        assert_eq!(bucket_range(HIST_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn saturating_delta_subtracts_bucketwise() {
        let before = HistSnapshot {
            count: 3,
            sum: 1 + 2 + 2,
            buckets: vec![(1, 1), (2, 2)],
        };
        let after = HistSnapshot {
            count: 6,
            sum: 1 + 2 + 2 + 3 + 1024 + 1500,
            buckets: vec![(1, 1), (2, 3), (11, 2)],
        };
        let delta = after.saturating_delta(&before);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum, 3 + 1024 + 1500);
        assert_eq!(delta.buckets, vec![(2, 1), (11, 2)]);
        // Delta against itself is empty; against a larger snapshot it
        // saturates instead of underflowing.
        assert_eq!(after.saturating_delta(&after).count, 0);
        let under = before.saturating_delta(&after);
        assert_eq!(under.count, 0);
        assert!(under.buckets.is_empty());
    }

    #[test]
    fn standalone_histogram_snapshots_without_a_recorder() {
        let h = Histogram::standalone();
        h.record(5);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 1029);
        assert_eq!(snap.buckets, vec![(3, 1), (11, 1)]);
        // Disabled handles snapshot to empty.
        assert_eq!(Histogram::default().snapshot(), HistSnapshot::default());
        // Publishing into a recorder lands in the durations section.
        let rec = Recorder::new();
        rec.record_duration_snapshot("store.shard00.lock_wait", &snap);
        let s = rec.snapshot();
        assert_eq!(s.durations["store.shard00.lock_wait"].count, 2);
    }

    #[test]
    fn span_records_duration() {
        let rec = Recorder::new();
        {
            let root = rec.span("root");
            let _child = root.child("leaf");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.durations["root"].count, 1);
        assert_eq!(snap.durations["root.leaf"].count, 1);
    }

    #[test]
    fn absorb_merges_in_any_order_identically() {
        let mk = |n: u64| {
            let r = Recorder::new();
            r.counter("c").add(n);
            r.histogram("h").record(n);
            r.work_counter("w").add(1);
            r
        };
        let (a, b, c) = (mk(1), mk(2), mk(300));
        let left = Recorder::new();
        for r in [&a, &b, &c] {
            left.absorb(r);
        }
        let right = Recorder::new();
        for r in [&c, &a, &b] {
            right.absorb(r);
        }
        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.snapshot().counters["c"], 303);
        assert_eq!(left.snapshot().histograms["h"].count, 3);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_valid() {
        let build = || {
            let rec = Recorder::new();
            rec.counter("z").add(1);
            rec.counter("a").add(2);
            rec.histogram("h").record(17);
            rec.work_counter("w").add(3);
            rec.duration("d").record(1_000_000);
            rec.snapshot()
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1.to_json(), s2.to_json());
        json::validate_stats(&s1.to_json()).unwrap();
        assert!(s1.to_json().contains("\"schema\": \"spo-stats/1\""));
        // Deterministic core excludes work and durations.
        let det = s1.deterministic_json();
        assert!(det.contains("\"a\": 2") && !det.contains("\"w\"") && !det.contains("\"d\""));
    }

    #[test]
    fn concurrent_recording_totals_are_exact() {
        let rec = Recorder::new();
        let c = rec.counter("c");
        let h = rec.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (c, h) = (c.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..1000 {
                        c.incr();
                        h.record(i);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], 4000);
        assert_eq!(snap.histograms["h"].count, 4000);
    }
}
